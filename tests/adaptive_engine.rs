//! Adaptive policy engine: behaviour-preservation, determinism and
//! effectiveness tests.
//!
//! The refactor's central guarantee is that the engine is invisible until a
//! dynamic selector actually switches: a machine driven by the `static`
//! selector must be **bit-for-bit** the legacy static machine (across every
//! fetch policy, at both SMT widths, and on a chip), and
//! [`smt_core::pipeline::Core::swap_policy`] to the installed kind must be a
//! no-op on [`smt_types::MachineStats`]. On top of that, random
//! selector-switch schedules must stay deterministic across repeat runs,
//! chip core stepping orders, and engine thread counts — and on a mixed
//! ILP/MLP four-thread workload a dynamic selector must beat the best static
//! policy on harmonic-mean IPC (the whole point of the engine).

use proptest::prelude::*;
use smt_core::chip::ChipSimulator;
use smt_core::experiments::{engine, ExperimentRegistry};
use smt_core::pipeline::SmtSimulator;
use smt_core::runner::{self, build_trace, RunScale};
use smt_trace::TraceSource;
use smt_types::config::FetchPolicyKind;
use smt_types::{AdaptiveConfig, ChipConfig, MachineStats, SelectorKind, SmtConfig};

fn traces_for(benchmarks: &[&str], scale: RunScale) -> Vec<Box<dyn TraceSource>> {
    benchmarks
        .iter()
        .map(|b| build_trace(b, scale).expect("known benchmark"))
        .collect()
}

fn chip_traces(assignments: &[&[&str]], scale: RunScale) -> Vec<Vec<Box<dyn TraceSource>>> {
    assignments
        .iter()
        .map(|core| traces_for(core, scale))
        .collect()
}

#[test]
fn static_selector_is_bit_for_bit_the_legacy_machine() {
    // The golden fixtures pin the legacy machine; this pins the adaptive
    // wrapper to it: a static selector over any candidate list starting with
    // the fixture policy must reproduce the exact same statistics, for all
    // policies at 2T and 4T.
    let scale = RunScale::tiny();
    for benchmarks in [vec!["mcf", "gcc"], vec!["mcf", "swim", "gcc", "twolf"]] {
        for policy in FetchPolicyKind::ALL {
            let config = SmtConfig::baseline(benchmarks.len());
            let legacy =
                runner::run_multiprogram(&benchmarks, policy, &config, scale).expect("legacy run");
            let adaptive = AdaptiveConfig::new(SelectorKind::Static, vec![policy]);
            let (stats, residency) =
                runner::run_multiprogram_adaptive(&benchmarks, &adaptive, &config, scale)
                    .expect("adaptive run");
            assert_eq!(
                stats,
                legacy,
                "static selector diverged from the legacy machine for `{}` on {benchmarks:?}",
                policy.name()
            );
            assert_eq!(residency.len(), 1);
            assert_eq!(residency[0].policy, policy);
            assert!((residency[0].fraction - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn static_selector_chip_is_bit_for_bit_the_legacy_chip() {
    let scale = RunScale::tiny();
    let assignments: &[&[&str]] = &[&["mcf", "gcc"], &["swim", "twolf"]];
    for policy in [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush] {
        let config = ChipConfig::baseline(2, 2).with_policy(policy);
        let mut legacy = ChipSimulator::new(config.clone(), chip_traces(assignments, scale))
            .expect("legacy chip builds");
        let legacy_stats = legacy.run(scale.sim_options());
        let adaptive = AdaptiveConfig::new(SelectorKind::Static, vec![policy]);
        let mut wrapped =
            ChipSimulator::new_adaptive(config, chip_traces(assignments, scale), adaptive)
                .expect("adaptive chip builds");
        let wrapped_stats = wrapped.run(scale.sim_options());
        assert_eq!(
            wrapped_stats,
            legacy_stats,
            "static selector diverged from the legacy chip for `{}`",
            policy.name()
        );
    }
}

#[test]
fn swap_policy_to_the_installed_kind_is_a_noop_on_machine_stats() {
    let scale = RunScale::tiny();
    let benchmarks = ["mcf", "gcc"];
    let config = SmtConfig::baseline(2).with_policy(FetchPolicyKind::MlpFlush);
    let build = || {
        SmtSimulator::new(config.clone(), traces_for(&benchmarks, scale)).expect("machine builds")
    };
    let mut reference = build();
    let mut swapped = build();
    for cycle in 0..4_000u64 {
        if cycle % 97 == 0 {
            // Same-kind swap: must leave the running policy instance (and
            // with it all simulated behaviour) untouched.
            assert!(!swapped.swap_policy(FetchPolicyKind::MlpFlush));
        }
        reference.step();
        swapped.step();
    }
    assert_eq!(
        swapped.stats(),
        reference.stats(),
        "same-policy swap_policy mid-run perturbed MachineStats"
    );
    assert_eq!(swapped.measured_cycles(), reference.measured_cycles());
    // A different kind does swap (and reports it).
    assert!(swapped.swap_policy(FetchPolicyKind::Icount));
    assert_eq!(swapped.core().current_policy(), FetchPolicyKind::Icount);
}

/// Runs a fixed swap schedule — switch to `schedule[k]` after `(k + 1) *
/// interval` cycles — and returns the statistics.
fn run_swap_schedule(
    benchmarks: &[&str],
    schedule: &[FetchPolicyKind],
    interval: u64,
    seed: u64,
) -> MachineStats {
    let scale = RunScale {
        instructions_per_thread: 2_000,
        warmup_instructions: 0,
        seed,
        max_cycles: None,
    };
    let config = SmtConfig::baseline(benchmarks.len());
    let mut sim = SmtSimulator::new(config, traces_for(benchmarks, scale)).expect("machine builds");
    let total = interval * (schedule.len() as u64 + 1);
    for cycle in 0..total {
        if cycle > 0 && cycle % interval == 0 {
            let step = (cycle / interval - 1) as usize;
            sim.swap_policy(schedule[step]);
        }
        sim.step();
    }
    sim.stats().clone()
}

/// The policies random schedules draw from: the baseline, both headline
/// MLP-aware policies, flush/stall reactions, and a resource-partitioning
/// scheme — every structurally distinct policy-state shape.
const SWAP_POOL: [FetchPolicyKind; 6] = [
    FetchPolicyKind::Icount,
    FetchPolicyKind::MlpFlush,
    FetchPolicyKind::MlpStall,
    FetchPolicyKind::Flush,
    FetchPolicyKind::Stall,
    FetchPolicyKind::Dcra,
];

const SWAP_BENCHMARKS: [&str; 4] = ["mcf", "gcc", "swim", "twolf"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_swap_schedules_are_deterministic(
        schedule_indices in prop::collection::vec(0usize..SWAP_POOL.len(), 1..6),
        interval in 64u64..512,
        bench_a in 0usize..SWAP_BENCHMARKS.len(),
        bench_b in 0usize..SWAP_BENCHMARKS.len(),
        seed in 1u64..10_000,
    ) {
        let schedule: Vec<FetchPolicyKind> =
            schedule_indices.iter().map(|&i| SWAP_POOL[i]).collect();
        let benchmarks = [SWAP_BENCHMARKS[bench_a], SWAP_BENCHMARKS[bench_b]];
        let first = run_swap_schedule(&benchmarks, &schedule, interval, seed);
        let second = run_swap_schedule(&benchmarks, &schedule, interval, seed);
        prop_assert_eq!(&first, &second, "identical swap schedules diverged");
        let committed: u64 = first.threads.iter().map(|t| t.committed_instructions).sum();
        prop_assert!(committed > 0, "swap schedule starved the machine");
    }
}

#[test]
fn adaptive_chip_is_invariant_to_core_stepping_order() {
    // Dynamic selection decisions are core-local functions of core-local
    // telemetry, so even with every core switching policies at interval
    // boundaries, chip results must not depend on the order cores step
    // within a cycle.
    let scale = RunScale::tiny();
    let assignments: &[&[&str]] = &[&["mcf", "gcc"], &["swim", "twolf"]];
    let adaptive = AdaptiveConfig::new(
        SelectorKind::Sampling,
        vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
    )
    .with_interval_cycles(256);
    let build = || {
        ChipSimulator::new_adaptive(
            ChipConfig::baseline(2, 2),
            chip_traces(assignments, scale),
            adaptive.clone(),
        )
        .expect("adaptive chip builds")
    };
    let mut canonical = build();
    let mut reversed = build();
    for _ in 0..6_000 {
        canonical.step();
        reversed.step_with_core_order(&[1, 0]);
    }
    assert_eq!(
        canonical.chip_stats(),
        reversed.chip_stats(),
        "core stepping order leaked into adaptive chip results"
    );
    for core in 0..2 {
        assert_eq!(
            canonical.policy_residency(core),
            reversed.policy_residency(core),
            "core stepping order leaked into core {core}'s policy residency"
        );
    }
    // The run was long enough for dynamic selection to actually happen.
    let switched = (0..2).any(|core| {
        canonical
            .policy_residency(core)
            .expect("adaptive chip reports residency")
            .len()
            > 1
    });
    assert!(switched, "no core ever switched policy; test is vacuous");
}

#[test]
fn adaptive_grid_results_are_engine_thread_count_invariant() {
    let mut spec = ExperimentRegistry::builtin()
        .get("adaptive_2t")
        .expect("adaptive_2t is registered")
        .clone()
        .with_scale(RunScale::tiny())
        .with_workload_limit(2);
    // Keep the grid small: one dynamic and the static selector.
    spec.adaptive.as_mut().expect("adaptive spec").selectors =
        vec![SelectorKind::Static, SelectorKind::MlpThreshold];
    let serial = engine::run_spec_with_threads(&spec, 1).expect("serial run");
    let parallel = engine::run_spec_with_threads(&spec, 4).expect("parallel run");
    assert_eq!(serial.policy_cells, parallel.policy_cells);
    assert_eq!(serial.summaries, parallel.summaries);
    // Selector and residency columns are populated.
    assert!(serial.policy_cells.iter().all(|c| c.selector.is_some()));
    for cell in &serial.policy_cells {
        let residency = cell.policy_residency.as_ref().expect("residency column");
        let total: f64 = residency.iter().map(|r| r.fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "residency fractions must sum to 1, got {total}"
        );
    }
}

#[test]
fn a_dynamic_selector_beats_the_best_static_policy_on_a_mixed_workload() {
    // The acceptance bar of the adaptive engine: on a mixed ILP/MLP
    // four-thread workload of the `adaptive_4t` matrix, runtime policy
    // selection must beat *every* static policy on harmonic-mean IPC. The
    // simulator is deterministic, so this is a stable regression test, not a
    // statistical one.
    let workload = "gzip-wupwise-apsi-twolf";
    let mut spec = ExperimentRegistry::builtin()
        .get("adaptive_4t")
        .expect("adaptive_4t is registered")
        .clone()
        .with_scale(RunScale::test());
    spec.workloads.retain(|w| w.join("-") == workload);
    assert_eq!(
        spec.workloads.len(),
        1,
        "mixed workload present in adaptive_4t"
    );
    let report = engine::run_spec(&spec).expect("adaptive_4t runs");
    let hmean = |ipcs: &[f64]| ipcs.len() as f64 / ipcs.iter().map(|v| 1.0 / v).sum::<f64>();
    let mut best_static: Option<(FetchPolicyKind, f64)> = None;
    let mut best_dynamic: Option<(SelectorKind, f64)> = None;
    for cell in &report.policy_cells {
        let selector = cell.selector.expect("adaptive cell has a selector");
        let score = hmean(&cell.per_thread_ipc);
        if selector == SelectorKind::Static {
            if best_static.is_none_or(|(_, s)| score > s) {
                best_static = Some((cell.policy, score));
            }
        } else if best_dynamic.is_none_or(|(_, s)| score > s) {
            best_dynamic = Some((selector, score));
        }
    }
    let (static_policy, static_score) = best_static.expect("static baselines in the grid");
    let (dynamic_selector, dynamic_score) = best_dynamic.expect("dynamic selectors in the grid");
    assert!(
        dynamic_score > static_score,
        "no dynamic selector beat the best static policy on {workload}: best static \
         `{}` hmean IPC {static_score:.4}, best dynamic `{}` hmean IPC {dynamic_score:.4}",
        static_policy.name(),
        dynamic_selector.name(),
    );
}
