//! Trace-driven replay regression tests: the on-disk `.smtt` pipeline must be
//! an *invisible* substitution for the live synthetic generators.
//!
//! Three properties are pinned here:
//!
//! 1. **Record/replay parity** — recording a benchmark's op stream and
//!    replaying it through [`smt_trace::FileTraceSource`] yields bit-for-bit
//!    identical statistics to running the live generator at the same seed, on
//!    the SMT core, on the chip (serial and pooled stepping — CI reruns this
//!    suite under `SMT_CHIP_THREADS=2`), and in sampled mode.
//! 2. **Golden replay stats** — the checked-in fixture
//!    (`tests/golden/trace_2t_replay.smtt`, referenced by the
//!    `trace_2t_replay` registry entry) replays to pinned [`MachineStats`]
//!    (`tests/golden/trace_replay_stats.json`). Regenerate deliberately with
//!    `SMT_GOLDEN_REGEN=1 cargo test --test trace_replay`.
//! 3. **Batch-contract discipline** — the engine pulls ops exclusively
//!    through [`smt_trace::TraceSource::refill`]; the one-op-at-a-time
//!    fallback must never fire for engine-facing sources.

use serde::{Deserialize, Serialize};
use smt_core::chip::ChipSimulator;
use smt_core::experiments::ExperimentRegistry;
use smt_core::runner::{self, build_trace, CheckpointCache, RunScale, StReferenceCache};
use smt_core::workloads::{benchmark_is_mlp_intensive, Workload, WorkloadGroup};
use smt_core::SmtSimulator;
use smt_trace::{record_source, FileTraceSource, TraceSource, TraceSourceState};
use smt_types::config::FetchPolicyKind;
use smt_types::{ChipConfig, MachineStats, SamplingConfig, SmtConfig, TraceOp};

/// The registry-referenced golden fixture, relative to the repo root (the CWD
/// of root integration tests and of CI invocations).
const FIXTURE_WORKLOAD: &str = "trace:tests/golden/trace_2t_replay.smtt";

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace_2t_replay.smtt")
}

fn temp_trace(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smt-replay-{tag}-{}.smtt", std::process::id()));
    p
}

/// Records `benchmark`'s live stream into a temp `.smtt` with enough ops that
/// the replay run never wraps the file, so the replayed stream is the live
/// stream verbatim. The margin is sized for sampled runs, which cover the
/// whole sampled horizon — checkpoint warm-up plus `min_windows` full
/// sampling units (skip + fast-forward + warm + measure each), far more than
/// the detailed instruction budget — and doubled for window overshoot and
/// in-flight wrong-path fetches.
fn record_temp(benchmark: &str, tag: &str, scale: RunScale) -> std::path::PathBuf {
    let path = temp_trace(tag);
    let sampling = SamplingConfig::default();
    let unit = sampling.unit_instructions();
    let units = scale
        .instructions_per_thread
        .div_ceil(unit)
        .max(u64::from(sampling.min_windows));
    let ops = 2 * (scale.warmup_instructions + units * unit);
    let mut source = build_trace(benchmark, scale).expect("live source builds");
    record_source(source.as_mut(), ops, &path, true).expect("recording succeeds");
    path
}

fn run_pair(benchmarks: &[&str], policy: FetchPolicyKind, scale: RunScale) -> MachineStats {
    let config = SmtConfig::baseline(benchmarks.len());
    runner::run_multiprogram(benchmarks, policy, &config, scale).expect("run succeeds")
}

#[test]
fn replaying_a_recorded_trace_matches_the_live_generator_bit_for_bit() {
    let scale = RunScale::tiny();
    let path = record_temp("mcf", "smt-parity", scale);
    let trace_name = format!("trace:{}", path.display());
    for policy in [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush] {
        let live = run_pair(&["mcf", "gcc"], policy, scale);
        let replayed = run_pair(&[trace_name.as_str(), "gcc"], policy, scale);
        assert_eq!(
            live,
            replayed,
            "{}: trace replay diverged from the live generator",
            policy.name()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn chip_replay_matches_live_generator_bit_for_bit() {
    let scale = RunScale::tiny();
    let path = record_temp("mcf", "chip-parity", scale);
    let trace_name = format!("trace:{}", path.display());
    let live_cores: Vec<Vec<&str>> = vec![vec!["mcf", "gcc"], vec!["swim", "twolf"]];
    let replay_cores: Vec<Vec<&str>> =
        vec![vec![trace_name.as_str(), "gcc"], vec!["swim", "twolf"]];
    for policy in [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush] {
        let mut stats = Vec::new();
        for cores in [&live_cores, &replay_cores] {
            let traces: Vec<Vec<Box<dyn TraceSource>>> = cores
                .iter()
                .map(|core| {
                    core.iter()
                        .map(|b| build_trace(b, scale).expect("source builds"))
                        .collect()
                })
                .collect();
            let config = ChipConfig::baseline(2, 2).with_policy(policy);
            let mut sim = ChipSimulator::new(config, traces).expect("chip builds");
            stats.push(sim.run(scale.sim_options()));
        }
        assert_eq!(
            stats[0],
            stats[1],
            "{}: chip trace replay diverged from the live generator",
            policy.name()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sampled_replay_matches_live_generator() {
    let scale = RunScale::tiny();
    let path = record_temp("mcf", "sampled-parity", scale);
    let trace_name = format!("trace:{}", path.display());
    let config = SmtConfig::baseline(2);
    let sampling = SamplingConfig::default();
    let mut results = Vec::new();
    for benchmarks in [["mcf", "gcc"], [trace_name.as_str(), "gcc"]] {
        results.push(
            runner::evaluate_workload_sampled(
                &benchmarks,
                FetchPolicyKind::MlpFlush,
                &config,
                scale,
                &sampling,
                &StReferenceCache::new(),
                &CheckpointCache::new(),
            )
            .expect("sampled run succeeds"),
        );
    }
    // The workload label embeds the source names (`mcf-gcc` vs
    // `trace:...-gcc`); every measured quantity must agree exactly.
    let mut replayed = results.pop().unwrap();
    let live = results.pop().unwrap();
    replayed.workload = live.workload.clone();
    assert_eq!(live, replayed, "sampled trace replay diverged");
    std::fs::remove_file(&path).ok();
}

/// One pinned replay outcome of the checked-in fixture.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct GoldenReplayCase {
    policy: FetchPolicyKind,
    stats: MachineStats,
}

fn golden_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace_replay_stats.json")
}

fn run_golden_cases() -> Vec<GoldenReplayCase> {
    [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush]
        .into_iter()
        .map(|policy| GoldenReplayCase {
            policy,
            stats: run_pair(
                &[FIXTURE_WORKLOAD, FIXTURE_WORKLOAD],
                policy,
                RunScale::tiny(),
            ),
        })
        .collect()
}

#[test]
fn trace_replay_stats_match_golden_fixture_bit_for_bit() {
    let cases = run_golden_cases();
    let path = golden_json_path();
    if std::env::var("SMT_GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&cases).expect("fixture serializes");
        smt_core::artifacts::write_atomic(&path, json + "\n").expect("fixture written");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with SMT_GOLDEN_REGEN=1",
            path.display()
        )
    });
    let golden: Vec<GoldenReplayCase> = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!(golden, cases, "trace replay diverged from pinned stats");
}

#[test]
fn short_trace_wraps_deterministically() {
    // A 512-op file under a tiny-scale budget wraps the trace many times; the
    // wrap must be seamless and the whole run bit-for-bit reproducible.
    let scale = RunScale::tiny();
    let path = temp_trace("wrap");
    let mut source = build_trace("mcf", scale).expect("live source builds");
    record_source(source.as_mut(), 512, &path, true).expect("recording succeeds");
    let trace_name = format!("trace:{}", path.display());
    let a = run_pair(
        &[trace_name.as_str(), "gcc"],
        FetchPolicyKind::MlpFlush,
        scale,
    );
    let b = run_pair(
        &[trace_name.as_str(), "gcc"],
        FetchPolicyKind::MlpFlush,
        scale,
    );
    assert_eq!(a, b, "wrapping replay is not deterministic");
    assert!(
        a.threads[0].committed_instructions > 512,
        "budget must exceed the file length for this test to exercise the wrap"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_replay_registry_entry_is_wired() {
    let registry = ExperimentRegistry::builtin();
    let spec = registry
        .get("trace_2t_replay")
        .expect("trace_2t_replay is registered");
    spec.validate().expect("entry validates");
    assert_eq!(
        spec.policies,
        vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush]
    );
    assert_eq!(spec.workloads, vec![vec![FIXTURE_WORKLOAD; 2]]);
    // Classification reads the `.smtt` header: the fixture was recorded from
    // mcf, so the workload is MLP-intensive without consulting Table I.
    assert!(benchmark_is_mlp_intensive(FIXTURE_WORKLOAD).unwrap());
    let workload = Workload::new(spec.workloads[0].clone()).expect("workload builds");
    assert_eq!(workload.group, WorkloadGroup::MlpIntensive);
    assert_eq!(workload.mlp_count(), 2);
}

#[test]
fn replay_source_reports_the_recorded_benchmark_name() {
    // Stats parity depends on the replay source answering with the *recorded*
    // benchmark's name, not the file path.
    let source = FileTraceSource::open(fixture_path()).expect("fixture opens");
    assert_eq!(source.name(), "mcf");
}

/// A probe source that forwards batched refills to a live generator but
/// panics if the engine ever falls back to pulling single ops: engine-facing
/// sources must be driven exclusively through `refill`.
struct RefillOnlyProbe {
    inner: Box<dyn TraceSource>,
}

impl TraceSource for RefillOnlyProbe {
    fn next_op(&mut self) -> TraceOp {
        panic!("engine hit the one-op-at-a-time fallback; pull_op must batch through refill");
    }

    fn refill(&mut self, buf: &mut Vec<TraceOp>, n: usize) {
        self.inner.refill(buf, n);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn save_state(&self) -> Option<TraceSourceState> {
        self.inner.save_state()
    }

    fn restore_state(&mut self, state: &TraceSourceState) -> Result<(), String> {
        self.inner.restore_state(state)
    }
}

/// Source-level stream equivalence: a replay source driven through the same
/// refill/skip/save/restore protocol the engine uses yields the live
/// generator's ops verbatim at every step.
#[test]
fn stream_is_equivalent_under_skip_and_state_roundtrip() {
    let scale = RunScale::tiny();
    let path = record_temp("mcf", "probe", scale);
    let mut live = build_trace("mcf", scale).unwrap();
    let mut replay: Box<dyn TraceSource> = Box::new(FileTraceSource::open(&path).unwrap());
    let mut l = Vec::new();
    let mut r = Vec::new();
    live.refill(&mut l, 100);
    replay.refill(&mut r, 100);
    assert_eq!(l, r, "first 100 ops diverge");
    live.skip(37);
    replay.skip(37);
    l.clear();
    r.clear();
    live.refill(&mut l, 200);
    replay.refill(&mut r, 200);
    assert_eq!(l, r, "ops after a bulk skip diverge");
    let ls = live.save_state().unwrap();
    let rs = replay.save_state().unwrap();
    assert_eq!(ls.seq, rs.seq, "stream positions diverge");
    live.restore_state(&ls).unwrap();
    replay.restore_state(&rs).unwrap();
    l.clear();
    r.clear();
    live.refill(&mut l, 64);
    replay.refill(&mut r, 64);
    assert_eq!(l, r, "ops after a state round-trip diverge");
    std::fs::remove_file(&path).ok();
}

#[test]
fn engine_never_hits_the_single_op_fallback() {
    let scale = RunScale::tiny();
    let traces: Vec<Box<dyn TraceSource>> = ["mcf", "gcc"]
        .iter()
        .map(|b| {
            Box::new(RefillOnlyProbe {
                inner: build_trace(b, scale).expect("source builds"),
            }) as Box<dyn TraceSource>
        })
        .collect();
    let config = SmtConfig::baseline(2).with_policy(FetchPolicyKind::MlpFlush);
    let mut sim = SmtSimulator::new(config, traces).expect("simulator builds");
    let stats = sim.run(scale.sim_options());
    let committed = stats
        .threads
        .iter()
        .map(|t| t.committed_instructions)
        .max()
        .unwrap();
    assert!(committed >= scale.instructions_per_thread);
}
