//! Pipeline invariant tests built on scripted traces, so specific
//! microarchitectural situations can be constructed deterministically.

use smt_core::pipeline::{SimOptions, SmtSimulator};
use smt_trace::{ScriptedTrace, TraceSource};
use smt_types::config::FetchPolicyKind;
use smt_types::{SmtConfig, TraceOp};

/// Builds a looping trace with one long-latency load (fresh address every
/// iteration) followed by `alu_per_iter` ALU instructions.
fn memory_bound_loop(misses_per_iter: usize, alu_per_iter: usize) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    for m in 0..misses_per_iter {
        ops.push(TraceOp::load(0x9000 + 8 * m as u64, 0));
    }
    for i in 0..alu_per_iter {
        ops.push(TraceOp::int_alu(0x100 + 4 * i as u64));
    }
    ops
}

/// A trace source that turns the placeholder load addresses of
/// [`memory_bound_loop`] into ever-increasing (never cached) addresses.
struct FreshMissTrace {
    inner: smt_trace::scripted::LoopingTrace,
    next_line: u64,
}

impl FreshMissTrace {
    fn new(ops: Vec<TraceOp>) -> Self {
        FreshMissTrace {
            inner: ScriptedTrace::looping("fresh-miss", ops),
            next_line: 0,
        }
    }
}

impl TraceSource for FreshMissTrace {
    fn next_op(&mut self) -> TraceOp {
        let mut op = self.inner.next_op();
        if let Some(mem) = op.mem.as_mut() {
            self.next_line += 1;
            mem.addr = 0x4000_0000 + self.next_line * 64;
        }
        op
    }

    fn name(&self) -> &str {
        "fresh-miss"
    }
}

fn cpu_bound_trace() -> Box<dyn TraceSource> {
    Box::new(ScriptedTrace::looping(
        "cpu-bound",
        (0..64).map(|i| TraceOp::int_alu(0x2000 + 4 * i)).collect(),
    ))
}

fn run(
    config: SmtConfig,
    traces: Vec<Box<dyn TraceSource>>,
    instructions: u64,
) -> smt_types::MachineStats {
    let mut sim = SmtSimulator::new(config, traces).unwrap();
    sim.run(SimOptions {
        max_instructions_per_thread: instructions,
        warmup_instructions_per_thread: 200,
        max_cycles: 10_000_000,
    })
}

#[test]
fn single_thread_alu_loop_approaches_machine_width() {
    let cfg = SmtConfig::baseline(1);
    let stats = run(cfg, vec![cpu_bound_trace()], 20_000);
    let ipc = stats.threads[0].ipc(stats.cycles);
    assert!(
        ipc > 2.0,
        "independent ALU loop should run near machine width, got {ipc}"
    );
    assert!(ipc <= 4.0 + 1e-9);
}

#[test]
fn dependent_chain_runs_at_one_ipc() {
    let cfg = SmtConfig::baseline(1);
    let ops: Vec<TraceOp> = (0..64)
        .map(|i| TraceOp::int_alu(0x3000 + 4 * i).with_dep(1))
        .collect();
    let stats = run(
        cfg,
        vec![Box::new(ScriptedTrace::looping("chain", ops))],
        10_000,
    );
    let ipc = stats.threads[0].ipc(stats.cycles);
    assert!(
        ipc > 0.7 && ipc < 1.3,
        "a serial dependence chain should run at ~1 IPC, got {ipc}"
    );
}

#[test]
fn memory_bound_thread_exposes_mlp() {
    let cfg = SmtConfig::baseline(1).with_prefetcher(false);
    // Four independent misses close together each iteration: MLP should be ~4.
    let stats = run(
        cfg,
        vec![Box::new(FreshMissTrace::new(memory_bound_loop(4, 60)))],
        20_000,
    );
    let t = &stats.threads[0];
    assert!(
        t.long_latency_loads > 100,
        "expected many long-latency loads"
    );
    assert!(
        t.measured_mlp() > 2.5,
        "four independent misses per iteration should overlap, MLP = {}",
        t.measured_mlp()
    );
}

#[test]
fn isolated_misses_have_no_mlp() {
    let cfg = SmtConfig::baseline(1).with_prefetcher(false);
    // One miss every ~300 instructions: far beyond the ROB, so no overlap.
    let stats = run(
        cfg,
        vec![Box::new(FreshMissTrace::new(memory_bound_loop(1, 300)))],
        20_000,
    );
    let t = &stats.threads[0];
    assert!(t.long_latency_loads > 20);
    assert!(
        t.measured_mlp() < 1.3,
        "isolated misses must not overlap, MLP = {}",
        t.measured_mlp()
    );
}

#[test]
fn memory_bound_thread_hurts_coscheduled_ilp_thread_under_icount() {
    // Under ICOUNT the memory-bound thread clogs shared resources; under the
    // flush policy the ILP thread should do clearly better.
    let mk_traces = || -> Vec<Box<dyn TraceSource>> {
        vec![
            Box::new(FreshMissTrace::new(memory_bound_loop(2, 30))),
            cpu_bound_trace(),
        ]
    };
    let icount = run(
        SmtConfig::baseline(2)
            .with_policy(FetchPolicyKind::Icount)
            .with_prefetcher(false),
        mk_traces(),
        20_000,
    );
    let flush = run(
        SmtConfig::baseline(2)
            .with_policy(FetchPolicyKind::Flush)
            .with_prefetcher(false),
        mk_traces(),
        20_000,
    );
    let ilp_ipc_icount = icount.threads[1].ipc(icount.cycles);
    let ilp_ipc_flush = flush.threads[1].ipc(flush.cycles);
    assert!(
        ilp_ipc_flush > ilp_ipc_icount * 1.2,
        "flushing the stalled thread should help the ILP thread: {ilp_ipc_flush} vs {ilp_ipc_icount}"
    );
}

#[test]
fn mlp_aware_flush_preserves_memory_thread_mlp_better_than_flush() {
    let mk_traces = || -> Vec<Box<dyn TraceSource>> {
        vec![
            Box::new(FreshMissTrace::new(memory_bound_loop(4, 40))),
            cpu_bound_trace(),
        ]
    };
    let flush = run(
        SmtConfig::baseline(2)
            .with_policy(FetchPolicyKind::Flush)
            .with_prefetcher(false),
        mk_traces(),
        20_000,
    );
    let mlp_flush = run(
        SmtConfig::baseline(2)
            .with_policy(FetchPolicyKind::MlpFlush)
            .with_prefetcher(false),
        mk_traces(),
        20_000,
    );
    let mem_mlp_flush = flush.threads[0].measured_mlp();
    let mem_mlp_mlpflush = mlp_flush.threads[0].measured_mlp();
    assert!(
        mem_mlp_mlpflush >= mem_mlp_flush,
        "MLP-aware flush should preserve at least as much MLP ({mem_mlp_mlpflush}) as flush ({mem_mlp_flush})"
    );
    let mem_ipc_flush = flush.threads[0].ipc(flush.cycles);
    let mem_ipc_mlpflush = mlp_flush.threads[0].ipc(mlp_flush.cycles);
    assert!(
        mem_ipc_mlpflush >= mem_ipc_flush * 0.95,
        "MLP-aware flush should not slow the memory-bound thread down: {mem_ipc_mlpflush} vs {mem_ipc_flush}"
    );
}

#[test]
fn fetched_accounts_for_committed_and_squashed() {
    let cfg = SmtConfig::baseline(2)
        .with_policy(FetchPolicyKind::MlpFlush)
        .with_prefetcher(false);
    let traces: Vec<Box<dyn TraceSource>> = vec![
        Box::new(FreshMissTrace::new(memory_bound_loop(3, 50))),
        cpu_bound_trace(),
    ];
    let stats = run(cfg, traces, 10_000);
    for t in &stats.threads {
        assert!(
            t.fetched_instructions + 512
                >= t.committed_instructions + t.squashed_by_branch + t.squashed_by_policy,
            "fetch/commit/squash accounting is inconsistent: {t:?}"
        );
    }
}

#[test]
fn window_sweep_improves_single_thread_memory_performance() {
    // A larger window exposes more MLP for a memory-bound thread.
    let small = run(
        SmtConfig::baseline(1)
            .with_window_size(128)
            .with_prefetcher(false),
        vec![Box::new(FreshMissTrace::new(memory_bound_loop(6, 120)))],
        15_000,
    );
    let large = run(
        SmtConfig::baseline(1)
            .with_window_size(1024)
            .with_prefetcher(false),
        vec![Box::new(FreshMissTrace::new(memory_bound_loop(6, 120)))],
        15_000,
    );
    assert!(
        large.threads[0].ipc(large.cycles) > small.threads[0].ipc(small.cycles),
        "a bigger window should help a memory-bound loop"
    );
}

#[test]
fn higher_memory_latency_slows_memory_bound_threads() {
    let fast = run(
        SmtConfig::baseline(1)
            .with_memory_latency(200)
            .with_prefetcher(false),
        vec![Box::new(FreshMissTrace::new(memory_bound_loop(2, 60)))],
        15_000,
    );
    let slow = run(
        SmtConfig::baseline(1)
            .with_memory_latency(800)
            .with_prefetcher(false),
        vec![Box::new(FreshMissTrace::new(memory_bound_loop(2, 60)))],
        15_000,
    );
    assert!(
        slow.cycles > fast.cycles,
        "800-cycle memory must be slower than 200-cycle memory"
    );
}
