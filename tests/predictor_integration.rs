//! Integration tests for the predictor stack (long-latency load predictor, LLSR,
//! MLP distance predictor) measured through full pipeline runs — the Figures 6, 7
//! and 8 claims at unit-test scale.

use smt_core::experiments::predictors::{figure4, predictor_characterization};
use smt_core::runner::{run_single_thread, RunScale};
use smt_types::SmtConfig;

#[test]
fn long_latency_predictor_accuracy_is_high_across_memory_benchmarks() {
    // Figure 6: "no less than 94%, average 99.4%". At unit-test scale we require a
    // slightly looser floor but the same character. Predictors are characterized
    // on the raw miss stream (prefetcher off), as in the Table I setup.
    let cfg = SmtConfig::baseline(1).with_prefetcher(false);
    for name in ["swim", "equake", "applu", "lucas", "mcf"] {
        let stats = run_single_thread(name, &cfg, RunScale::test()).unwrap();
        let acc = stats.threads[0].lll_predictor_accuracy();
        assert!(acc > 0.90, "{name}: long-latency predictor accuracy {acc}");
    }
}

#[test]
fn miss_prediction_accuracy_is_reasonable_for_memory_intensive_benchmarks() {
    let cfg = SmtConfig::baseline(1).with_prefetcher(false);
    for name in ["swim", "equake", "applu"] {
        let stats = run_single_thread(name, &cfg, RunScale::test()).unwrap();
        let acc = stats.threads[0].lll_predictor_miss_accuracy();
        assert!(
            acc > 0.5,
            "{name}: accuracy over actual misses is only {acc}"
        );
    }
}

#[test]
fn mlp_predictor_classifies_mlp_correctly_most_of_the_time() {
    // Figure 7: average binary MLP prediction accuracy 91.5%.
    let cfg = SmtConfig::baseline(1).with_prefetcher(false);
    for name in ["swim", "fma3d", "mcf"] {
        let stats = run_single_thread(name, &cfg, RunScale::test()).unwrap();
        let acc = stats.threads[0].mlp_predictor_accuracy();
        assert!(acc > 0.6, "{name}: binary MLP prediction accuracy {acc}");
    }
}

#[test]
fn mlp_distance_predictions_are_far_enough_most_of_the_time() {
    // Figure 8: the paper reports 87.8% on real SPEC traces. The synthetic miss
    // streams have more cross-burst irregularity inside the LLSR window, so the
    // bound here is looser (see EXPERIMENTS.md); the property that most
    // predictions cover the actual distance for the most regular benchmarks still
    // holds.
    let cfg = SmtConfig::baseline(1).with_prefetcher(false);
    for name in ["swim", "fma3d", "equake"] {
        let stats = run_single_thread(name, &cfg, RunScale::test()).unwrap();
        let acc = stats.threads[0].mlp_distance_accuracy();
        assert!(acc > 0.40, "{name}: far-enough accuracy {acc}");
    }
}

#[test]
fn characterization_rows_cover_all_benchmarks_with_valid_fractions() {
    let rows = predictor_characterization(RunScale::tiny()).unwrap();
    assert_eq!(rows.len(), 26);
    for row in &rows {
        let total = row.mlp_true_positive
            + row.mlp_true_negative
            + row.mlp_false_positive
            + row.mlp_false_negative;
        assert!(
            total <= 1.0 + 1e-9,
            "{}: MLP outcome fractions sum to {total}",
            row.benchmark
        );
        assert!(row.lll_accuracy >= 0.0 && row.lll_accuracy <= 1.0);
        assert!(row.mlp_distance_accuracy >= 0.0 && row.mlp_distance_accuracy <= 1.0);
    }
}

#[test]
fn figure4_cdfs_are_monotone_and_complete() {
    let cdfs = figure4(RunScale::test()).unwrap();
    assert_eq!(cdfs.len(), 6);
    for cdf in &cdfs {
        assert!(
            !cdf.cdf.is_empty(),
            "{} produced no MLP-distance observations",
            cdf.benchmark
        );
        let mut last = 0.0;
        for &(_, fraction) in &cdf.cdf {
            assert!(
                fraction >= last - 1e-12,
                "{}: CDF must be monotone",
                cdf.benchmark
            );
            last = fraction;
        }
        assert!(
            (last - 1.0).abs() < 1e-9,
            "{}: CDF must reach 1.0",
            cdf.benchmark
        );
    }
}

#[test]
fn mlp_distances_respect_the_llsr_bound() {
    // Predicted MLP distances are clamped at the LLSR length (ROB / threads).
    let cfg = SmtConfig::baseline(1);
    let stats = run_single_thread("fma3d", &cfg, RunScale::test()).unwrap();
    let hist = &stats.threads[0].mlp_distance_histogram;
    assert!(!hist.is_empty());
    let max_bin_bound = hist.len() as u32 * smt_types::ThreadStats::MLP_HIST_BIN;
    assert!(
        max_bin_bound <= 256 + smt_types::ThreadStats::MLP_HIST_BIN,
        "predicted distances exceed the LLSR bound: up to {max_bin_bound}"
    );
}
