//! Property-based tests of the `.smtt` on-disk trace format: every encodable
//! op round-trips through encode/decode bit for bit, whole files round-trip
//! through `record_source` → [`FileTraceSource`] verbatim, and malformed
//! files — truncation, trailing bytes, wrong version, empty traces — are
//! rejected at open time with typed [`SimError`]s rather than panics or
//! garbage ops.

use proptest::prelude::*;

use smt_trace::format::{
    decode_record, encode_record, TraceHeader, FORMAT_VERSION, HEADER_LEN, RECORD_LEN,
};
use smt_trace::{record_source, FileTraceSource, ScriptedTrace, TraceSource};
use smt_types::{BranchInfo, MemInfo, OpKind, SimError, TraceOp};

/// Every well-formed, encodable [`TraceOp`]: metadata present exactly when
/// the kind calls for it, dependence distances within the on-disk 16-bit
/// field (the sentinel `0xFFFF` itself means "none" and is not a distance).
/// The vendored proptest stand-in has no `option::of`; an explicit presence
/// bit plays the same role.
fn arb_dep() -> impl Strategy<Value = Option<u32>> {
    (any::<bool>(), 1u32..0xFFFF).prop_map(|(some, distance)| some.then_some(distance))
}

fn arb_op() -> impl Strategy<Value = TraceOp> {
    (
        any::<u64>(),
        0usize..OpKind::ALL.len(),
        arb_dep(),
        arb_dep(),
        any::<u64>(),
        any::<u8>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(pc, kind_index, dep0, dep1, payload, size, taken, unconditional)| {
                let kind = OpKind::ALL[kind_index];
                TraceOp {
                    pc,
                    kind,
                    src_deps: [dep0, dep1],
                    mem: kind.is_mem().then_some(MemInfo {
                        addr: payload,
                        size,
                    }),
                    branch: (kind == OpKind::Branch).then_some(BranchInfo {
                        taken,
                        target: payload,
                        unconditional,
                    }),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity, and re-encoding the decoded op
    /// reproduces the original record bytes exactly — the format loses no
    /// information and has a single canonical encoding per op.
    #[test]
    fn record_encoding_round_trips_bit_for_bit(op in arb_op()) {
        let mut bytes = [0u8; RECORD_LEN];
        encode_record(&op, &mut bytes).expect("well-formed ops encode");
        let decoded = decode_record(&bytes).expect("encoded records decode");
        prop_assert_eq!(decoded, op);
        let mut reencoded = [0u8; RECORD_LEN];
        encode_record(&decoded, &mut reencoded).expect("decoded ops re-encode");
        prop_assert_eq!(reencoded, bytes);
    }

    /// Oversized dependence distances are rejected at encode time instead of
    /// being silently truncated into a different (or sentinel) distance.
    #[test]
    fn record_encoding_rejects_unencodable_distances(distance in 0xFFFFu32..u32::MAX) {
        let op = TraceOp::int_alu(0x10).with_dep(distance);
        let mut bytes = [0u8; RECORD_LEN];
        prop_assert!(matches!(
            encode_record(&op, &mut bytes),
            Err(SimError::InvalidConfig { .. })
        ));
    }
}

proptest! {
    // Each case writes and reads a real file; fewer cases than the pure
    // in-memory property keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A recorded file replays verbatim: same ops in order, and the header
    /// carries the recorded name, op count and MLP flag.
    #[test]
    fn recorded_files_replay_verbatim(
        ops in prop::collection::vec(arb_op(), 1..200),
        mlp_intensive in any::<bool>(),
    ) {
        let path = std::env::temp_dir().join(format!(
            "smt-prop-roundtrip-{}-{}.smtt",
            std::process::id(),
            ops.len(),
        ));
        let mut scripted = ScriptedTrace::looping("scripted", ops.clone());
        record_source(&mut scripted, ops.len() as u64, &path, mlp_intensive)
            .expect("recording succeeds");

        let mut replay = FileTraceSource::open(&path).expect("recorded file opens");
        prop_assert_eq!(replay.op_count(), ops.len() as u64);
        prop_assert_eq!(replay.name(), "scripted");
        let mut buf = Vec::new();
        replay.refill(&mut buf, ops.len());
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(buf, ops);
    }
}

/// Writes a small valid trace and returns its bytes.
fn valid_trace_bytes() -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("smt-prop-seed-{}.smtt", std::process::id()));
    let ops = vec![
        TraceOp::int_alu(0x100),
        TraceOp::load(0x104, 0x8000),
        TraceOp::branch(0x108, true, 0x100),
    ];
    let mut scripted = ScriptedTrace::looping("seed", ops);
    record_source(&mut scripted, 3, &path, false).expect("recording succeeds");
    let bytes = std::fs::read(&path).expect("recorded file reads");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Writes `bytes` to a fresh temp path, opens it as a trace, and returns the
/// result (removing the file either way).
fn open_bytes(tag: &str, bytes: &[u8]) -> Result<FileTraceSource, SimError> {
    let path = std::env::temp_dir().join(format!("smt-prop-{tag}-{}.smtt", std::process::id()));
    std::fs::write(&path, bytes).expect("temp trace writes");
    let result = FileTraceSource::open(&path);
    std::fs::remove_file(&path).ok();
    result
}

/// [`open_bytes`] for inputs that must be rejected: returns the error.
fn open_err(tag: &str, bytes: &[u8]) -> SimError {
    match open_bytes(tag, bytes) {
        Ok(_) => panic!("`{tag}`: malformed trace unexpectedly opened"),
        Err(e) => e,
    }
}

#[test]
fn resident_open_matches_streaming_open_and_verifies_digest() {
    let good = valid_trace_bytes();
    let path = std::env::temp_dir().join(format!("smt-prop-resident-{}.smtt", std::process::id()));
    std::fs::write(&path, &good).expect("temp trace writes");

    // Resident and streaming readers must hand out the identical stream,
    // wraps included.
    let mut streaming = FileTraceSource::open(&path).expect("opens streaming");
    let mut resident = FileTraceSource::open_resident(&path).expect("opens resident");
    let (mut a, mut b) = (Vec::new(), Vec::new());
    streaming.refill(&mut a, 10);
    resident.refill(&mut b, 10);
    assert_eq!(a, b, "resident replay diverged from streaming replay");

    // A flipped record byte must fail the resident load's digest check.
    let mut corrupt = good;
    corrupt[HEADER_LEN + 3] ^= 0xFF;
    std::fs::write(&path, &corrupt).expect("temp trace rewrites");
    let err = match FileTraceSource::open_resident(&path) {
        Ok(_) => panic!("corrupt record area unexpectedly loaded"),
        Err(e) => e,
    };
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("digest"), "{err}");
}

#[test]
fn open_rejects_malformed_files_with_typed_errors() {
    let good = valid_trace_bytes();
    assert!(
        open_bytes("good", &good).is_ok(),
        "the seed file itself opens"
    );

    // Truncation: a partial header, and a record area shorter than the
    // header's op_count promises.
    let err = open_err("short-header", &good[..HEADER_LEN / 2]);
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("header"), "{err}");

    let err = open_err("truncated", &good[..good.len() - RECORD_LEN / 2]);
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("truncated"), "{err}");

    // Trailing garbage after the promised records.
    let mut oversized = good.clone();
    oversized.extend_from_slice(&[0u8; 7]);
    let err = open_err("oversized", &oversized);
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");

    // A future format version must be refused, not misparsed.
    let mut wrong_version = good.clone();
    wrong_version[8..10].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let err = open_err("wrong-version", &wrong_version);
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("version"), "{err}");

    // An empty trace cannot serve an infinite stream.
    let empty_header = TraceHeader {
        version: FORMAT_VERSION,
        benchmark: "empty".to_string(),
        mlp_intensive: false,
        op_count: 0,
        digest: smt_trace::format::DIGEST_SEED,
    };
    let err = open_err("empty", &empty_header.encode().expect("encodes"));
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("no ops"), "{err}");

    // A missing file is a typed error too.
    let missing = std::env::temp_dir().join("smt-prop-definitely-missing.smtt");
    assert!(matches!(
        FileTraceSource::open(&missing),
        Err(SimError::InvalidConfig { .. })
    ));
}
