//! Golden-stats regression tests: pin bit-for-bit [`MachineStats`] equality
//! against a fixture captured from the pre-optimization pipeline, across every
//! built-in fetch policy at tiny scale on 2- and 4-thread workloads.
//!
//! The fixture (`tests/golden/machine_stats.json`) encodes the exact counter
//! values of the seed simulator; any change to simulated behaviour — however
//! small — fails these tests. Performance work on the cycle loop must keep them
//! green. Regenerate deliberately (after an *intentional* behaviour change)
//! with:
//!
//! ```text
//! SMT_GOLDEN_REGEN=1 cargo test --test golden_stats
//! ```

use serde::{Deserialize, Serialize};
use smt_core::runner::{self, RunScale};
use smt_types::config::FetchPolicyKind;
use smt_types::MachineStats;

/// One pinned simulation outcome.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct GoldenCase {
    policy: FetchPolicyKind,
    benchmarks: Vec<String>,
    stats: MachineStats,
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("machine_stats.json")
}

fn golden_scale() -> RunScale {
    RunScale::tiny()
}

/// The workload mix pinned by the fixture: an MLP-heavy thread (mcf) to trigger
/// policy flushes plus branchy integer threads (gcc, twolf) to trigger branch
/// squashes, at both supported SMT widths.
fn golden_workloads() -> Vec<Vec<&'static str>> {
    vec![vec!["mcf", "gcc"], vec!["mcf", "swim", "gcc", "twolf"]]
}

fn run_all_cases() -> Vec<GoldenCase> {
    let scale = golden_scale();
    let mut cases = Vec::new();
    for benchmarks in golden_workloads() {
        for policy in FetchPolicyKind::ALL {
            let config = smt_types::SmtConfig::baseline(benchmarks.len());
            let stats = runner::run_multiprogram(&benchmarks, policy, &config, scale)
                .expect("golden case runs");
            cases.push(GoldenCase {
                policy,
                benchmarks: benchmarks.iter().map(|b| b.to_string()).collect(),
                stats,
            });
        }
    }
    cases
}

#[test]
fn machine_stats_match_golden_fixture_bit_for_bit() {
    let cases = run_all_cases();
    let path = golden_path();
    if std::env::var("SMT_GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&cases).expect("fixture serializes");
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        smt_core::artifacts::write_atomic(&path, json + "\n").expect("fixture written");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with SMT_GOLDEN_REGEN=1",
            path.display()
        )
    });
    let golden: Vec<GoldenCase> = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!(
        golden.len(),
        cases.len(),
        "fixture case count drifted; regenerate deliberately with SMT_GOLDEN_REGEN=1"
    );
    for (current, pinned) in cases.iter().zip(&golden) {
        assert_eq!(current.policy, pinned.policy, "fixture order drifted");
        assert_eq!(
            current.benchmarks, pinned.benchmarks,
            "fixture order drifted"
        );
        assert_eq!(
            current.stats,
            pinned.stats,
            "MachineStats diverged from golden fixture for policy `{}` on {:?}",
            current.policy.name(),
            current.benchmarks,
        );
    }
}

#[test]
fn golden_workloads_exercise_flushes_and_branch_squashes() {
    // The fixture only pins the optimized pipeline against the seed if the
    // pinned runs actually take the squash paths (policy flushes discarding
    // in-flight instructions, branch mispredictions squashing mid-execution).
    let cases = run_all_cases();
    let total = |f: fn(&smt_types::ThreadStats) -> u64| -> u64 {
        cases
            .iter()
            .flat_map(|c| c.stats.threads.iter())
            .map(f)
            .sum()
    };
    assert!(
        total(|t| t.squashed_by_policy) > 0,
        "no golden run triggered a policy flush"
    );
    assert!(
        total(|t| t.squashed_by_branch) > 0,
        "no golden run triggered a branch squash"
    );
    assert!(total(|t| t.policy_flushes) > 0);
    assert!(total(|t| t.branch_mispredictions) > 0);
}

#[test]
fn squash_with_pending_completion_events_is_deterministic_and_consistent() {
    // Branch mispredictions and MLP-flush decisions squash instructions that
    // have issued but not yet completed (long-latency loads, 12-cycle FP ops),
    // leaving their completion events pending. The simulator must discard those
    // stale completions: the run must terminate, commit the full budget, and be
    // bit-for-bit reproducible.
    let scale = golden_scale();
    let benchmarks = ["mcf", "twolf"];
    for policy in [
        FetchPolicyKind::Flush,
        FetchPolicyKind::MlpFlush,
        FetchPolicyKind::MlpBinaryFlushAtStall,
    ] {
        let config = smt_types::SmtConfig::baseline(benchmarks.len());
        let a = runner::run_multiprogram(&benchmarks, policy, &config, scale).unwrap();
        let b = runner::run_multiprogram(&benchmarks, policy, &config, scale).unwrap();
        assert_eq!(a, b, "{}: repeated runs diverged", policy.name());
        let squashed: u64 = a
            .threads
            .iter()
            .map(|t| t.squashed_by_policy + t.squashed_by_branch)
            .sum();
        assert!(squashed > 0, "{}: nothing was squashed", policy.name());
        let committed = a
            .threads
            .iter()
            .map(|t| t.committed_instructions)
            .max()
            .unwrap();
        assert!(
            committed >= scale.instructions_per_thread,
            "{}: budget not reached under squash pressure",
            policy.name()
        );
    }
}
