//! Integration tests of the declarative experiment API: registry
//! completeness against the legacy `experiments::*` entry points, spec
//! serialization round-trips, and exactly-once semantics of the shared
//! single-threaded reference cache under concurrency.

use smt_core::experiments::policies::{
    alternative_policies, four_thread_comparison, ipc_stacks, partitioning_comparison,
    policy_comparison_two_thread, GroupSummary,
};
use smt_core::experiments::predictors::{figure4, figure5, predictor_characterization};
use smt_core::experiments::sweeps::memory_latency_sweep;
use smt_core::experiments::{
    characterization, engine, ExperimentRegistry, ExperimentReport, ExperimentSpec, SummaryRow,
};
use smt_core::runner::{RunScale, StReferenceCache};
use smt_core::workloads::WorkloadGroup;
use smt_types::config::FetchPolicyKind;
use smt_types::SmtConfig;

const TOLERANCE: f64 = 1e-12;

fn scale() -> RunScale {
    RunScale::tiny()
}

fn spec(name: &str) -> ExperimentSpec {
    ExperimentRegistry::builtin()
        .get(name)
        .unwrap_or_else(|| panic!("registry entry `{name}` missing"))
        .clone()
        .with_scale(scale())
}

fn summary<'a>(
    report: &'a ExperimentReport,
    policy: FetchPolicyKind,
    group: Option<&str>,
    parameter: Option<u64>,
) -> &'a SummaryRow {
    report
        .summaries
        .iter()
        .find(|row| {
            row.policy == policy && row.group.as_deref() == group && row.parameter == parameter
        })
        .unwrap_or_else(|| panic!("no summary for {policy:?} {group:?} {parameter:?}"))
}

fn assert_group_summaries_match(report: &ExperimentReport, legacy: &[GroupSummary]) {
    for legacy_group in legacy {
        for comparison in &legacy_group.policies {
            let row = summary(
                report,
                comparison.policy,
                Some(legacy_group.group.label()),
                None,
            );
            assert!(
                (row.avg_stp - comparison.avg_stp).abs() < TOLERANCE,
                "{:?}/{}: engine STP {} vs legacy {}",
                comparison.policy,
                legacy_group.group.label(),
                row.avg_stp,
                comparison.avg_stp
            );
            assert!(
                (row.avg_antt - comparison.avg_antt).abs() < TOLERANCE,
                "{:?}/{}: engine ANTT {} vs legacy {}",
                comparison.policy,
                legacy_group.group.label(),
                row.avg_antt,
                comparison.avg_antt
            );
        }
    }
}

#[test]
fn fig09_spec_matches_legacy_two_thread_comparison() {
    let report = engine::run_spec(
        &spec("fig09_two_thread_policies")
            .with_workload_limit_per_group(1)
            .unwrap(),
    )
    .unwrap();
    let legacy = policy_comparison_two_thread(scale(), 1).unwrap();
    assert_group_summaries_match(&report, &legacy);
}

#[test]
fn fig09_cells_reproduce_legacy_ipc_stacks() {
    let mut fig09 = spec("fig09_two_thread_policies");
    // Keep only the first MLP-intensive workload, matching
    // ipc_stacks(scale, MlpIntensive, 1).
    fig09.workloads = vec![vec!["apsi".to_string(), "mesa".to_string()]];
    let report = engine::run_spec(&fig09).unwrap();
    let stacks = ipc_stacks(scale(), WorkloadGroup::MlpIntensive, 1).unwrap();
    assert_eq!(stacks.len(), 1);
    assert_eq!(stacks[0].workload, "apsi-mesa");
    for (policy, legacy_ipcs) in &stacks[0].per_policy {
        let cell = report
            .policy_cells
            .iter()
            .find(|c| c.policy == *policy)
            .unwrap();
        assert_eq!(&cell.per_thread_ipc, legacy_ipcs, "{policy:?}");
    }
}

#[test]
fn fig13_spec_matches_legacy_four_thread_comparison() {
    let report =
        engine::run_spec(&spec("fig13_four_thread_policies").with_workload_limit(2)).unwrap();
    let legacy = four_thread_comparison(scale(), 2).unwrap();
    for comparison in &legacy {
        // The overall aggregate (group = None) is the legacy semantics.
        let row = summary(&report, comparison.policy, None, None);
        assert_eq!(row.workloads, 2);
        assert!((row.avg_stp - comparison.avg_stp).abs() < TOLERANCE);
        assert!((row.avg_antt - comparison.avg_antt).abs() < TOLERANCE);
    }
}

#[test]
fn fig15_spec_matches_legacy_memory_latency_sweep() {
    let mut sweep_spec = spec("fig15_memory_latency_sweep");
    sweep_spec.sweep.as_mut().unwrap().values = vec![200];
    let report = engine::run_spec(&sweep_spec).unwrap();
    let legacy = memory_latency_sweep(&[200], scale()).unwrap();
    assert_eq!(legacy.len(), 1);
    for comparison in &legacy[0].policies {
        let row = summary(&report, comparison.policy, None, Some(200));
        assert!((row.avg_stp - comparison.avg_stp).abs() < TOLERANCE);
        assert!((row.avg_antt - comparison.avg_antt).abs() < TOLERANCE);
    }
}

#[test]
fn fig20_spec_matches_legacy_alternative_policies() {
    let report = engine::run_spec(
        &spec("fig20_alternative_policies")
            .with_workload_limit_per_group(1)
            .unwrap(),
    )
    .unwrap();
    let legacy = alternative_policies(scale(), 1).unwrap();
    assert_group_summaries_match(&report, &legacy);
}

#[test]
fn fig22_specs_match_legacy_partitioning_comparison() {
    let two = engine::run_spec(
        &spec("fig22_partitioning_two_thread")
            .with_workload_limit_per_group(1)
            .unwrap(),
    )
    .unwrap();
    let four =
        engine::run_spec(&spec("fig22_partitioning_four_thread").with_workload_limit(1)).unwrap();
    let (legacy_two, legacy_four) = partitioning_comparison(scale(), 1, 1).unwrap();
    assert_group_summaries_match(&two, &legacy_two);
    for comparison in &legacy_four {
        let row = summary(&four, comparison.policy, None, None);
        assert!((row.avg_stp - comparison.avg_stp).abs() < TOLERANCE);
    }
}

#[test]
fn table1_spec_matches_legacy_characterization() {
    let mut characterization_spec = spec("table1_characterization");
    characterization_spec.workloads = vec![vec!["mcf".to_string()], vec!["bzip2".to_string()]];
    let report = engine::run_spec(&characterization_spec).unwrap();
    for row in &report.bench_rows {
        let legacy = characterization::characterize(&row.benchmark, scale()).unwrap();
        assert_eq!(
            row.lll_per_kinst,
            Some(legacy.lll_per_kinst),
            "{}",
            row.benchmark
        );
        assert_eq!(row.mlp, Some(legacy.mlp));
        assert_eq!(row.mlp_impact, Some(legacy.mlp_impact));
        assert_eq!(row.class.as_deref(), Some(legacy.measured_class.label()));
        assert_eq!(row.ipc, legacy.ipc);
    }
}

#[test]
fn fig04_and_fig05_specs_match_legacy_rows() {
    let mut cdf_spec = spec("fig04_mlp_distance_cdf");
    cdf_spec.workloads.truncate(2);
    let report = engine::run_spec(&cdf_spec).unwrap();
    let legacy = figure4(scale()).unwrap();
    for row in &report.bench_rows {
        let legacy_row = legacy
            .iter()
            .find(|c| c.benchmark == row.benchmark)
            .unwrap();
        assert_eq!(row.mlp_distance_cdf.as_ref().unwrap(), &legacy_row.cdf);
    }

    let mut prefetch_spec = spec("fig05_prefetcher");
    prefetch_spec.workloads = vec![vec!["swim".to_string()]];
    let report = engine::run_spec(&prefetch_spec).unwrap();
    let legacy = figure5(scale()).unwrap();
    let legacy_row = legacy.iter().find(|r| r.benchmark == "swim").unwrap();
    assert_eq!(report.bench_rows[0].ipc, legacy_row.ipc_with_prefetch);
    assert_eq!(
        report.bench_rows[0].ipc_without_prefetch,
        Some(legacy_row.ipc_without_prefetch)
    );
}

#[test]
fn fig06_08_spec_matches_legacy_predictor_characterization() {
    let mut predictor_spec = spec("fig06_08_predictor_accuracy");
    predictor_spec.workloads = vec![vec!["swim".to_string()], vec!["mcf".to_string()]];
    let report = engine::run_spec(&predictor_spec).unwrap();
    let legacy = predictor_characterization(scale()).unwrap();
    for row in &report.bench_rows {
        let legacy_row = legacy
            .iter()
            .find(|r| r.benchmark == row.benchmark)
            .unwrap();
        assert_eq!(row.lll_accuracy, Some(legacy_row.lll_accuracy));
        assert_eq!(row.lll_miss_accuracy, Some(legacy_row.lll_miss_accuracy));
        let legacy_mlp_accuracy = legacy_row.mlp_true_positive + legacy_row.mlp_true_negative;
        assert!((row.mlp_accuracy.unwrap() - legacy_mlp_accuracy).abs() < TOLERANCE);
        assert_eq!(
            row.mlp_distance_accuracy,
            Some(legacy_row.mlp_distance_accuracy)
        );
    }
}

#[test]
fn report_round_trips_through_json_and_toml() {
    let report = engine::run_spec(
        &spec("fig09_two_thread_policies")
            .with_workload_limit_per_group(1)
            .unwrap(),
    )
    .unwrap();
    let json = report.to_json().unwrap();
    let from_json: ExperimentReport = serde_json::from_str(&json).unwrap();
    assert_eq!(from_json, report);
    let toml_text = report.to_toml().unwrap();
    let from_toml: ExperimentReport = toml::from_str(&toml_text).unwrap();
    assert_eq!(from_toml, report);
}

#[test]
fn shared_reference_cache_simulates_each_reference_exactly_once() {
    let cache = StReferenceCache::new();
    let run_scale = scale();
    let baseline = SmtConfig::baseline(2);
    let slow_memory = baseline.clone().with_memory_latency(600);
    // 4 benchmarks x 2 configurations = 8 distinct references.
    let benchmarks = ["mcf", "swim", "gcc", "gap"];
    let configs = [&baseline, &slow_memory];
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let cache = &cache;
            let configs = &configs;
            scope.spawn(move || {
                // Each worker asks for every reference, in a different order.
                for step in 0..benchmarks.len() * configs.len() {
                    let index = (step + worker) % (benchmarks.len() * configs.len());
                    let benchmark = benchmarks[index % benchmarks.len()];
                    let config = configs[index / benchmarks.len()];
                    let cpi = cache.st_cpi(benchmark, config, run_scale, 1_000).unwrap();
                    assert!(cpi > 0.0);
                }
            });
        }
    });
    assert_eq!(cache.len(), 8, "8 distinct references should be cached");
    assert_eq!(
        cache.reference_runs(),
        8,
        "every reference must be simulated exactly once across 8 threads"
    );
}

#[test]
fn engine_results_do_not_depend_on_thread_count() {
    let grid_spec = spec("fig09_two_thread_policies")
        .with_workload_limit_per_group(1)
        .unwrap();
    let serial = engine::run_spec_with_threads(&grid_spec, 1).unwrap();
    let parallel = engine::run_spec_with_threads(&grid_spec, 8).unwrap();
    assert_eq!(serial.policy_cells, parallel.policy_cells);
    assert_eq!(serial.summaries, parallel.summaries);
    assert_eq!(serial.reference_runs, parallel.reference_runs);
}
