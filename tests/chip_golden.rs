//! Chip-level golden-stats and determinism regression tests.
//!
//! The fixture (`tests/golden/chip_stats.json`) pins bit-for-bit
//! [`ChipStats`] for a 2-core x 2-thread chip — shared LLC, contended bus,
//! chip arbitration — under the ICOUNT baseline and the paper's MLP-aware
//! flush policy. Any change to chip-level simulated behaviour fails these
//! tests; regenerate deliberately with:
//!
//! ```text
//! SMT_GOLDEN_REGEN=1 cargo test --test chip_golden
//! ```
//!
//! The determinism tests pin the chip arbitration discipline's core
//! property: results are bit-for-bit reproducible and invariant to the order
//! cores are stepped in within a cycle (engine-thread-count invariance for
//! chip experiment grids is pinned in `smt-core`'s engine tests).

use serde::{Deserialize, Serialize};
use smt_core::chip::ChipSimulator;
use smt_core::runner::{build_trace, RunScale};
use smt_trace::TraceSource;
use smt_types::config::FetchPolicyKind;
use smt_types::{ChipConfig, ChipStats};

/// One pinned chip simulation outcome.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct GoldenChipCase {
    policy: FetchPolicyKind,
    /// Benchmarks per core (the fixed round-robin placement of the
    /// mcf/swim/gcc/twolf workload).
    cores: Vec<Vec<String>>,
    stats: ChipStats,
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("chip_stats.json")
}

fn golden_scale() -> RunScale {
    RunScale::tiny()
}

/// The pinned placement: an MLP-heavy thread next to a branchy one on each
/// core, so policy flushes, branch squashes, LLC contention and bus queueing
/// all trigger.
fn golden_assignments() -> Vec<Vec<&'static str>> {
    vec![vec!["mcf", "gcc"], vec!["swim", "twolf"]]
}

fn chip_traces(
    assignments: &[Vec<&'static str>],
    scale: RunScale,
) -> Vec<Vec<Box<dyn TraceSource>>> {
    assignments
        .iter()
        .map(|core| {
            core.iter()
                .map(|b| build_trace(b, scale).expect("known benchmark"))
                .collect()
        })
        .collect()
}

fn run_chip(policy: FetchPolicyKind) -> ChipStats {
    let scale = golden_scale();
    let config = ChipConfig::baseline(2, 2).with_policy(policy);
    let mut sim = ChipSimulator::new(config, chip_traces(&golden_assignments(), scale))
        .expect("golden chip builds");
    sim.run(scale.sim_options())
}

fn run_all_cases() -> Vec<GoldenChipCase> {
    [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush]
        .into_iter()
        .map(|policy| GoldenChipCase {
            policy,
            cores: golden_assignments()
                .iter()
                .map(|core| core.iter().map(|b| b.to_string()).collect())
                .collect(),
            stats: run_chip(policy),
        })
        .collect()
}

#[test]
fn chip_stats_match_golden_fixture_bit_for_bit() {
    let cases = run_all_cases();
    let path = golden_path();
    if std::env::var("SMT_GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&cases).expect("fixture serializes");
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        smt_core::artifacts::write_atomic(&path, json + "\n").expect("fixture written");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with SMT_GOLDEN_REGEN=1",
            path.display()
        )
    });
    let golden: Vec<GoldenChipCase> = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!(
        golden.len(),
        cases.len(),
        "fixture case count drifted; regenerate deliberately with SMT_GOLDEN_REGEN=1"
    );
    for (current, pinned) in cases.iter().zip(&golden) {
        assert_eq!(current.policy, pinned.policy, "fixture order drifted");
        assert_eq!(current.cores, pinned.cores, "fixture placement drifted");
        assert_eq!(
            current.stats,
            pinned.stats,
            "ChipStats diverged from golden fixture for policy `{}`",
            current.policy.name(),
        );
    }
}

#[test]
fn golden_chip_runs_exercise_contention_and_squashes() {
    // The fixture only means something if the pinned runs actually take the
    // chip-specific paths: both cores committing work against the shared
    // level, and the squash machinery firing under the flush policy.
    let cases = run_all_cases();
    for case in &cases {
        for (core, stats) in case.stats.cores.iter().enumerate() {
            let committed: u64 = stats.threads.iter().map(|t| t.committed_instructions).sum();
            assert!(
                committed > 0,
                "{}: core {core} committed nothing",
                case.policy.name()
            );
        }
    }
    let flush = cases
        .iter()
        .find(|c| c.policy == FetchPolicyKind::MlpFlush)
        .unwrap();
    let squashed: u64 = flush
        .stats
        .threads()
        .map(|t| t.squashed_by_policy + t.squashed_by_branch)
        .sum();
    assert!(squashed > 0, "no golden chip run squashed anything");
}

#[test]
fn chip_results_are_invariant_to_core_iteration_order() {
    // Step one chip canonically and its twin with the core order reversed
    // every cycle. Under the chip arbitration discipline (cycle-stamped LRU,
    // staged fills, cycle-start-frozen bus congestion, per-requester MSHRs,
    // per-core-disjoint address spaces) the shared level's behaviour is a
    // pure function of each cycle's request set, so the statistics must be
    // bit-for-bit identical.
    let scale = golden_scale();
    let build = || {
        let config = ChipConfig::baseline(2, 2).with_policy(FetchPolicyKind::MlpFlush);
        ChipSimulator::new(config, chip_traces(&golden_assignments(), scale)).expect("chip builds")
    };
    let mut canonical = build();
    let mut reversed = build();
    for _ in 0..6_000 {
        canonical.step();
        reversed.step_with_core_order(&[1, 0]);
    }
    assert_eq!(
        canonical.chip_stats(),
        reversed.chip_stats(),
        "core stepping order leaked into chip results"
    );
    let committed = canonical.chip_stats().total_committed();
    assert!(
        committed > 1_000,
        "run too short to be meaningful: {committed}"
    );
}

#[test]
fn chip_runs_are_bit_for_bit_reproducible() {
    for policy in [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush] {
        assert_eq!(
            run_chip(policy),
            run_chip(policy),
            "{}: repeated chip runs diverged",
            policy.name()
        );
    }
}
