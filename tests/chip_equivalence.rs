//! Property test: a one-core chip is the single-core machine.
//!
//! `ChipSimulator` with `num_cores == 1` must produce bit-for-bit identical
//! [`smt_types::MachineStats`] to the pre-refactor single-core path
//! (`SmtSimulator`) for random small configurations and workloads: same
//! benchmarks, same fetch policy, same tweaked machine parameters, same run
//! length. This pins the chip refactor's central invariant — the shared-LLC
//! split, per-requester MSHRs, bus hooks and chip stepping add *zero*
//! behavioural change until a second core exists.

use proptest::prelude::*;
use smt_core::chip::ChipSimulator;
use smt_core::pipeline::{SimOptions, SmtSimulator};
use smt_core::runner::{build_trace, RunScale};
use smt_trace::TraceSource;
use smt_types::config::FetchPolicyKind;
use smt_types::{ChipConfig, SmtConfig};

const BENCHMARKS: [&str; 6] = ["mcf", "gcc", "swim", "twolf", "gap", "mesa"];

/// The fetch policies most sensitive to timing perturbations: the baseline,
/// both headline MLP-aware policies, and a resource-partitioning scheme.
const POLICIES: [FetchPolicyKind; 4] = [
    FetchPolicyKind::Icount,
    FetchPolicyKind::MlpFlush,
    FetchPolicyKind::MlpStall,
    FetchPolicyKind::Dcra,
];

fn traces_for(benchmarks: &[&str], scale: RunScale) -> Vec<Box<dyn TraceSource>> {
    benchmarks
        .iter()
        .map(|b| build_trace(b, scale).expect("known benchmark"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn one_core_chip_is_the_single_core_machine(
        bench_a in 0usize..BENCHMARKS.len(),
        bench_b in 0usize..BENCHMARKS.len(),
        two_threads in proptest::prelude::any::<bool>(),
        policy_index in 0usize..POLICIES.len(),
        memory_latency in 150u64..500,
        rob_choice in 0usize..3,
        mshr_cap in 4u32..32,
        instructions in 300u64..1_200,
        seed in 1u64..10_000,
    ) {
        let benchmarks: Vec<&str> = if two_threads {
            vec![BENCHMARKS[bench_a], BENCHMARKS[bench_b]]
        } else {
            vec![BENCHMARKS[bench_a]]
        };
        let mut config = SmtConfig::baseline(benchmarks.len())
            .with_policy(POLICIES[policy_index])
            .with_memory_latency(memory_latency)
            .with_window_size([128, 256, 512][rob_choice]);
        config.max_outstanding_misses = mshr_cap;
        let scale = RunScale {
            instructions_per_thread: instructions,
            warmup_instructions: instructions / 4,
            seed,
            max_cycles: None,
        };
        let options = SimOptions {
            max_instructions_per_thread: scale.instructions_per_thread,
            warmup_instructions_per_thread: scale.warmup_instructions,
            ..SimOptions::default()
        };

        let mut single = SmtSimulator::new(config.clone(), traces_for(&benchmarks, scale))
            .expect("single-core machine builds");
        let single_stats = single.run(options);

        let chip_config = ChipConfig::single_core(config);
        let mut chip = ChipSimulator::new(chip_config, vec![traces_for(&benchmarks, scale)])
            .expect("one-core chip builds");
        let chip_stats = chip.run(options);

        prop_assert_eq!(chip_stats.num_cores(), 1);
        prop_assert_eq!(chip_stats.cycles, single_stats.cycles);
        prop_assert_eq!(&chip_stats.cores[0], &single_stats);
    }
}
