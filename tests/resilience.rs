//! End-to-end resilience properties of the experiment engine.
//!
//! Three contracts from the resilient-engine work are pinned here, from the
//! outside, against the public API:
//!
//! 1. **Transient chaos is invisible.** Any fault plan whose faults all
//!    recover within the retry budget yields a report bit-for-bit identical
//!    to the fault-free run (modulo wall-clock time and thread count).
//! 2. **Degradation is deterministic.** A permanently failing cell produces
//!    the same degraded report on 1 engine thread and on 4.
//! 3. **Artifact writes are crash-safe.** Killing a process mid-write leaves
//!    either the old artifact or the complete new one on disk — never a
//!    truncated hybrid.

use proptest::prelude::*;
use smt_core::experiments::{
    run_spec_with_policy, ExperimentRegistry, ExperimentReport, RunPolicy,
};
use smt_core::runner::RunScale;
use smt_resil::{FaultAction, FaultPlan, FaultSpec};

/// The small spec every engine test here runs: two workloads of the paper's
/// two-thread policy comparison at the tiny scale.
fn tiny_spec() -> smt_core::experiments::ExperimentSpec {
    ExperimentRegistry::builtin()
        .get("fig09_two_thread_policies")
        .expect("registry entry exists")
        .clone()
        .with_scale(RunScale::tiny())
        .with_workload_limit(1)
}

/// Zeroes the report fields that legitimately differ between runs (wall
/// clock) and thread counts, leaving everything the results contract pins.
fn comparable(mut report: ExperimentReport) -> ExperimentReport {
    report.wall_ms = 0;
    report.threads_used = 0;
    report
}

fn transient_fault(site: &str, action: FaultAction, cell: u64, hits: u64) -> FaultSpec {
    FaultSpec {
        site: site.to_string(),
        action,
        cell: Some(cell),
        hits: Some(hits),
        delay_ms: None,
        probability_pct: None,
        detail: Some("resilience integration test".to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Contract 1: a transient-only plan (every fault disarms within the
    /// retry budget) must recover to bit-for-bit parity with the fault-free
    /// run — same cells, same metrics, complete health, exit-code-0 shape.
    #[test]
    fn transient_chaos_recovers_to_bit_for_bit_parity(
        seed in 0u64..1_000,
        site_finish in any::<bool>(),
        panic_not_fail in any::<bool>(),
        cell in 0u64..6,
        hits in 1u64..3,
    ) {
        let spec = tiny_spec();
        let site = if site_finish { "cell-finish" } else { "cell-start" };
        let action = if panic_not_fail { FaultAction::Panic } else { FaultAction::Fail };
        let plan = FaultPlan {
            seed,
            faults: vec![transient_fault(site, action, cell, hits)],
        };
        let policy = RunPolicy {
            max_retries: 2,
            fault_plan: Some(plan.clone()),
            ..RunPolicy::default()
        };
        prop_assert!(plan.recovers_within(policy.max_attempts()));

        let clean = run_spec_with_policy(&spec, 2, &RunPolicy::default()).unwrap();
        let chaotic = run_spec_with_policy(&spec, 2, &policy).unwrap();
        prop_assert!(chaotic.health.as_ref().unwrap().is_complete());
        prop_assert_eq!(comparable(clean), comparable(chaotic));
    }
}

/// Contract 2: degraded reports — which cells failed, with what error, after
/// how many attempts — are a pure function of the spec and the policy, not
/// of the engine's thread count.
#[test]
fn degraded_reports_are_identical_across_thread_counts() {
    let spec = tiny_spec();
    let plan = FaultPlan {
        seed: 13,
        faults: vec![FaultSpec {
            site: "cell-start".to_string(),
            action: FaultAction::Fail,
            cell: Some(1),
            hits: None, // permanent
            delay_ms: None,
            probability_pct: None,
            detail: Some("permanent integration fault".to_string()),
        }],
    };
    let policy = RunPolicy {
        fault_plan: Some(plan),
        ..RunPolicy::default()
    };
    let serial = run_spec_with_policy(&spec, 1, &policy).unwrap();
    let parallel = run_spec_with_policy(&spec, 4, &policy).unwrap();
    let health = serial.health.clone().unwrap();
    assert!(!health.is_complete());
    assert_eq!(health.failed_cells, 1);
    assert_eq!(comparable(serial), comparable(parallel));
}

/// Two distinguishable multi-megabyte payloads: large enough that a kill
/// reliably lands inside a write, single-valued so corruption is detectable.
fn kill_write_payload(tag: &str) -> String {
    format!("{{\"tag\": \"{}\"}}\n", tag.repeat(2_000_000))
}

/// Child half of the kill-mid-write test, re-executed from the test binary
/// itself: loops forever alternating two large payloads through
/// [`smt_core::artifacts::write_atomic`] until the parent kills it. Runs
/// (and immediately passes) as an ordinary empty test when the env var is
/// absent.
#[test]
fn kill_write_child_helper() {
    let Ok(path) = std::env::var("SMT_KILL_WRITE_PATH") else {
        return;
    };
    let a = kill_write_payload("a");
    let b = kill_write_payload("b");
    loop {
        smt_core::artifacts::write_atomic(&path, &a).expect("child write");
        smt_core::artifacts::write_atomic(&path, &b).expect("child write");
    }
}

/// Contract 3: `write_atomic` under `SIGKILL`. A child process (this same
/// test binary running [`kill_write_child_helper`]) overwrites a
/// trajectory-like JSON artifact in a tight loop; the parent kills it
/// mid-flight. Whatever instant the kill landed, the file must hold one
/// complete payload — never a truncation or interleaving — and the only
/// possible debris is the protocol's `*.tmp` sibling.
#[test]
fn killing_a_writer_mid_write_never_corrupts_the_artifact() {
    let dir = std::env::temp_dir().join(format!("smt-kill-write-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("BENCH_throughput.json");

    let original = kill_write_payload("a");
    let rewrite = kill_write_payload("b");
    smt_core::artifacts::write_atomic(&path, &original).expect("seed artifact");

    let mut child = std::process::Command::new(std::env::current_exe().expect("own path"))
        .args(["kill_write_child_helper", "--exact", "--test-threads=1"])
        .env("SMT_KILL_WRITE_PATH", &path)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn writer child");
    std::thread::sleep(std::time::Duration::from_millis(300));
    child.kill().expect("kill writer");
    let _ = child.wait();

    let found = std::fs::read_to_string(&path).expect("artifact still readable");
    assert!(
        found == original || found == rewrite,
        "artifact is a {}-byte hybrid (original {} bytes, rewrite {} bytes)",
        found.len(),
        original.len(),
        rewrite.len()
    );
    // The only debris a kill may leave is the child's own temp sibling.
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            name == "BENCH_throughput.json" || name.ends_with(".tmp"),
            "unexpected file in scratch dir: {name}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
