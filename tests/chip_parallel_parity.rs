//! Parallel-stepping parity: pooled chip runs are bit-for-bit serial.
//!
//! The worker pool (`crates/core/src/chip/parallel.rs`) must be a pure
//! scheduling change: for any chip configuration, fetch policy, workload
//! placement and run length, stepping the cores on 2 or 4 worker threads
//! produces [`smt_types::ChipStats`] identical to the serial loop — for
//! detailed runs, adaptive per-core policy selection, sampled-style
//! fast-forward + measure alternation, chip experiment grids, and grids
//! running under fault injection. Together with the golden chip fixture
//! (generated serially, checked under `SMT_CHIP_THREADS=2` in CI) this pins
//! the tentpole claim that parallelism never changes simulated behaviour.

use proptest::prelude::*;
use smt_core::chip::ChipSimulator;
use smt_core::experiments::{
    run_spec_with_policy, run_spec_with_threads, ExperimentRegistry, ExperimentReport,
    ExperimentSpec, RunPolicy,
};
use smt_core::pipeline::SimOptions;
use smt_core::runner::{build_trace, RunScale};
use smt_resil::{FaultAction, FaultPlan, FaultSpec};
use smt_trace::TraceSource;
use smt_types::config::FetchPolicyKind;
use smt_types::{AdaptiveConfig, ChipConfig, ChipStats, SelectorKind};

const BENCHMARKS: [&str; 6] = ["mcf", "gcc", "swim", "twolf", "gap", "mesa"];

/// The fetch policies most sensitive to timing perturbations: the baseline,
/// both headline MLP-aware policies, and a resource-partitioning scheme.
const POLICIES: [FetchPolicyKind; 4] = [
    FetchPolicyKind::Icount,
    FetchPolicyKind::MlpFlush,
    FetchPolicyKind::MlpStall,
    FetchPolicyKind::Dcra,
];

fn chip_traces(assignments: &[Vec<&str>], scale: RunScale) -> Vec<Vec<Box<dyn TraceSource>>> {
    assignments
        .iter()
        .map(|core| {
            core.iter()
                .map(|b| build_trace(b, scale).expect("known benchmark"))
                .collect()
        })
        .collect()
}

/// Round-robin placement of the benchmark pool over a `cores` x `threads`
/// chip, rotated by `offset` so property cases see different mixes.
fn assignments(cores: usize, threads: usize, offset: usize) -> Vec<Vec<&'static str>> {
    (0..cores)
        .map(|c| {
            (0..threads)
                .map(|t| BENCHMARKS[(offset + c * threads + t) % BENCHMARKS.len()])
                .collect()
        })
        .collect()
}

fn run_chip(
    config: ChipConfig,
    placement: &[Vec<&'static str>],
    scale: RunScale,
    options: SimOptions,
) -> ChipStats {
    let mut chip = ChipSimulator::new(config, chip_traces(placement, scale)).expect("chip builds");
    chip.run(options)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Detailed runs: serial vs 2-worker vs 4-worker (clamped to the core
    /// count on smaller chips) across random geometry, policy, memory
    /// latency, placement and run length.
    #[test]
    fn pooled_chip_runs_are_bit_for_bit_serial(
        num_cores in 2usize..5,
        threads_per_core in 1usize..3,
        policy_index in 0usize..POLICIES.len(),
        memory_latency in 150u64..500,
        offset in 0usize..BENCHMARKS.len(),
        instructions in 300u64..1_000,
        seed in 1u64..10_000,
    ) {
        let scale = RunScale {
            instructions_per_thread: instructions,
            warmup_instructions: instructions / 4,
            seed,
            max_cycles: None,
        };
        let options = SimOptions {
            max_instructions_per_thread: instructions,
            warmup_instructions_per_thread: instructions / 4,
            ..SimOptions::default()
        };
        let placement = assignments(num_cores, threads_per_core, offset);
        let mut base = ChipConfig::baseline(num_cores, threads_per_core)
            .with_policy(POLICIES[policy_index]);
        base.core.memory_latency = memory_latency;

        let serial = run_chip(base.clone(), &placement, scale, options);
        for workers in [2usize, 4] {
            let pooled = run_chip(
                base.clone().with_chip_threads(workers),
                &placement,
                scale,
                options,
            );
            prop_assert_eq!(
                &pooled,
                &serial,
                "{} workers diverged from serial on {}c{}t",
                workers,
                num_cores,
                threads_per_core
            );
        }
    }
}

/// Adaptive chips: per-core selectors switching policies on interval
/// telemetry must see identical telemetry under the pool, so residency and
/// stats stay bit-for-bit.
#[test]
fn adaptive_chip_pooled_matches_serial() {
    let scale = RunScale::tiny();
    let placement = assignments(2, 2, 0);
    let options = SimOptions {
        max_instructions_per_thread: 4_000,
        warmup_instructions_per_thread: 500,
        ..SimOptions::default()
    };
    for selector in [SelectorKind::Sampling, SelectorKind::MlpThreshold] {
        let adaptive = AdaptiveConfig::new(
            selector,
            vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
        )
        .with_interval_cycles(256);
        let build = |config: ChipConfig| {
            ChipSimulator::new_adaptive(config, chip_traces(&placement, scale), adaptive.clone())
                .expect("adaptive chip builds")
        };
        let mut serial = build(ChipConfig::baseline(2, 2));
        let serial_stats = serial.run(options);
        let mut pooled = build(ChipConfig::baseline(2, 2).with_chip_threads(2));
        let pooled_stats = pooled.run(options);
        assert_eq!(
            pooled_stats, serial_stats,
            "{selector:?}: pooled adaptive run diverged"
        );
        for core in 0..2 {
            assert_eq!(
                pooled.policy_residency(core),
                serial.policy_residency(core),
                "{selector:?}: core {core} residency diverged"
            );
        }
    }
}

/// Sampled-style alternation: a functional fast-forward prefix followed by a
/// detailed measure phase, both through the pool.
#[test]
fn pooled_fast_forward_and_measure_matches_serial() {
    let scale = RunScale::tiny();
    let placement = assignments(2, 2, 1);
    let options = SimOptions {
        max_instructions_per_thread: 2_000,
        warmup_instructions_per_thread: 0,
        ..SimOptions::default()
    };
    let run = |config: ChipConfig| {
        let mut chip =
            ChipSimulator::new(config, chip_traces(&placement, scale)).expect("chip builds");
        chip.fast_forward(5_000);
        chip.run(options)
    };
    let serial = run(ChipConfig::baseline(2, 2).with_policy(FetchPolicyKind::MlpFlush));
    let pooled = run(ChipConfig::baseline(2, 2)
        .with_policy(FetchPolicyKind::MlpFlush)
        .with_chip_threads(2));
    assert_eq!(pooled, serial, "pooled fast-forward + measure diverged");
}

/// A registry chip experiment at the tiny scale, optionally pooled.
fn tiny_chip_spec(name: &str, chip_threads: Option<usize>) -> ExperimentSpec {
    let mut spec = ExperimentRegistry::builtin()
        .get(name)
        .expect("registry entry exists")
        .clone()
        .with_scale(RunScale::tiny())
        .with_workload_limit(1);
    spec.policies.truncate(2);
    spec.chip
        .as_mut()
        .expect("chip experiment has chip parameters")
        .chip_threads = chip_threads;
    spec
}

/// Zeroes the report fields that legitimately differ between runs (wall
/// clock, engine thread count), leaving everything the results contract pins.
fn comparable(mut report: ExperimentReport) -> ExperimentReport {
    report.wall_ms = 0;
    report.threads_used = 0;
    report
}

/// Experiment grids: every cell of a chip grid (and an adaptive chip grid)
/// is invariant to the spec's `chip_threads`.
#[test]
fn chip_grid_reports_are_chip_thread_invariant() {
    for name in ["chip_2c2t_allocation_matrix", "chip_2c2t_adaptive"] {
        let serial =
            run_spec_with_threads(&tiny_chip_spec(name, None), 2).expect("serial grid runs");
        let pooled =
            run_spec_with_threads(&tiny_chip_spec(name, Some(2)), 2).expect("pooled grid runs");
        assert_eq!(
            comparable(pooled),
            comparable(serial),
            "{name}: chip_threads leaked into the report"
        );
    }
}

/// Resilience: a transient fault plan that recovers within the retry budget
/// yields the same report whether the chip cells step serially or pooled —
/// worker panics unwind through the pool like serial panics.
#[test]
fn chip_grid_chaos_recovers_identically_under_the_pool() {
    let plan = FaultPlan {
        seed: 7,
        faults: vec![FaultSpec {
            site: "cell-start".to_string(),
            action: FaultAction::Panic,
            cell: Some(1),
            hits: Some(1),
            delay_ms: None,
            probability_pct: None,
            detail: Some("chip parallel parity test".to_string()),
        }],
    };
    let policy = RunPolicy {
        max_retries: 2,
        fault_plan: Some(plan.clone()),
        ..RunPolicy::default()
    };
    assert!(plan.recovers_within(policy.max_attempts()));

    let clean = run_spec_with_threads(&tiny_chip_spec("chip_2c2t_allocation_matrix", Some(2)), 2)
        .expect("clean grid runs");
    let chaotic = run_spec_with_policy(
        &tiny_chip_spec("chip_2c2t_allocation_matrix", Some(2)),
        2,
        &policy,
    )
    .expect("chaotic grid runs");
    assert!(chaotic.health.as_ref().unwrap().is_complete());
    assert_eq!(comparable(chaotic), comparable(clean));
}
