//! Consistency checks of the STP/ANTT methodology across the runner and metrics
//! modules.

use smt_core::metrics::{antt, arithmetic_mean, harmonic_mean, stp};
use smt_core::runner::{evaluate_workload, run_single_thread, RunScale};
use smt_types::config::FetchPolicyKind;
use smt_types::SmtConfig;

#[test]
fn stp_and_antt_agree_with_manual_computation() {
    let r = evaluate_workload(&["gcc", "gap"], FetchPolicyKind::Icount, RunScale::tiny()).unwrap();
    let st_cpi: Vec<f64> = r.per_thread_st_ipc.iter().map(|ipc| 1.0 / ipc).collect();
    let mt_cpi: Vec<f64> = r.per_thread_ipc.iter().map(|ipc| 1.0 / ipc).collect();
    assert!((stp(&st_cpi, &mt_cpi) - r.stp).abs() < 1e-9);
    assert!((antt(&st_cpi, &mt_cpi) - r.antt).abs() < 1e-9);
}

#[test]
fn single_thread_execution_is_an_upper_bound_for_per_thread_ipc() {
    // Running together can never make an individual program faster than running
    // alone by more than measurement noise (cache warm-up differences).
    let r = evaluate_workload(
        &["swim", "twolf"],
        FetchPolicyKind::Icount,
        RunScale::test(),
    )
    .unwrap();
    for (mt, st) in r.per_thread_ipc.iter().zip(&r.per_thread_st_ipc) {
        assert!(
            mt <= &(st * 1.15),
            "a co-scheduled program should not be faster than running alone: MT {mt} vs ST {st}"
        );
    }
}

#[test]
fn harmonic_mean_is_never_above_arithmetic_mean() {
    let values = [1.3, 0.9, 2.4, 1.7];
    assert!(harmonic_mean(&values) <= arithmetic_mean(&values) + 1e-12);
}

#[test]
fn identical_benchmarks_share_the_machine_roughly_equally() {
    // Two copies of the same benchmark under ICOUNT should commit similar
    // instruction counts (no starvation).
    let r = evaluate_workload(&["gcc", "gcc"], FetchPolicyKind::Icount, RunScale::test()).unwrap();
    let a = r.mt_stats.threads[0].committed_instructions as f64;
    let b = r.mt_stats.threads[1].committed_instructions as f64;
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 1.6, "identical threads diverged: {a} vs {b}");
}

#[test]
fn st_reference_runs_are_policy_independent() {
    // The single-threaded reference CPI depends only on the benchmark and the
    // configuration, not on the SMT fetch policy being evaluated. Because each
    // policy stops its co-runners at different instruction counts, the reference
    // CPIs are sampled at different points of the same curve; they must still be
    // positive and of the same magnitude.
    let icount = evaluate_workload(
        &["swim", "twolf"],
        FetchPolicyKind::Icount,
        RunScale::test(),
    )
    .unwrap();
    let flush =
        evaluate_workload(&["swim", "twolf"], FetchPolicyKind::Flush, RunScale::test()).unwrap();
    for (a, b) in icount
        .per_thread_st_ipc
        .iter()
        .zip(&flush.per_thread_st_ipc)
    {
        assert!(a > &0.0 && b > &0.0);
        let ratio = (a / b).max(b / a);
        assert!(ratio < 2.0, "ST references diverged: {a} vs {b}");
    }
}

#[test]
fn single_thread_stats_are_self_consistent() {
    let cfg = SmtConfig::baseline(1);
    let stats = run_single_thread("equake", &cfg, RunScale::test()).unwrap();
    let t = &stats.threads[0];
    assert!(t.loads + t.stores <= t.committed_instructions);
    assert!(t.long_latency_loads <= t.loads);
    assert!(t.l2_load_misses <= t.l1d_load_misses);
    assert!(t.l3_load_misses <= t.l2_load_misses);
    assert!(t.branch_mispredictions <= t.branches + 64);
    // Statistics are reset after the warm-up phase, so instructions fetched during
    // warm-up but committed afterwards leave `fetched` slightly below `committed`;
    // the gap is bounded by the in-flight window.
    assert!(t.fetched_instructions + 1024 >= t.committed_instructions);
    assert!(t.mlp_cycles <= stats.cycles);
}
