//! Property-based tests (proptest) spanning the trace generator, the workload
//! tables, and the metrics, run through the public APIs of the workspace crates.

use proptest::prelude::*;

use smt_core::metrics::{antt, arithmetic_mean, harmonic_mean, stp};
use smt_core::workloads::{two_thread_workloads, Workload};
use smt_trace::{spec, BenchmarkProfile, SyntheticTraceGenerator, TraceSource, WorkloadClass};
use smt_types::OpKind;

fn arbitrary_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.0f64..40.0,  // lll_per_kinst
        1.0f64..8.0,   // target_mlp
        8u32..200,     // burst_span
        0.0f64..1.0,   // prefetch_friendliness
        0.05f64..0.35, // load_fraction
        0.02f64..0.2,  // store_fraction
        0.02f64..0.25, // branch_fraction
        0.0f64..0.8,   // fp_fraction
        1.5f64..12.0,  // dep_distance_mean
    )
        .prop_map(
            |(lll, mlp, span, pf, loads, stores, branches, fp, dep)| BenchmarkProfile {
                name: "synthetic".into(),
                input: "prop".into(),
                class: WorkloadClass::Mlp,
                lll_per_kinst: lll,
                target_mlp: mlp,
                burst_span: span,
                prefetch_friendliness: pf,
                load_fraction: loads,
                store_fraction: stores,
                branch_fraction: branches,
                fp_fraction: fp,
                branch_taken_rate: 0.6,
                branch_randomness: 0.05,
                dep_distance_mean: dep,
                static_mem_pcs: 64,
                hot_working_set_lines: 256,
                l2_fraction: 0.01,
            },
        )
        .prop_filter(
            "profile must be internally consistent and achievable",
            |p| p.validate().is_ok(),
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every operation produced by any valid profile is well formed and memory
    /// operations always carry addresses.
    #[test]
    fn generator_ops_are_always_well_formed(profile in arbitrary_profile(), seed in any::<u64>()) {
        let mut generator = SyntheticTraceGenerator::new(profile, seed);
        for _ in 0..2_000 {
            let op = generator.next_op();
            prop_assert!(op.is_well_formed());
            if op.kind.is_mem() {
                prop_assert!(op.addr().is_some());
            }
            for dep in op.src_deps.iter().flatten() {
                prop_assert!(*dep > 0 && *dep <= 64);
            }
        }
    }

    /// Generators are reproducible: the same profile and seed give the same stream.
    #[test]
    fn generator_is_deterministic(profile in arbitrary_profile(), seed in any::<u64>()) {
        let mut a = SyntheticTraceGenerator::new(profile.clone(), seed);
        let mut b = SyntheticTraceGenerator::new(profile, seed);
        for _ in 0..500 {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
    }

    /// The long-run long-latency-load rate tracks the profile's target within a
    /// factor of two (the intent; prefetching later removes some of them).
    #[test]
    fn generator_miss_rate_tracks_profile(mut profile in arbitrary_profile(), seed in any::<u64>()) {
        profile.lll_per_kinst = profile.lll_per_kinst.max(2.0);
        let target = profile.lll_per_kinst;
        let mut generator = SyntheticTraceGenerator::new(profile, seed);
        let n = 60_000u64;
        for _ in 0..n {
            let _ = generator.next_op();
        }
        let rate = generator.emitted_long_latency() as f64 * 1000.0 / n as f64;
        prop_assert!(rate > target * 0.5 && rate < target * 2.0,
            "rate {} vs target {}", rate, target);
    }

    /// The instruction mix follows the profile fractions.
    #[test]
    fn generator_mix_tracks_profile(profile in arbitrary_profile(), seed in any::<u64>()) {
        let expected_loads = profile.load_fraction;
        let expected_branches = profile.branch_fraction;
        let mut generator = SyntheticTraceGenerator::new(profile, seed);
        let n = 20_000;
        let ops: Vec<_> = (0..n).map(|_| generator.next_op()).collect();
        let loads = ops.iter().filter(|o| o.kind == OpKind::Load).count() as f64 / n as f64;
        let branches = ops.iter().filter(|o| o.kind == OpKind::Branch).count() as f64 / n as f64;
        prop_assert!((loads - expected_loads).abs() < 0.08, "loads {} vs {}", loads, expected_loads);
        prop_assert!((branches - expected_branches).abs() < 0.06, "branches {} vs {}", branches, expected_branches);
    }

    /// STP and ANTT are bounded by the number of programs and never negative; a
    /// workload where nothing slows down has STP = n and ANTT = 1.
    #[test]
    fn stp_antt_bounds(st in prop::collection::vec(0.2f64..10.0, 1..6),
                       slowdowns in prop::collection::vec(1.0f64..20.0, 1..6)) {
        let n = st.len().min(slowdowns.len());
        let st = &st[..n];
        let mt: Vec<f64> = st.iter().zip(&slowdowns[..n]).map(|(c, s)| c * s).collect();
        let throughput = stp(st, &mt);
        let turnaround = antt(st, &mt);
        prop_assert!(throughput > 0.0 && throughput <= n as f64 + 1e-9);
        prop_assert!(turnaround >= 1.0 - 1e-9);
        let ideal = stp(st, st);
        prop_assert!((ideal - n as f64).abs() < 1e-9);
        prop_assert!((antt(st, st) - 1.0).abs() < 1e-9);
    }

    /// The harmonic mean never exceeds the arithmetic mean.
    #[test]
    fn mean_inequality(values in prop::collection::vec(0.01f64..100.0, 1..12)) {
        prop_assert!(harmonic_mean(&values) <= arithmetic_mean(&values) + 1e-9);
    }

    /// Any subset of Table I benchmarks forms a valid workload whose group is
    /// consistent with its MLP membership count.
    #[test]
    fn workload_classification_is_consistent(indices in prop::collection::vec(0usize..26, 1..5)) {
        let all = spec::all_benchmarks();
        let names: Vec<&'static str> = indices
            .iter()
            .map(|&i| {
                let name = all[i].name.clone();
                // Leak is fine in a test context; Workload requires 'static names.
                Box::leak(name.into_boxed_str()) as &'static str
            })
            .collect();
        let workload = Workload::new(names).unwrap();
        let mlp = workload.mlp_count();
        match workload.group {
            smt_core::workloads::WorkloadGroup::IlpIntensive => prop_assert_eq!(mlp, 0),
            smt_core::workloads::WorkloadGroup::MlpIntensive =>
                prop_assert_eq!(mlp, workload.num_threads()),
            smt_core::workloads::WorkloadGroup::Mixed => {
                prop_assert!(mlp > 0 && mlp < workload.num_threads());
            }
        }
    }
}

#[test]
fn every_table_ii_workload_uses_table_i_benchmarks() {
    for w in two_thread_workloads() {
        for b in &w.benchmarks {
            assert!(spec::benchmark(b).is_ok(), "{b} is not a Table I benchmark");
        }
    }
}
