//! End-to-end integration tests: full simulations across fetch policies, checking
//! the qualitative results the paper reports.

use smt_core::experiments::policies::policy_comparison;
use smt_core::runner::{evaluate_workload, run_multiprogram, RunScale};
use smt_core::workloads::Workload;
use smt_types::config::FetchPolicyKind;
use smt_types::SmtConfig;

fn scale() -> RunScale {
    RunScale::test()
}

#[test]
fn every_policy_completes_an_mlp_intensive_workload() {
    let cfg = SmtConfig::baseline(2);
    for policy in [
        FetchPolicyKind::Icount,
        FetchPolicyKind::Stall,
        FetchPolicyKind::PredictiveStall,
        FetchPolicyKind::Flush,
        FetchPolicyKind::MlpStall,
        FetchPolicyKind::MlpFlush,
        FetchPolicyKind::MlpBinaryFlush,
        FetchPolicyKind::MlpDistanceFlushAtStall,
        FetchPolicyKind::MlpBinaryFlushAtStall,
        FetchPolicyKind::StaticPartition,
        FetchPolicyKind::Dcra,
    ] {
        let stats = run_multiprogram(&["mcf", "swim"], policy, &cfg, scale()).unwrap();
        let max_committed = stats
            .threads
            .iter()
            .map(|t| t.committed_instructions)
            .max()
            .unwrap();
        assert!(
            max_committed >= scale().instructions_per_thread,
            "{}: did not reach the instruction budget",
            policy.name()
        );
        assert!(stats.cycles > 0);
        for t in &stats.threads {
            assert!(
                t.committed_instructions > 0,
                "{}: a thread starved",
                policy.name()
            );
        }
    }
}

#[test]
fn long_latency_aware_policies_beat_icount_on_mlp_workloads() {
    let cfg = SmtConfig::baseline(2);
    let workloads = vec![
        Workload::new(vec!["mcf", "swim"]).unwrap(),
        Workload::new(vec!["mcf", "galgel"]).unwrap(),
    ];
    let results = policy_comparison(
        &[
            FetchPolicyKind::Icount,
            FetchPolicyKind::Flush,
            FetchPolicyKind::MlpFlush,
        ],
        &workloads,
        &cfg,
        scale(),
    )
    .unwrap();
    let icount = &results[0];
    let flush = &results[1];
    let mlp_flush = &results[2];
    assert!(
        flush.avg_stp > icount.avg_stp,
        "flush STP {} should beat ICOUNT {}",
        flush.avg_stp,
        icount.avg_stp
    );
    assert!(
        mlp_flush.avg_stp > icount.avg_stp,
        "MLP-aware flush STP {} should beat ICOUNT {}",
        mlp_flush.avg_stp,
        icount.avg_stp
    );
    assert!(
        mlp_flush.avg_antt < icount.avg_antt,
        "MLP-aware flush ANTT {} should beat ICOUNT {}",
        mlp_flush.avg_antt,
        icount.avg_antt
    );
    // The headline claim: MLP awareness improves turnaround time over plain flush
    // for MLP-intensive workloads.
    assert!(
        mlp_flush.avg_antt <= flush.avg_antt * 1.02,
        "MLP-aware flush ANTT {} should not be worse than flush {}",
        mlp_flush.avg_antt,
        flush.avg_antt
    );
}

#[test]
fn simulations_are_deterministic() {
    let a = evaluate_workload(&["mcf", "swim"], FetchPolicyKind::MlpFlush, scale()).unwrap();
    let b = evaluate_workload(&["mcf", "swim"], FetchPolicyKind::MlpFlush, scale()).unwrap();
    assert_eq!(a.mt_stats.cycles, b.mt_stats.cycles);
    assert_eq!(
        a.mt_stats.threads[0].committed_instructions,
        b.mt_stats.threads[0].committed_instructions
    );
    assert_eq!(a.stp, b.stp);
    assert_eq!(a.antt, b.antt);
}

#[test]
fn different_seeds_change_the_timing() {
    let mut other = scale();
    other.seed = 1234;
    let a = evaluate_workload(&["mcf", "swim"], FetchPolicyKind::Icount, scale()).unwrap();
    let b = evaluate_workload(&["mcf", "swim"], FetchPolicyKind::Icount, other).unwrap();
    assert_ne!(a.mt_stats.cycles, b.mt_stats.cycles);
}

#[test]
fn four_thread_workload_runs_under_mlp_flush() {
    let cfg = SmtConfig::baseline(4);
    let stats = run_multiprogram(
        &["mcf", "swim", "gcc", "twolf"],
        FetchPolicyKind::MlpFlush,
        &cfg,
        RunScale::tiny(),
    )
    .unwrap();
    assert_eq!(stats.threads.len(), 4);
    for t in &stats.threads {
        assert!(t.committed_instructions > 0);
    }
}

#[test]
fn stp_and_antt_are_within_theoretical_bounds() {
    for policy in [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush] {
        let r = evaluate_workload(&["swim", "twolf"], policy, scale()).unwrap();
        assert!(r.stp > 0.0 && r.stp <= 2.05, "STP {} out of bounds", r.stp);
        assert!(
            r.antt >= 0.85,
            "ANTT {} below the no-slowdown bound",
            r.antt
        );
    }
}

#[test]
fn flush_policies_actually_flush_and_refetch() {
    let cfg = SmtConfig::baseline(2);
    let stats =
        run_multiprogram(&["mcf", "equake"], FetchPolicyKind::Flush, &cfg, scale()).unwrap();
    let squashes: u64 = stats.threads.iter().map(|t| t.squashed_by_policy).sum();
    let flushes: u64 = stats.threads.iter().map(|t| t.policy_flushes).sum();
    assert!(
        flushes > 0,
        "the flush policy never flushed on an MLP-heavy mix"
    );
    assert!(squashes > 0);
    // ICOUNT never flushes.
    let stats =
        run_multiprogram(&["mcf", "equake"], FetchPolicyKind::Icount, &cfg, scale()).unwrap();
    let squashes: u64 = stats.threads.iter().map(|t| t.squashed_by_policy).sum();
    assert_eq!(squashes, 0);
}

#[test]
fn dcra_and_static_partitioning_respect_thread_progress() {
    let cfg = SmtConfig::baseline(2);
    for policy in [FetchPolicyKind::StaticPartition, FetchPolicyKind::Dcra] {
        let stats = run_multiprogram(&["mcf", "gcc"], policy, &cfg, scale()).unwrap();
        for t in &stats.threads {
            assert!(
                t.committed_instructions > scale().instructions_per_thread / 20,
                "{}: a thread made almost no progress",
                policy.name()
            );
        }
    }
}
