//! Reproduces the workload-characterization artifacts of the paper — Table I /
//! Figure 1, Figure 4 (MLP-distance CDFs), Figure 5 (prefetcher sensitivity)
//! and Figures 6-8 (predictor accuracy) — by running their registry specs.
//!
//! ```text
//! cargo run --release --example mlp_characterization -- [instructions]
//! ```

use smt_core::experiments::{engine, ExperimentRegistry};
use smt_core::runner::RunScale;
use smt_types::SimError;

fn main() -> Result<(), SimError> {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);
    let scale = RunScale::standard().with_instructions(instructions);
    let registry = ExperimentRegistry::builtin();

    for name in [
        "table1_characterization",
        "fig04_mlp_distance_cdf",
        "fig05_prefetcher",
        "fig06_08_predictor_accuracy",
    ] {
        let spec = registry
            .get(name)
            .expect("registry entry")
            .clone()
            .with_scale(scale);
        let report = engine::run_spec(&spec)?;
        println!("== {} ({}) ==\n", spec.title, spec.paper_ref);
        println!("{}", report.format_text());
    }
    Ok(())
}
