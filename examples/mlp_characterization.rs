//! Reproduces the workload-characterization artifacts of the paper: Table I /
//! Figure 1 (long-latency load rate, MLP, MLP impact per benchmark), Figure 4
//! (predicted MLP-distance CDFs) and Figure 5 (prefetcher sensitivity).
//!
//! ```text
//! cargo run --release --example mlp_characterization -- [instructions]
//! ```

use smt_core::experiments::characterization::{format_table1, table1};
use smt_core::experiments::predictors::{figure4, figure5, figure6};
use smt_core::runner::RunScale;
use smt_types::SimError;

fn main() -> Result<(), SimError> {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);
    let scale = RunScale::standard().with_instructions(instructions);

    println!("== Table I / Figure 1: per-benchmark MLP characterization ==\n");
    let rows = table1(scale)?;
    println!("{}", format_table1(&rows));

    println!("== Figure 4: predicted MLP-distance CDFs (fraction of predictions ≤ distance) ==\n");
    println!("{:<10} {:>6} {:>6} {:>6} {:>6}", "benchmark", "≤32", "≤64", "≤96", "≤128");
    for cdf in figure4(scale)? {
        println!(
            "{:<10} {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%",
            cdf.benchmark,
            cdf.fraction_within(32) * 100.0,
            cdf.fraction_within(64) * 100.0,
            cdf.fraction_within(96) * 100.0,
            cdf.fraction_within(128) * 100.0,
        );
    }

    println!("\n== Figure 5: single-thread IPC with and without the hardware prefetcher ==\n");
    println!("{:<10} {:>8} {:>8} {:>8}", "benchmark", "no-pf", "with-pf", "speedup");
    for row in figure5(scale)? {
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>7.1}%",
            row.benchmark,
            row.ipc_without_prefetch,
            row.ipc_with_prefetch,
            (row.speedup() - 1.0) * 100.0
        );
    }

    println!("\n== Figures 6-8: predictor accuracy ==\n");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "benchmark", "LLL-acc", "MLP-acc", "far-enough", "false-neg"
    );
    for row in figure6(scale)? {
        println!(
            "{:<10} {:>7.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            row.benchmark,
            row.lll_accuracy * 100.0,
            (row.mlp_true_positive + row.mlp_true_negative) * 100.0,
            row.mlp_distance_accuracy * 100.0,
            row.mlp_false_negative * 100.0
        );
    }
    Ok(())
}
