//! Quickstart: simulate one MLP-intensive two-thread workload under ICOUNT and
//! under the paper's MLP-aware flush policy, print STP/ANTT for both, then run
//! the same comparison through the declarative experiment API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use smt_core::experiments::{engine, ExperimentKind, ExperimentSpec};
use smt_core::runner::{evaluate_workload, RunScale};
use smt_types::config::FetchPolicyKind;
use smt_types::SimError;

fn main() -> Result<(), SimError> {
    let scale = RunScale::standard();
    let workload = ["mcf", "swim"];

    println!("workload: {}", workload.join("-"));
    println!(
        "scale: {} instructions per thread ({} warm-up)\n",
        scale.instructions_per_thread, scale.warmup_instructions
    );
    println!(
        "{:<12} {:>8} {:>8} {:>18}",
        "policy", "STP", "ANTT", "per-thread IPC"
    );

    for policy in [
        FetchPolicyKind::Icount,
        FetchPolicyKind::Stall,
        FetchPolicyKind::Flush,
        FetchPolicyKind::MlpFlush,
    ] {
        let result = evaluate_workload(&workload, policy, scale)?;
        let ipcs: Vec<String> = result
            .per_thread_ipc
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect();
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>18}",
            policy.name(),
            result.stp,
            result.antt,
            ipcs.join(" / ")
        );
    }

    println!("\nHigher STP and lower ANTT are better; the MLP-aware flush policy should");
    println!("improve both relative to ICOUNT and improve ANTT relative to plain flush.");

    // The same comparison as a declarative spec: serializable, validatable,
    // and executed in parallel by the experiment engine. `smt-cli run` drives
    // exactly this path from TOML files.
    let spec = ExperimentSpec {
        name: "quickstart".to_string(),
        title: "ICOUNT vs MLP-aware flush on mcf-swim".to_string(),
        paper_ref: String::new(),
        kind: ExperimentKind::PolicyGrid,
        policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
        workloads: vec![workload.iter().map(|s| s.to_string()).collect()],
        sweep: None,
        overrides: None,
        chip: None,
        adaptive: None,
        resilience: None,
        sampling: None,
        scale,
    };
    let report = engine::run_spec(&spec)?;
    println!(
        "\nThe declarative engine agrees ({} reference runs, {} worker threads):\n",
        report.reference_runs, report.threads_used
    );
    println!("{}", report.format_text());
    println!("Spec as TOML (pipe into a file and `smt-cli run` it):\n");
    println!("{}", toml::to_string(&spec).expect("spec serializes"));
    Ok(())
}
