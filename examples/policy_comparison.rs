//! Reproduces the shape of Figures 9/10 (two-thread) and 13/14 (four-thread)
//! by running the registry specs `fig09_two_thread_policies` and
//! `fig13_four_thread_policies` through the parallel experiment engine.
//!
//! ```text
//! cargo run --release --example policy_comparison -- [workloads-per-group] [instructions]
//! ```
//!
//! The first argument limits how many Table II workloads per group are simulated
//! (default 3); the second sets the instruction budget per thread (default 60000).

use smt_core::experiments::{engine, ExperimentRegistry};
use smt_core::runner::RunScale;
use smt_types::SimError;

fn main() -> Result<(), SimError> {
    let mut args = std::env::args().skip(1);
    let per_group: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let instructions: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let scale = RunScale::standard().with_instructions(instructions);
    let registry = ExperimentRegistry::builtin();

    println!(
        "== Figures 9/10: two-thread workloads ({per_group} per group, {instructions} instructions) ==\n"
    );
    let fig09 = registry
        .get("fig09_two_thread_policies")
        .expect("registry entry")
        .clone()
        .with_scale(scale)
        .with_workload_limit_per_group(per_group)?;
    println!("{}", engine::run_spec(&fig09)?.format_text());

    println!("== Figures 13/14: four-thread workloads ==\n");
    let fig13 = registry
        .get("fig13_four_thread_policies")
        .expect("registry entry")
        .clone()
        .with_scale(scale)
        .with_workload_limit(per_group * 2);
    println!("{}", engine::run_spec(&fig13)?.format_text());
    Ok(())
}
