//! Reproduces the shape of Figures 9/10 (two-thread) and 13/14 (four-thread):
//! STP and ANTT of the six main SMT fetch policies over the paper's workload
//! groups.
//!
//! ```text
//! cargo run --release --example policy_comparison -- [workloads-per-group] [instructions]
//! ```
//!
//! The first argument limits how many Table II workloads per group are simulated
//! (default 3); the second sets the instruction budget per thread (default 60000).

use smt_core::experiments::policies::{
    format_group_summaries, four_thread_comparison, policy_comparison_two_thread,
};
use smt_core::runner::RunScale;
use smt_types::SimError;

fn main() -> Result<(), SimError> {
    let mut args = std::env::args().skip(1);
    let per_group: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let instructions: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let scale = RunScale::standard().with_instructions(instructions);

    println!("== Figures 9/10: two-thread workloads ({per_group} per group, {instructions} instructions) ==\n");
    let groups = policy_comparison_two_thread(scale, per_group)?;
    println!("{}", format_group_summaries(&groups));

    println!("== Figures 13/14: four-thread workloads ==\n");
    let four = four_thread_comparison(scale, per_group * 2)?;
    println!("policy                      STP      ANTT");
    for p in &four {
        println!("{:<26} {:>6.3}  {:>8.3}", p.policy.name(), p.avg_stp, p.avg_antt);
    }
    Ok(())
}
