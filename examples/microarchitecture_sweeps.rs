//! Reproduces the microarchitecture sensitivity studies of Section 6.4: STP and
//! ANTT (relative to ICOUNT) as the main-memory latency is swept from 200 to 800
//! cycles (Figures 15/16) and as the window size is swept from a 128-entry to a
//! 1024-entry ROB (Figures 17/18), plus the Section 6.5 alternative policies and
//! the Section 6.6 comparison against static partitioning and DCRA.
//!
//! ```text
//! cargo run --release --example microarchitecture_sweeps -- [instructions]
//! ```

use smt_core::experiments::policies::{alternative_policies, format_group_summaries, partitioning_comparison};
use smt_core::experiments::sweeps::{format_sweep, memory_latency_sweep, window_size_sweep};
use smt_core::runner::RunScale;
use smt_types::SimError;

fn main() -> Result<(), SimError> {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);
    let scale = RunScale::standard().with_instructions(instructions);

    println!("== Figures 15/16: memory latency sweep (relative to ICOUNT) ==\n");
    let points = memory_latency_sweep(&[200, 400, 600, 800], scale)?;
    println!("{}", format_sweep(&points, "mem-lat"));

    println!("== Figures 17/18: window size sweep (relative to ICOUNT) ==\n");
    let points = window_size_sweep(&[128, 256, 512, 1024], scale)?;
    println!("{}", format_sweep(&points, "rob"));

    println!("== Figures 20/21: alternative MLP-aware flush policies ==\n");
    let groups = alternative_policies(scale, 2)?;
    println!("{}", format_group_summaries(&groups));

    println!("== Figures 22/23: MLP-aware flush vs. static partitioning vs. DCRA ==\n");
    let (two_thread, four_thread) = partitioning_comparison(scale, 2, 4)?;
    println!("{}", format_group_summaries(&two_thread));
    println!("-- four-thread workloads --");
    println!("policy                      STP      ANTT");
    for p in &four_thread {
        println!("{:<26} {:>6.3}  {:>8.3}", p.policy.name(), p.avg_stp, p.avg_antt);
    }
    Ok(())
}
