//! Reproduces the microarchitecture sensitivity studies of Section 6.4 — the
//! memory-latency sweep (Figures 15/16) and window-size sweep (Figures 17/18)
//! — plus the Section 6.5 alternative policies and the Section 6.6 comparison
//! against static partitioning and DCRA, by running their registry specs.
//!
//! ```text
//! cargo run --release --example microarchitecture_sweeps -- [instructions]
//! ```

use smt_core::experiments::{engine, ExperimentRegistry};
use smt_core::runner::RunScale;
use smt_types::SimError;

fn main() -> Result<(), SimError> {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);
    let scale = RunScale::standard().with_instructions(instructions);
    let registry = ExperimentRegistry::builtin();

    for (name, per_group) in [
        ("fig15_memory_latency_sweep", usize::MAX),
        ("fig17_window_size_sweep", usize::MAX),
        ("fig20_alternative_policies", 2),
        ("fig22_partitioning_two_thread", 2),
        ("fig22_partitioning_four_thread", 4),
    ] {
        let spec = registry
            .get(name)
            .expect("registry entry")
            .clone()
            .with_scale(scale)
            .with_workload_limit_per_group(per_group)?;
        let report = engine::run_spec(&spec)?;
        println!("== {} ({}) ==\n", spec.title, spec.paper_ref);
        println!("{}", report.format_text());
    }
    Ok(())
}
