//! The [`FetchPolicy`] trait and shared helpers.

use smt_types::config::{FetchPolicyKind, SmtConfig};
use smt_types::{SeqNum, SmtSnapshot, ThreadId};

/// A request by the fetch policy to squash the youngest instructions of a thread.
///
/// Every in-flight instruction of `thread` with a sequence number strictly greater
/// than `keep_up_to` is removed from the pipeline and will be refetched later.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlushRequest {
    /// Thread to flush.
    pub thread: ThreadId,
    /// Youngest sequence number to keep.
    pub keep_up_to: SeqNum,
}

/// Per-thread occupancy caps imposed by explicit resource-management policies.
///
/// `None` in a field means "no cap" for that resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResourceCaps {
    /// Maximum reorder-buffer entries the thread may occupy.
    pub rob: Option<u32>,
    /// Maximum load/store-queue entries.
    pub lsq: Option<u32>,
    /// Maximum integer issue-queue entries.
    pub iq_int: Option<u32>,
    /// Maximum floating-point issue-queue entries.
    pub iq_fp: Option<u32>,
    /// Maximum integer rename registers.
    pub rename_int: Option<u32>,
    /// Maximum floating-point rename registers.
    pub rename_fp: Option<u32>,
}

/// The interface between the SMT pipeline and a fetch policy.
///
/// The pipeline owns all predictors (long-latency load predictor, MLP distance
/// predictor, LLSR); policies receive the relevant predictions inside the event
/// callbacks and only keep the decision state they need. All callbacks have no-op
/// defaults so simple policies (ICOUNT) only implement [`fetch_priority`].
///
/// The per-cycle queries ([`fetch_priority`], [`on_resource_stall`],
/// [`resource_caps`]) write into caller-provided scratch buffers instead of
/// returning fresh allocations, so the pipeline's steady state is
/// allocation-free; allocating `*_vec` convenience wrappers exist behind
/// `cfg(any(test, feature = "test-util"))` for tests and one-off callers. Within one cycle the pipeline may deliver per-thread
/// callbacks in any thread order; policies must not rely on cross-thread
/// ordering.
///
/// [`fetch_priority`]: FetchPolicy::fetch_priority
/// [`on_resource_stall`]: FetchPolicy::on_resource_stall
/// [`resource_caps`]: FetchPolicy::resource_caps
pub trait FetchPolicy: Send {
    /// Which policy this is (used for reporting).
    fn kind(&self) -> FetchPolicyKind;

    /// Writes the threads allowed to fetch this cycle into `priority`,
    /// most-preferred first (clearing whatever the buffer held). Threads not in
    /// the list are fetch gated this cycle.
    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>);

    /// Allocating convenience wrapper around [`FetchPolicy::fetch_priority`]
    /// for tests and examples; the pipeline reuses a scratch buffer instead.
    /// Only compiled for tests and under the `test-util` feature, so the
    /// production build has a single, non-allocating query surface.
    #[cfg(any(test, feature = "test-util"))]
    fn fetch_priority_vec(&mut self, snapshot: &SmtSnapshot) -> Vec<ThreadId> {
        let mut priority = Vec::new();
        self.fetch_priority(snapshot, &mut priority);
        priority
    }

    /// An instruction with sequence number `seq` was fetched for `thread`.
    fn on_fetch(&mut self, thread: ThreadId, seq: SeqNum) {
        let _ = (thread, seq);
    }

    /// A load reached the front-end predictors. `predicted_long_latency` is the
    /// miss-pattern predictor's verdict; `predicted_mlp_distance` /
    /// `predicted_has_mlp` come from the MLP predictors.
    fn on_load_predicted(
        &mut self,
        thread: ThreadId,
        pc: u64,
        seq: SeqNum,
        predicted_long_latency: bool,
        predicted_mlp_distance: u32,
        predicted_has_mlp: bool,
    ) {
        let _ = (
            thread,
            pc,
            seq,
            predicted_long_latency,
            predicted_mlp_distance,
            predicted_has_mlp,
        );
    }

    /// A load executed and turned out *not* to be long latency.
    fn on_load_executed_hit(&mut self, thread: ThreadId, pc: u64, seq: SeqNum) {
        let _ = (thread, pc, seq);
    }

    /// A long-latency load (L3 or D-TLB miss) was detected at execute.
    ///
    /// `latest_fetched_seq` is the youngest instruction fetched so far for the
    /// thread, which flush-style policies compare against `seq +
    /// predicted_mlp_distance` to decide whether to flush. Returns an optional
    /// flush request.
    fn on_long_latency_detected(
        &mut self,
        thread: ThreadId,
        pc: u64,
        seq: SeqNum,
        latest_fetched_seq: SeqNum,
        predicted_mlp_distance: u32,
        predicted_has_mlp: bool,
    ) -> Option<FlushRequest> {
        let _ = (
            thread,
            pc,
            seq,
            latest_fetched_seq,
            predicted_mlp_distance,
            predicted_has_mlp,
        );
        None
    }

    /// The data of a previously detected long-latency load returned from memory.
    fn on_long_latency_resolved(&mut self, thread: ThreadId, seq: SeqNum) {
        let _ = (thread, seq);
    }

    /// Dispatch was blocked this cycle because a shared resource (ROB, issue queue,
    /// LSQ or rename registers) is exhausted. Flush-at-resource-stall policies
    /// append their flush requests to `flushes` (the caller clears the buffer
    /// beforehand); others leave it untouched.
    fn on_resource_stall(&mut self, snapshot: &SmtSnapshot, flushes: &mut Vec<FlushRequest>) {
        let _ = (snapshot, flushes);
    }

    /// Allocating convenience wrapper around [`FetchPolicy::on_resource_stall`]
    /// for tests and examples (see [`FetchPolicy::fetch_priority_vec`] for the
    /// gating rationale).
    #[cfg(any(test, feature = "test-util"))]
    fn on_resource_stall_vec(&mut self, snapshot: &SmtSnapshot) -> Vec<FlushRequest> {
        let mut flushes = Vec::new();
        self.on_resource_stall(snapshot, &mut flushes);
        flushes
    }

    /// Instructions of `thread` younger than `keep_up_to` were squashed (by a
    /// branch misprediction or a policy flush); policies drop any per-seq state.
    fn on_squash(&mut self, thread: ThreadId, keep_up_to: SeqNum) {
        let _ = (thread, keep_up_to);
    }

    /// Per-thread occupancy caps for explicit resource management policies.
    ///
    /// `caps` is a scratch slice with one entry per hardware thread, reset to
    /// [`ResourceCaps::default`] (no caps) by the caller each cycle. Policies
    /// that manage resources overwrite the entries and return `true`; the
    /// default implementation returns `false`, meaning no caps apply.
    fn resource_caps(
        &mut self,
        snapshot: &SmtSnapshot,
        config: &SmtConfig,
        caps: &mut [ResourceCaps],
    ) -> bool {
        let _ = (snapshot, config, caps);
        false
    }

    /// Allocating convenience wrapper around [`FetchPolicy::resource_caps`]
    /// for tests and examples (see [`FetchPolicy::fetch_priority_vec`] for the
    /// gating rationale).
    #[cfg(any(test, feature = "test-util"))]
    fn resource_caps_vec(
        &mut self,
        snapshot: &SmtSnapshot,
        config: &SmtConfig,
    ) -> Option<Vec<ResourceCaps>> {
        let mut caps = vec![ResourceCaps::default(); snapshot.num_threads()];
        self.resource_caps(snapshot, config, &mut caps)
            .then_some(caps)
    }

    /// Human-readable policy name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// Writes all threads into `order`, sorted by ascending ICOUNT (ties broken by
/// thread id) — the ICOUNT 2.4 priority rule every policy falls back to. The
/// buffer is cleared first and reused across cycles by the pipeline.
pub fn icount_order(snapshot: &SmtSnapshot, order: &mut Vec<ThreadId>) {
    order.clear();
    order.extend(ThreadId::all(snapshot.num_threads()));
    order.sort_by_key(|t| (snapshot.thread(*t).icount, t.index()));
}

/// Applies gating with the continue-oldest-thread exemption: writes the ICOUNT
/// ordering of threads into `order`, with gated threads removed — unless *every*
/// active thread is both gated and stalled on a long-latency load, in which case
/// the thread whose long-latency load is oldest is re-admitted (COT, Cazorla et
/// al. 2004a).
pub fn gated_icount_order(
    snapshot: &SmtSnapshot,
    gated: impl Fn(ThreadId) -> bool,
    order: &mut Vec<ThreadId>,
) {
    icount_order(snapshot, order);
    if order.iter().any(|&t| !gated(t)) {
        order.retain(|&t| !gated(t));
        return;
    }
    // Nothing is allowed: re-admit the continue-oldest thread when every active
    // thread is memory-stalled; otherwise fall back to plain ICOUNT (already in
    // `order`) so the machine never deadlocks.
    if snapshot.all_active_threads_stalled_on_memory() {
        if let Some(cot) = snapshot.oldest_memory_stalled_thread() {
            order.clear();
            order.push(cot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with_icounts(icounts: &[u32]) -> SmtSnapshot {
        let mut s = SmtSnapshot::new(icounts.len());
        for (i, &c) in icounts.iter().enumerate() {
            s.threads[i].icount = c;
            s.threads[i].active = true;
        }
        s
    }

    fn icount_order_vec(s: &SmtSnapshot) -> Vec<ThreadId> {
        let mut order = Vec::new();
        icount_order(s, &mut order);
        order
    }

    fn gated_order_vec(s: &SmtSnapshot, gated: impl Fn(ThreadId) -> bool) -> Vec<ThreadId> {
        let mut order = Vec::new();
        gated_icount_order(s, gated, &mut order);
        order
    }

    #[test]
    fn icount_order_prefers_emptier_threads() {
        let s = snapshot_with_icounts(&[10, 3, 7]);
        let order = icount_order_vec(&s);
        assert_eq!(
            order.iter().map(|t| t.index()).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn icount_order_breaks_ties_by_id() {
        let s = snapshot_with_icounts(&[5, 5]);
        let order = icount_order_vec(&s);
        assert_eq!(order[0].index(), 0);
    }

    #[test]
    fn order_buffers_are_cleared_on_reuse() {
        // The pipeline hands the same scratch buffer in every cycle; stale
        // contents must never leak into the new ordering.
        let s = snapshot_with_icounts(&[5, 2]);
        let mut order = vec![ThreadId::new(0); 7];
        icount_order(&s, &mut order);
        assert_eq!(order.len(), 2);
        order.push(ThreadId::new(0));
        gated_icount_order(&s, |_| false, &mut order);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].index(), 1);
    }

    #[test]
    fn gating_removes_threads() {
        let s = snapshot_with_icounts(&[5, 2]);
        let order = gated_order_vec(&s, |t| t.index() == 1);
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].index(), 0);
    }

    #[test]
    fn cot_readmits_oldest_stalled_thread_when_all_gated() {
        let mut s = snapshot_with_icounts(&[5, 2]);
        s.threads[0].outstanding_long_latency_loads = 1;
        s.threads[0].oldest_lll_cycle = Some(50);
        s.threads[1].outstanding_long_latency_loads = 1;
        s.threads[1].oldest_lll_cycle = Some(80);
        let order = gated_order_vec(&s, |_| true);
        assert_eq!(order, vec![ThreadId::new(0)]);
    }

    #[test]
    fn all_gated_without_memory_stall_falls_back_to_icount() {
        let s = snapshot_with_icounts(&[5, 2]);
        let order = gated_order_vec(&s, |_| true);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].index(), 1);
    }

    #[test]
    fn flush_request_and_caps_are_plain_data() {
        let r = FlushRequest {
            thread: ThreadId::new(1),
            keep_up_to: SeqNum(42),
        };
        assert_eq!(r.thread.index(), 1);
        let caps = ResourceCaps::default();
        assert!(caps.rob.is_none());
    }
}
