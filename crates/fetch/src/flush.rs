//! The flush policy of Tullsen & Brown (2001): trigger on a detected long-latency
//! miss ("TM") and flush starting from the instruction after the load ("next").

use smt_types::config::FetchPolicyKind;
use smt_types::{SeqNum, SmtSnapshot, ThreadId};

use crate::policy::{gated_icount_order, FetchPolicy, FlushRequest};

/// Flush-on-long-latency-load policy.
///
/// When a load is detected to be an L3 / D-TLB miss, every younger instruction of
/// that thread is flushed from the pipeline (freeing its ROB/IQ/LSQ/register
/// resources for the other threads) and the thread stops fetching until the miss
/// resolves. Because the flush discards MLP that younger independent misses would
/// have exposed, this is the main baseline the MLP-aware policies improve on.
#[derive(Clone, Debug)]
pub struct FlushPolicy {
    num_threads: usize,
}

impl FlushPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        FlushPolicy { num_threads }
    }
}

impl FetchPolicy for FlushPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Flush
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        debug_assert_eq!(snapshot.num_threads(), self.num_threads);
        gated_icount_order(
            snapshot,
            |t| snapshot.thread(t).outstanding_long_latency_loads > 0,
            priority,
        );
    }

    fn on_long_latency_detected(
        &mut self,
        thread: ThreadId,
        _pc: u64,
        seq: SeqNum,
        latest_fetched_seq: SeqNum,
        _predicted_mlp_distance: u32,
        _predicted_has_mlp: bool,
    ) -> Option<FlushRequest> {
        if latest_fetched_seq > seq {
            Some(FlushRequest {
                thread,
                keep_up_to: seq,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_everything_after_the_load() {
        let mut p = FlushPolicy::new(2);
        let req = p
            .on_long_latency_detected(ThreadId::new(0), 0x40, SeqNum(100), SeqNum(140), 57, true)
            .expect("flush expected");
        assert_eq!(req.thread, ThreadId::new(0));
        assert_eq!(req.keep_up_to, SeqNum(100));
    }

    #[test]
    fn no_flush_when_nothing_younger_was_fetched() {
        let mut p = FlushPolicy::new(2);
        assert!(p
            .on_long_latency_detected(ThreadId::new(0), 0x40, SeqNum(100), SeqNum(100), 0, false)
            .is_none());
    }

    #[test]
    fn gates_thread_with_outstanding_lll() {
        let mut p = FlushPolicy::new(2);
        let mut s = SmtSnapshot::new(2);
        for t in &mut s.threads {
            t.active = true;
        }
        s.threads[1].outstanding_long_latency_loads = 2;
        s.threads[1].oldest_lll_cycle = Some(5);
        assert_eq!(p.fetch_priority_vec(&s), vec![ThreadId::new(0)]);
        assert_eq!(p.kind(), FetchPolicyKind::Flush);
    }
}
