//! The MLP-aware fetch policies proposed by the paper (Section 4.3).

use std::collections::HashSet;

use smt_types::config::FetchPolicyKind;
use smt_types::{SeqNum, SmtSnapshot, ThreadId};

use crate::policy::{gated_icount_order, FetchPolicy, FlushRequest};

/// Per-thread bookkeeping shared by the MLP-aware policies.
#[derive(Clone, Debug, Default)]
struct ThreadState {
    /// Youngest sequence number fetched so far.
    latest_fetched: u64,
    /// Youngest sequence number the thread is allowed to fetch up to while its
    /// long-latency loads are outstanding (`trigger seq + predicted MLP distance`).
    allowed_until: Option<u64>,
    /// Triggering loads (predicted or detected long latency) not yet resolved.
    pending: HashSet<u64>,
}

impl ThreadState {
    fn clear_if_idle(&mut self, outstanding_lll: u32) {
        if self.pending.is_empty() && outstanding_lll == 0 {
            self.allowed_until = None;
        }
    }

    fn gated(&self, outstanding_lll: u32) -> bool {
        if self.pending.is_empty() && outstanding_lll == 0 {
            return false;
        }
        match self.allowed_until {
            // A pending long-latency load with no fetch allowance: classic stall.
            None => !self.pending.is_empty() || outstanding_lll > 0,
            Some(limit) => self.latest_fetched >= limit,
        }
    }

    fn extend_allowance(&mut self, until: u64) {
        self.allowed_until = Some(self.allowed_until.map_or(until, |cur| cur.max(until)));
    }
}

/// MLP-aware **stall fetch**: long-latency loads are *predicted* in the front end;
/// the thread may fetch `predicted MLP distance` further instructions past the
/// predicted load and is then fetch stalled until the load resolves.
#[derive(Clone, Debug)]
pub struct MlpStallPolicy {
    threads: Vec<ThreadState>,
}

impl MlpStallPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        MlpStallPolicy {
            threads: vec![ThreadState::default(); num_threads],
        }
    }
}

impl FetchPolicy for MlpStallPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::MlpStall
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        for (i, state) in self.threads.iter_mut().enumerate() {
            state.clear_if_idle(snapshot.threads[i].outstanding_long_latency_loads);
        }
        let threads = &self.threads;
        gated_icount_order(
            snapshot,
            |t| threads[t.index()].gated(snapshot.thread(t).outstanding_long_latency_loads),
            priority,
        );
    }

    fn on_fetch(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].latest_fetched = seq.0;
    }

    fn on_load_predicted(
        &mut self,
        thread: ThreadId,
        _pc: u64,
        seq: SeqNum,
        predicted_long_latency: bool,
        predicted_mlp_distance: u32,
        _predicted_has_mlp: bool,
    ) {
        if !predicted_long_latency {
            return;
        }
        let state = &mut self.threads[thread.index()];
        state.pending.insert(seq.0);
        state.extend_allowance(seq.0 + predicted_mlp_distance as u64);
    }

    fn on_load_executed_hit(&mut self, thread: ThreadId, _pc: u64, seq: SeqNum) {
        self.threads[thread.index()].pending.remove(&seq.0);
    }

    fn on_long_latency_resolved(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].pending.remove(&seq.0);
    }

    fn on_squash(&mut self, thread: ThreadId, keep_up_to: SeqNum) {
        let state = &mut self.threads[thread.index()];
        state.pending.retain(|&s| s <= keep_up_to.0); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
        state.latest_fetched = state.latest_fetched.min(keep_up_to.0);
    }
}

/// MLP-aware **flush** — the paper's headline policy.
///
/// Long-latency loads are *detected* at execute; the MLP distance `m` is then
/// predicted. If more than `m` instructions past the load have already been
/// fetched, the surplus is flushed; otherwise fetching continues until exactly `m`
/// instructions past the load have been fetched. Either way the thread is then
/// fetch stalled until the load's data returns, at which point it falls back to
/// plain ICOUNT behaviour.
#[derive(Clone, Debug)]
pub struct MlpFlushPolicy {
    threads: Vec<ThreadState>,
}

impl MlpFlushPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        MlpFlushPolicy {
            threads: vec![ThreadState::default(); num_threads],
        }
    }
}

impl FetchPolicy for MlpFlushPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::MlpFlush
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        for (i, state) in self.threads.iter_mut().enumerate() {
            state.clear_if_idle(snapshot.threads[i].outstanding_long_latency_loads);
        }
        let threads = &self.threads;
        gated_icount_order(
            snapshot,
            |t| threads[t.index()].gated(snapshot.thread(t).outstanding_long_latency_loads),
            priority,
        );
    }

    fn on_fetch(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].latest_fetched = seq.0;
    }

    fn on_long_latency_detected(
        &mut self,
        thread: ThreadId,
        _pc: u64,
        seq: SeqNum,
        latest_fetched_seq: SeqNum,
        predicted_mlp_distance: u32,
        _predicted_has_mlp: bool,
    ) -> Option<FlushRequest> {
        let state = &mut self.threads[thread.index()];
        state.pending.insert(seq.0);
        let keep_bound = seq.0 + predicted_mlp_distance as u64;
        state.extend_allowance(keep_bound);
        state.latest_fetched = state.latest_fetched.max(latest_fetched_seq.0);
        if latest_fetched_seq.0 > keep_bound {
            // More than the MLP distance has been fetched: release the surplus.
            state.latest_fetched = keep_bound;
            Some(FlushRequest {
                thread,
                keep_up_to: SeqNum(keep_bound),
            })
        } else {
            None
        }
    }

    fn on_long_latency_resolved(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].pending.remove(&seq.0);
    }

    fn on_squash(&mut self, thread: ThreadId, keep_up_to: SeqNum) {
        let state = &mut self.threads[thread.index()];
        state.pending.retain(|&s| s <= keep_up_to.0); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
        state.latest_fetched = state.latest_fetched.min(keep_up_to.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_snapshot(num: usize) -> SmtSnapshot {
        let mut s = SmtSnapshot::new(num);
        for t in &mut s.threads {
            t.active = true;
        }
        s
    }

    #[test]
    fn mlp_stall_allows_fetch_up_to_predicted_distance() {
        let mut p = MlpStallPolicy::new(2);
        let mut s = active_snapshot(2);
        let t0 = ThreadId::new(0);
        // Predicted long-latency load at seq 100 with MLP distance 8.
        p.on_load_predicted(t0, 0x40, SeqNum(100), true, 8, true);
        s.threads[0].outstanding_long_latency_loads = 0;
        // Fetched up to 104: still within the allowance.
        p.on_fetch(t0, SeqNum(104));
        assert!(p.fetch_priority_vec(&s).contains(&t0));
        // Fetched up to 108: allowance exhausted, thread gates.
        p.on_fetch(t0, SeqNum(108));
        assert!(!p.fetch_priority_vec(&s).contains(&t0));
        // Load resolves: thread resumes.
        p.on_long_latency_resolved(t0, SeqNum(100));
        assert!(p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn mlp_stall_with_zero_distance_behaves_like_predictive_stall() {
        let mut p = MlpStallPolicy::new(2);
        let s = active_snapshot(2);
        let t0 = ThreadId::new(0);
        p.on_load_predicted(t0, 0x40, SeqNum(50), true, 0, false);
        p.on_fetch(t0, SeqNum(50));
        assert!(!p.fetch_priority_vec(&s).contains(&t0));
        p.on_load_executed_hit(t0, 0x40, SeqNum(50));
        assert!(p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn mlp_flush_flushes_only_past_the_mlp_distance() {
        let mut p = MlpFlushPolicy::new(2);
        let t0 = ThreadId::new(0);
        // 60 instructions were fetched past the load but the MLP distance is 20.
        let req = p
            .on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(160), 20, true)
            .expect("surplus should be flushed");
        assert_eq!(req.keep_up_to, SeqNum(120));
        // With a distance larger than what was fetched, nothing is flushed.
        let mut p = MlpFlushPolicy::new(2);
        assert!(p
            .on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(110), 20, true)
            .is_none());
    }

    #[test]
    fn mlp_flush_keeps_fetching_until_distance_then_gates() {
        let mut p = MlpFlushPolicy::new(2);
        let mut s = active_snapshot(2);
        let t0 = ThreadId::new(0);
        s.threads[0].outstanding_long_latency_loads = 1;
        s.threads[0].oldest_lll_cycle = Some(1);
        p.on_fetch(t0, SeqNum(105));
        assert!(p
            .on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(105), 12, true)
            .is_none());
        // Still below the allowance of 112: keeps fetching.
        assert!(p.fetch_priority_vec(&s).contains(&t0));
        p.on_fetch(t0, SeqNum(112));
        assert!(!p.fetch_priority_vec(&s).contains(&t0));
        // Data returns: outstanding drops to zero and the thread resumes.
        p.on_long_latency_resolved(t0, SeqNum(100));
        s.threads[0].outstanding_long_latency_loads = 0;
        s.threads[0].oldest_lll_cycle = None;
        assert!(p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn isolated_load_with_zero_distance_flushes_everything_after_it() {
        let mut p = MlpFlushPolicy::new(2);
        let t0 = ThreadId::new(0);
        let req = p
            .on_long_latency_detected(t0, 0x40, SeqNum(200), SeqNum(230), 0, false)
            .expect("flush expected");
        assert_eq!(req.keep_up_to, SeqNum(200));
    }

    #[test]
    fn squash_rolls_back_state() {
        let mut p = MlpFlushPolicy::new(2);
        let s = active_snapshot(2);
        let t0 = ThreadId::new(0);
        p.on_fetch(t0, SeqNum(500));
        let _ = p.on_long_latency_detected(t0, 0x40, SeqNum(480), SeqNum(500), 5, true);
        p.on_squash(t0, SeqNum(400));
        // The pending trigger was squashed; with no outstanding loads the thread
        // must not stay gated.
        assert!(p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn cot_applies_when_both_threads_exhausted() {
        let mut p = MlpFlushPolicy::new(2);
        let mut s = active_snapshot(2);
        for (i, t) in s.threads.iter_mut().enumerate() {
            t.outstanding_long_latency_loads = 1;
            t.oldest_lll_cycle = Some(10 + i as u64);
        }
        let _ =
            p.on_long_latency_detected(ThreadId::new(0), 0x40, SeqNum(10), SeqNum(10), 0, false);
        let _ =
            p.on_long_latency_detected(ThreadId::new(1), 0x44, SeqNum(10), SeqNum(10), 0, false);
        p.on_fetch(ThreadId::new(0), SeqNum(10));
        p.on_fetch(ThreadId::new(1), SeqNum(10));
        assert_eq!(p.fetch_priority_vec(&s), vec![ThreadId::new(0)]);
    }
}
