//! Explicit resource management: static partitioning and DCRA (Section 6.6).

use smt_types::config::{FetchPolicyKind, SmtConfig};
use smt_types::{SmtSnapshot, ThreadId};

use crate::policy::{icount_order, FetchPolicy, ResourceCaps};

/// Static partitioning (Raasch & Reinhardt / Pentium 4 style): each of the `n`
/// threads owns a fixed `1/n` share of every buffer resource (ROB, LSQ, issue
/// queues, rename registers); functional units stay shared. Fetch priority is
/// plain ICOUNT.
#[derive(Clone, Debug)]
pub struct StaticPartitionPolicy {
    num_threads: usize,
}

impl StaticPartitionPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        StaticPartitionPolicy { num_threads }
    }
}

impl FetchPolicy for StaticPartitionPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::StaticPartition
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        icount_order(snapshot, priority);
    }

    fn resource_caps(
        &mut self,
        _snapshot: &SmtSnapshot,
        config: &SmtConfig,
        caps: &mut [ResourceCaps],
    ) -> bool {
        let n = self.num_threads as u32;
        let share = ResourceCaps {
            rob: Some((config.rob_size / n).max(1)),
            lsq: Some((config.lsq_size / n).max(1)),
            iq_int: Some((config.iq_int_size / n).max(1)),
            iq_fp: Some((config.iq_fp_size / n).max(1)),
            rename_int: Some((config.rename_int / n).max(1)),
            rename_fp: Some((config.rename_fp / n).max(1)),
        };
        caps.fill(share);
        true
    }
}

/// Dynamically controlled resource allocation (Cazorla et al. 2004b).
///
/// Threads are classified every cycle as *slow* (memory intensive: at least one L1
/// data-cache miss outstanding) or *fast*. Slow threads receive a larger share of
/// each buffer resource so they can expose memory parallelism; fast threads are
/// prevented from monopolizing buffers. Shares follow DCRA's sharing model: with
/// `F` fast and `S` slow threads, a fast thread may use `R / (F + S)` entries of a
/// resource of size `R`, while slow threads additionally split the share one extra
/// "virtual" fast thread would have had, i.e. `R / (F + S) * (1 + F / S) / 1`
/// approximated in integer arithmetic.
///
/// DCRA is *MLP oblivious*: the bonus share is fixed regardless of how much MLP
/// the thread actually has, which is exactly the behaviour the paper's MLP-aware
/// policies improve on.
#[derive(Clone, Debug)]
pub struct DcraPolicy {
    num_threads: usize,
}

impl DcraPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        DcraPolicy { num_threads }
    }

    fn share(resource: u32, fast: u32, slow: u32, is_slow: bool) -> u32 {
        let total_threads = fast + slow;
        if total_threads == 0 {
            return resource;
        }
        let base = resource / total_threads;
        if slow == 0 || fast == 0 {
            // Homogeneous mix: plain equal sharing.
            return base.max(1);
        }
        if is_slow {
            // Slow threads split the shares the fast threads relinquish.
            (base + (base * fast) / (2 * slow)).max(1)
        } else {
            // Fast threads give up part of their share to the slow threads.
            (base - base / 2 / total_threads).max(1)
        }
    }
}

impl FetchPolicy for DcraPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Dcra
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        icount_order(snapshot, priority);
    }

    fn resource_caps(
        &mut self,
        snapshot: &SmtSnapshot,
        config: &SmtConfig,
        caps: &mut [ResourceCaps],
    ) -> bool {
        let slow = snapshot
            .threads
            .iter()
            .filter(|t| t.outstanding_l1d_misses > 0)
            .count() as u32;
        let fast = self.num_threads as u32 - slow;
        for (cap, thread) in caps.iter_mut().zip(&snapshot.threads) {
            let is_slow = thread.outstanding_l1d_misses > 0;
            *cap = ResourceCaps {
                rob: Some(Self::share(config.rob_size, fast, slow, is_slow)),
                lsq: Some(Self::share(config.lsq_size, fast, slow, is_slow)),
                iq_int: Some(Self::share(config.iq_int_size, fast, slow, is_slow)),
                iq_fp: Some(Self::share(config.iq_fp_size, fast, slow, is_slow)),
                rename_int: Some(Self::share(config.rename_int, fast, slow, is_slow)),
                rename_fp: Some(Self::share(config.rename_fp, fast, slow, is_slow)),
            };
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_partition_gives_equal_shares() {
        let mut p = StaticPartitionPolicy::new(2);
        let cfg = SmtConfig::baseline(2);
        let snap = SmtSnapshot::new(2);
        let caps = p.resource_caps_vec(&snap, &cfg).unwrap();
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0].rob, Some(128));
        assert_eq!(caps[0].lsq, Some(64));
        assert_eq!(caps[0].iq_int, Some(32));
        assert_eq!(caps[0].rename_fp, Some(50));
        assert_eq!(caps[0], caps[1]);
        assert_eq!(p.kind(), FetchPolicyKind::StaticPartition);
    }

    #[test]
    fn dcra_gives_memory_intensive_threads_more() {
        let mut p = DcraPolicy::new(2);
        let cfg = SmtConfig::baseline(2);
        let mut snap = SmtSnapshot::new(2);
        snap.threads[0].outstanding_l1d_misses = 3; // slow
        snap.threads[1].outstanding_l1d_misses = 0; // fast
        let caps = p.resource_caps_vec(&snap, &cfg).unwrap();
        assert!(caps[0].rob.unwrap() > caps[1].rob.unwrap());
        assert!(caps[0].rob.unwrap() > cfg.rob_size / 2);
        assert!(caps[1].rob.unwrap() <= cfg.rob_size / 2);
    }

    #[test]
    fn dcra_equal_split_when_homogeneous() {
        let mut p = DcraPolicy::new(2);
        let cfg = SmtConfig::baseline(2);
        let snap = SmtSnapshot::new(2);
        let caps = p.resource_caps_vec(&snap, &cfg).unwrap();
        assert_eq!(caps[0].rob, Some(128));
        assert_eq!(caps[1].rob, Some(128));
        let mut snap_all_slow = SmtSnapshot::new(2);
        for t in &mut snap_all_slow.threads {
            t.outstanding_l1d_misses = 1;
        }
        let caps = p.resource_caps_vec(&snap_all_slow, &cfg).unwrap();
        assert_eq!(caps[0].rob, Some(128));
    }

    #[test]
    fn dcra_four_thread_shares_are_sane() {
        let mut p = DcraPolicy::new(4);
        let cfg = SmtConfig::baseline(4);
        let mut snap = SmtSnapshot::new(4);
        snap.threads[0].outstanding_l1d_misses = 2;
        let caps = p.resource_caps_vec(&snap, &cfg).unwrap();
        // The one slow thread gets more than an equal share; fast threads get less.
        assert!(caps[0].rob.unwrap() > 64);
        for c in &caps[1..] {
            assert!(c.rob.unwrap() <= 64);
            assert!(c.rob.unwrap() >= 1);
        }
        assert_eq!(p.kind(), FetchPolicyKind::Dcra);
    }

    #[test]
    fn both_policies_use_icount_priority() {
        let mut sp = StaticPartitionPolicy::new(2);
        let mut dcra = DcraPolicy::new(2);
        let mut snap = SmtSnapshot::new(2);
        snap.threads[0].icount = 9;
        snap.threads[1].icount = 1;
        assert_eq!(sp.fetch_priority_vec(&snap)[0].index(), 1);
        assert_eq!(dcra.fetch_priority_vec(&snap)[0].index(), 1);
    }
}
