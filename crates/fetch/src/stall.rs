//! Stall-fetch policies: detected stall (Tullsen & Brown 2001) and predictive
//! stall (Cazorla et al. 2004a).

use std::collections::HashSet;

use smt_types::config::FetchPolicyKind;
use smt_types::{SeqNum, SmtSnapshot, ThreadId};

use crate::policy::{gated_icount_order, FetchPolicy};

/// Fetch-stall policy.
///
/// * In **detected** mode (Tullsen & Brown) a thread stops fetching as soon as one
///   of its loads is found to be an L3 / D-TLB miss, and resumes when all its
///   long-latency loads have returned.
/// * In **predictive** mode (Cazorla et al.) the thread additionally stops as soon
///   as a load is *predicted* to be long latency in the front end, which saves the
///   instructions that would otherwise be fetched while the load makes its way to
///   execute.
///
/// Both modes apply the continue-oldest-thread rule when every thread is stalled.
#[derive(Clone, Debug)]
pub struct StallPolicy {
    predictive: bool,
    /// Per thread: sequence numbers of loads predicted long-latency that have not
    /// yet executed or resolved (predictive mode only).
    pending_predicted: Vec<HashSet<u64>>,
}

impl StallPolicy {
    /// Stall on *detected* long-latency loads only.
    pub fn detected(num_threads: usize) -> Self {
        StallPolicy {
            predictive: false,
            pending_predicted: vec![HashSet::new(); num_threads],
        }
    }

    /// Stall on *predicted* long-latency loads (and on detected ones).
    pub fn predictive(num_threads: usize) -> Self {
        StallPolicy {
            predictive: true,
            pending_predicted: vec![HashSet::new(); num_threads],
        }
    }

    fn gated(&self, snapshot: &SmtSnapshot, thread: ThreadId) -> bool {
        snapshot.thread(thread).outstanding_long_latency_loads > 0
            || !self.pending_predicted[thread.index()].is_empty()
    }
}

impl FetchPolicy for StallPolicy {
    fn kind(&self) -> FetchPolicyKind {
        if self.predictive {
            FetchPolicyKind::PredictiveStall
        } else {
            FetchPolicyKind::Stall
        }
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        gated_icount_order(snapshot, |t| self.gated(snapshot, t), priority);
    }

    fn on_load_predicted(
        &mut self,
        thread: ThreadId,
        _pc: u64,
        seq: SeqNum,
        predicted_long_latency: bool,
        _predicted_mlp_distance: u32,
        _predicted_has_mlp: bool,
    ) {
        if self.predictive && predicted_long_latency {
            self.pending_predicted[thread.index()].insert(seq.0);
        }
    }

    fn on_load_executed_hit(&mut self, thread: ThreadId, _pc: u64, seq: SeqNum) {
        self.pending_predicted[thread.index()].remove(&seq.0);
    }

    fn on_long_latency_resolved(&mut self, thread: ThreadId, seq: SeqNum) {
        self.pending_predicted[thread.index()].remove(&seq.0);
    }

    fn on_squash(&mut self, thread: ThreadId, keep_up_to: SeqNum) {
        self.pending_predicted[thread.index()].retain(|&s| s <= keep_up_to.0); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_snapshot() -> SmtSnapshot {
        let mut s = SmtSnapshot::new(2);
        for t in &mut s.threads {
            t.active = true;
        }
        s
    }

    #[test]
    fn detected_stall_gates_thread_with_outstanding_lll() {
        let mut p = StallPolicy::detected(2);
        let mut s = busy_snapshot();
        s.threads[0].outstanding_long_latency_loads = 1;
        s.threads[0].oldest_lll_cycle = Some(10);
        let order = p.fetch_priority_vec(&s);
        assert_eq!(order, vec![ThreadId::new(1)]);
    }

    #[test]
    fn detected_stall_ignores_predictions() {
        let mut p = StallPolicy::detected(2);
        p.on_load_predicted(ThreadId::new(0), 0x40, SeqNum(5), true, 10, true);
        let s = busy_snapshot();
        assert_eq!(p.fetch_priority_vec(&s).len(), 2);
    }

    #[test]
    fn predictive_stall_gates_on_prediction_until_hit() {
        let mut p = StallPolicy::predictive(2);
        let s = busy_snapshot();
        p.on_load_predicted(ThreadId::new(0), 0x40, SeqNum(5), true, 0, false);
        assert_eq!(p.fetch_priority_vec(&s), vec![ThreadId::new(1)]);
        // The load turns out to be a hit: the thread resumes fetching.
        p.on_load_executed_hit(ThreadId::new(0), 0x40, SeqNum(5));
        assert_eq!(p.fetch_priority_vec(&s).len(), 2);
    }

    #[test]
    fn predictive_stall_clears_on_resolution_and_squash() {
        let mut p = StallPolicy::predictive(2);
        let s = busy_snapshot();
        p.on_load_predicted(ThreadId::new(0), 0x40, SeqNum(5), true, 0, false);
        p.on_long_latency_resolved(ThreadId::new(0), SeqNum(5));
        assert_eq!(p.fetch_priority_vec(&s).len(), 2);
        p.on_load_predicted(ThreadId::new(0), 0x44, SeqNum(9), true, 0, false);
        p.on_squash(ThreadId::new(0), SeqNum(7));
        assert_eq!(p.fetch_priority_vec(&s).len(), 2);
    }

    #[test]
    fn cot_lets_oldest_thread_continue_when_all_stalled() {
        let mut p = StallPolicy::detected(2);
        let mut s = busy_snapshot();
        for (i, t) in s.threads.iter_mut().enumerate() {
            t.outstanding_long_latency_loads = 1;
            t.oldest_lll_cycle = Some(100 - i as u64); // thread 1 stalled first
        }
        assert_eq!(p.fetch_priority_vec(&s), vec![ThreadId::new(1)]);
    }

    #[test]
    fn kinds_and_names() {
        assert_eq!(StallPolicy::detected(2).kind(), FetchPolicyKind::Stall);
        assert_eq!(
            StallPolicy::predictive(2).kind(),
            FetchPolicyKind::PredictiveStall
        );
    }
}
