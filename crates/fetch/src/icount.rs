//! The ICOUNT 2.4 baseline fetch policy (Tullsen et al. 1996).

use smt_types::config::FetchPolicyKind;
use smt_types::{SmtSnapshot, ThreadId};

use crate::policy::{icount_order, FetchPolicy};

/// ICOUNT: fetch from the thread(s) with the fewest instructions in the front-end
/// pipeline and issue queues. Never gates a thread.
///
/// # Example
///
/// ```
/// use smt_fetch::{FetchPolicy, IcountPolicy};
/// use smt_types::SmtSnapshot;
///
/// let mut p = IcountPolicy::new(2);
/// let mut snap = SmtSnapshot::new(2);
/// snap.threads[0].icount = 30;
/// snap.threads[1].icount = 5;
/// let mut order = Vec::new();
/// p.fetch_priority(&snap, &mut order);
/// assert_eq!(order[0].index(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct IcountPolicy {
    num_threads: usize,
}

impl IcountPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        IcountPolicy { num_threads }
    }
}

impl FetchPolicy for IcountPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Icount
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        debug_assert_eq!(snapshot.num_threads(), self.num_threads);
        icount_order(snapshot, priority);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_gates() {
        let mut p = IcountPolicy::new(4);
        let mut snap = SmtSnapshot::new(4);
        for t in &mut snap.threads {
            t.outstanding_long_latency_loads = 3;
            t.active = true;
        }
        assert_eq!(p.fetch_priority_vec(&snap).len(), 4);
        assert_eq!(p.kind(), FetchPolicyKind::Icount);
        assert_eq!(p.name(), "icount");
    }
}
