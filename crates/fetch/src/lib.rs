//! SMT fetch policies and explicit resource-management schemes.
//!
//! The pipeline in `smt_core` delegates two decisions to a [`FetchPolicy`]:
//!
//! 1. **which threads may fetch this cycle, and in what priority order**
//!    ([`FetchPolicy::fetch_priority`]), and
//! 2. **whether to flush instructions of a thread** in reaction to long-latency
//!    loads or resource stalls ([`FetchPolicy::on_long_latency_detected`],
//!    [`FetchPolicy::on_resource_stall`]).
//!
//! Explicit resource-management schemes (static partitioning, DCRA) additionally
//! impose per-thread occupancy caps through [`FetchPolicy::resource_caps`].
//!
//! Implemented policies (Sections 3, 4.3, 6.5 and 6.6 of the paper):
//!
//! | kind | description |
//! |------|-------------|
//! | [`IcountPolicy`] | ICOUNT 2.4 baseline |
//! | [`StallPolicy`] (detected) | fetch stall on a detected long-latency load |
//! | [`StallPolicy`] (predictive) | fetch stall on a predicted long-latency load |
//! | [`FlushPolicy`] | flush past a detected long-latency load |
//! | [`MlpStallPolicy`] | MLP-aware stall fetch (this paper) |
//! | [`MlpFlushPolicy`] | MLP-aware flush (this paper, headline policy) |
//! | [`MlpBinaryFlushPolicy`] | alternative (c): binary MLP predictor + flush |
//! | [`MlpDistanceFlushAtStallPolicy`] | alternative (d): MLP distance + flush at resource stall |
//! | [`MlpBinaryFlushAtStallPolicy`] | alternative (e): binary MLP + flush at resource stall |
//! | [`StaticPartitionPolicy`] | equal static partitioning of buffer resources |
//! | [`DcraPolicy`] | dynamically controlled resource allocation |
//!
//! All long-latency-aware policies implement the continue-oldest-thread (COT) rule
//! of Cazorla et al.: when every active thread is stalled on a long-latency load,
//! the thread whose load is oldest keeps fetching.
//!
//! # Example
//!
//! ```
//! use smt_fetch::build_policy;
//! use smt_types::config::{FetchPolicyKind, SmtConfig};
//! use smt_types::SmtSnapshot;
//!
//! let cfg = SmtConfig::baseline(2).with_policy(FetchPolicyKind::MlpFlush);
//! let mut policy = build_policy(cfg.fetch_policy, &cfg);
//! let snapshot = SmtSnapshot::new(2);
//! // The pipeline reuses one priority buffer across cycles; `_vec` variants
//! // allocate for convenience.
//! let mut order = Vec::new();
//! policy.fetch_priority(&snapshot, &mut order);
//! assert_eq!(order.len(), 2);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod alternatives;
pub mod flush;
pub mod icount;
pub mod mlp;
pub mod partition;
pub mod policy;
pub mod stall;

pub use alternatives::{
    MlpBinaryFlushAtStallPolicy, MlpBinaryFlushPolicy, MlpDistanceFlushAtStallPolicy,
};
pub use flush::FlushPolicy;
pub use icount::IcountPolicy;
pub use mlp::{MlpFlushPolicy, MlpStallPolicy};
pub use partition::{DcraPolicy, StaticPartitionPolicy};
pub use policy::{FetchPolicy, FlushRequest, ResourceCaps};
pub use stall::StallPolicy;

use smt_types::config::{FetchPolicyKind, SmtConfig};

/// Builds the fetch policy implementation for a [`FetchPolicyKind`].
pub fn build_policy(kind: FetchPolicyKind, config: &SmtConfig) -> Box<dyn FetchPolicy> {
    match kind {
        FetchPolicyKind::Icount => Box::new(IcountPolicy::new(config.num_threads)),
        FetchPolicyKind::Stall => Box::new(StallPolicy::detected(config.num_threads)),
        FetchPolicyKind::PredictiveStall => Box::new(StallPolicy::predictive(config.num_threads)),
        FetchPolicyKind::Flush => Box::new(FlushPolicy::new(config.num_threads)),
        FetchPolicyKind::MlpStall => Box::new(MlpStallPolicy::new(config.num_threads)),
        FetchPolicyKind::MlpFlush => Box::new(MlpFlushPolicy::new(config.num_threads)),
        FetchPolicyKind::MlpBinaryFlush => Box::new(MlpBinaryFlushPolicy::new(config.num_threads)),
        FetchPolicyKind::MlpDistanceFlushAtStall => {
            Box::new(MlpDistanceFlushAtStallPolicy::new(config.num_threads))
        }
        FetchPolicyKind::MlpBinaryFlushAtStall => {
            Box::new(MlpBinaryFlushAtStallPolicy::new(config.num_threads))
        }
        FetchPolicyKind::StaticPartition => {
            Box::new(StaticPartitionPolicy::new(config.num_threads))
        }
        FetchPolicyKind::Dcra => Box::new(DcraPolicy::new(config.num_threads)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_types::SmtSnapshot;

    #[test]
    fn factory_builds_every_policy() {
        let cfg = SmtConfig::baseline(2);
        let kinds = [
            FetchPolicyKind::Icount,
            FetchPolicyKind::Stall,
            FetchPolicyKind::PredictiveStall,
            FetchPolicyKind::Flush,
            FetchPolicyKind::MlpStall,
            FetchPolicyKind::MlpFlush,
            FetchPolicyKind::MlpBinaryFlush,
            FetchPolicyKind::MlpDistanceFlushAtStall,
            FetchPolicyKind::MlpBinaryFlushAtStall,
            FetchPolicyKind::StaticPartition,
            FetchPolicyKind::Dcra,
        ];
        let snap = SmtSnapshot::new(2);
        let mut order = Vec::new();
        for kind in kinds {
            let mut p = build_policy(kind, &cfg);
            assert_eq!(p.kind(), kind);
            // Every policy lets both idle threads fetch in some order, and
            // correctly clears the reused scratch buffer between calls.
            p.fetch_priority(&snap, &mut order);
            assert_eq!(order.len(), 2);
        }
    }
}
