//! The alternative MLP-aware fetch policies of Section 6.5.
//!
//! Figure 19 of the paper sketches five designs; (a) is the plain flush policy and
//! (b) the MLP-distance flush evaluated throughout the paper (both live in
//! [`crate::flush`] / [`crate::mlp`]). This module implements the remaining three:
//!
//! * **(c) `MLP + flush`** ([`MlpBinaryFlushPolicy`]): a 1-bit MLP predictor; if no
//!   MLP is predicted the thread is flushed past the load, otherwise fetching
//!   simply continues under ICOUNT.
//! * **(d) `MLP distance + flush at resource stall`**
//!   ([`MlpDistanceFlushAtStallPolicy`]): fetch up to the predicted MLP distance,
//!   then stall; if the machine later hits a resource stall, flush the thread past
//!   the triggering load so the other threads can use its resources (the already
//!   issued independent misses keep overlapping — a prefetching effect).
//! * **(e) `MLP + flush at resource stall`** ([`MlpBinaryFlushAtStallPolicy`]):
//!   binary MLP prediction combined with the flush-at-resource-stall rule.

use std::collections::HashSet;

use smt_types::config::FetchPolicyKind;
use smt_types::{SeqNum, SmtSnapshot, ThreadId};

use crate::policy::{gated_icount_order, FetchPolicy, FlushRequest};

/// Alternative (c): binary MLP predictor + flush.
#[derive(Clone, Debug)]
pub struct MlpBinaryFlushPolicy {
    /// Per thread: unresolved triggering loads that were predicted to have no MLP.
    pending_no_mlp: Vec<HashSet<u64>>,
}

impl MlpBinaryFlushPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        MlpBinaryFlushPolicy {
            pending_no_mlp: vec![HashSet::new(); num_threads],
        }
    }
}

impl FetchPolicy for MlpBinaryFlushPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::MlpBinaryFlush
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        let pending = &self.pending_no_mlp;
        gated_icount_order(snapshot, |t| !pending[t.index()].is_empty(), priority);
    }

    fn on_long_latency_detected(
        &mut self,
        thread: ThreadId,
        _pc: u64,
        seq: SeqNum,
        latest_fetched_seq: SeqNum,
        _predicted_mlp_distance: u32,
        predicted_has_mlp: bool,
    ) -> Option<FlushRequest> {
        if predicted_has_mlp {
            // MLP expected: keep fetching past long-latency loads under ICOUNT.
            return None;
        }
        self.pending_no_mlp[thread.index()].insert(seq.0);
        if latest_fetched_seq > seq {
            Some(FlushRequest {
                thread,
                keep_up_to: seq,
            })
        } else {
            None
        }
    }

    fn on_long_latency_resolved(&mut self, thread: ThreadId, seq: SeqNum) {
        self.pending_no_mlp[thread.index()].remove(&seq.0);
    }

    fn on_squash(&mut self, thread: ThreadId, keep_up_to: SeqNum) {
        self.pending_no_mlp[thread.index()].retain(|&s| s <= keep_up_to.0); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
    }
}

/// Per-thread state for the flush-at-resource-stall variants.
#[derive(Clone, Debug, Default)]
struct StallFlushState {
    latest_fetched: u64,
    /// Unresolved triggering loads, keyed by sequence number.
    pending: HashSet<u64>,
    /// Fetch allowance (`trigger + predicted distance`), when distance bounded.
    allowed_until: Option<u64>,
    /// Whether the thread was already flushed for the current stall episode.
    flushed_this_episode: bool,
}

impl StallFlushState {
    fn oldest_pending(&self) -> Option<u64> {
        self.pending.iter().copied().min() // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
    }

    fn gated(&self, outstanding_lll: u32, distance_bounded: bool) -> bool {
        if self.pending.is_empty() && outstanding_lll == 0 {
            return false;
        }
        if !distance_bounded {
            // Binary variant: only gated while a no-MLP trigger or post-stall flush
            // is outstanding, which is tracked through `allowed_until == Some(0)`.
            return match self.allowed_until {
                Some(limit) => self.latest_fetched >= limit,
                None => false,
            };
        }
        match self.allowed_until {
            Some(limit) => self.latest_fetched >= limit,
            None => !self.pending.is_empty() || outstanding_lll > 0,
        }
    }

    fn clear_if_idle(&mut self, outstanding_lll: u32) {
        if self.pending.is_empty() && outstanding_lll == 0 {
            self.allowed_until = None;
            self.flushed_this_episode = false;
        }
    }
}

/// Alternative (d): MLP-distance-bounded fetch, with a flush past the triggering
/// load only when the machine reaches a resource stall.
#[derive(Clone, Debug)]
pub struct MlpDistanceFlushAtStallPolicy {
    threads: Vec<StallFlushState>,
}

impl MlpDistanceFlushAtStallPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        MlpDistanceFlushAtStallPolicy {
            threads: vec![StallFlushState::default(); num_threads],
        }
    }
}

impl FetchPolicy for MlpDistanceFlushAtStallPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::MlpDistanceFlushAtStall
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        for (i, s) in self.threads.iter_mut().enumerate() {
            s.clear_if_idle(snapshot.threads[i].outstanding_long_latency_loads);
        }
        let threads = &self.threads;
        gated_icount_order(
            snapshot,
            |t| threads[t.index()].gated(snapshot.thread(t).outstanding_long_latency_loads, true),
            priority,
        );
    }

    fn on_fetch(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].latest_fetched = seq.0;
    }

    fn on_long_latency_detected(
        &mut self,
        thread: ThreadId,
        _pc: u64,
        seq: SeqNum,
        latest_fetched_seq: SeqNum,
        predicted_mlp_distance: u32,
        _predicted_has_mlp: bool,
    ) -> Option<FlushRequest> {
        let state = &mut self.threads[thread.index()];
        state.pending.insert(seq.0);
        state.latest_fetched = state.latest_fetched.max(latest_fetched_seq.0);
        let bound = seq.0 + predicted_mlp_distance as u64;
        state.allowed_until = Some(state.allowed_until.map_or(bound, |c| c.max(bound)));
        // No immediate flush: the surplus (if any) is only reclaimed on a resource stall.
        None
    }

    fn on_long_latency_resolved(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].pending.remove(&seq.0);
    }

    fn on_resource_stall(&mut self, snapshot: &SmtSnapshot, flushes: &mut Vec<FlushRequest>) {
        stall_flush_requests(&mut self.threads, snapshot, flushes);
    }

    fn on_squash(&mut self, thread: ThreadId, keep_up_to: SeqNum) {
        let state = &mut self.threads[thread.index()];
        state.pending.retain(|&s| s <= keep_up_to.0); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
        state.latest_fetched = state.latest_fetched.min(keep_up_to.0);
    }
}

/// Appends one flush request per thread that has an unresolved trigger and has
/// not been flushed in the current stall episode (shared by alternatives (d)
/// and (e)).
fn stall_flush_requests(
    threads: &mut [StallFlushState],
    snapshot: &SmtSnapshot,
    flushes: &mut Vec<FlushRequest>,
) {
    for (i, state) in threads.iter_mut().enumerate() {
        if state.flushed_this_episode {
            continue;
        }
        if snapshot.threads[i].outstanding_long_latency_loads == 0 {
            continue;
        }
        if let Some(oldest) = state.oldest_pending() {
            state.flushed_this_episode = true;
            state.allowed_until = Some(oldest);
            state.latest_fetched = state.latest_fetched.min(oldest);
            flushes.push(FlushRequest {
                thread: ThreadId::new(i),
                keep_up_to: SeqNum(oldest),
            });
        }
    }
}

/// Alternative (e): binary MLP prediction + flush at resource stall.
#[derive(Clone, Debug)]
pub struct MlpBinaryFlushAtStallPolicy {
    threads: Vec<StallFlushState>,
}

impl MlpBinaryFlushAtStallPolicy {
    /// Creates the policy for `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        MlpBinaryFlushAtStallPolicy {
            threads: vec![StallFlushState::default(); num_threads],
        }
    }
}

impl FetchPolicy for MlpBinaryFlushAtStallPolicy {
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::MlpBinaryFlushAtStall
    }

    fn fetch_priority(&mut self, snapshot: &SmtSnapshot, priority: &mut Vec<ThreadId>) {
        for (i, s) in self.threads.iter_mut().enumerate() {
            s.clear_if_idle(snapshot.threads[i].outstanding_long_latency_loads);
        }
        let threads = &self.threads;
        gated_icount_order(
            snapshot,
            |t| threads[t.index()].gated(snapshot.thread(t).outstanding_long_latency_loads, false),
            priority,
        );
    }

    fn on_fetch(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].latest_fetched = seq.0;
    }

    fn on_long_latency_detected(
        &mut self,
        thread: ThreadId,
        _pc: u64,
        seq: SeqNum,
        latest_fetched_seq: SeqNum,
        _predicted_mlp_distance: u32,
        predicted_has_mlp: bool,
    ) -> Option<FlushRequest> {
        let state = &mut self.threads[thread.index()];
        state.pending.insert(seq.0);
        state.latest_fetched = state.latest_fetched.max(latest_fetched_seq.0);
        if predicted_has_mlp {
            // Keep fetching past the load — even past the last load of the burst,
            // which is why this variant suffers more resource-stall flushes.
            return None;
        }
        state.allowed_until = Some(seq.0);
        if latest_fetched_seq > seq {
            state.latest_fetched = seq.0;
            Some(FlushRequest {
                thread,
                keep_up_to: seq,
            })
        } else {
            None
        }
    }

    fn on_long_latency_resolved(&mut self, thread: ThreadId, seq: SeqNum) {
        self.threads[thread.index()].pending.remove(&seq.0);
    }

    fn on_resource_stall(&mut self, snapshot: &SmtSnapshot, flushes: &mut Vec<FlushRequest>) {
        stall_flush_requests(&mut self.threads, snapshot, flushes);
    }

    fn on_squash(&mut self, thread: ThreadId, keep_up_to: SeqNum) {
        let state = &mut self.threads[thread.index()];
        state.pending.retain(|&s| s <= keep_up_to.0); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
        state.latest_fetched = state.latest_fetched.min(keep_up_to.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_snapshot(num: usize) -> SmtSnapshot {
        let mut s = SmtSnapshot::new(num);
        for t in &mut s.threads {
            t.active = true;
        }
        s
    }

    #[test]
    fn binary_flush_ignores_loads_with_predicted_mlp() {
        let mut p = MlpBinaryFlushPolicy::new(2);
        let t0 = ThreadId::new(0);
        assert!(p
            .on_long_latency_detected(t0, 0x40, SeqNum(10), SeqNum(50), 30, true)
            .is_none());
        let s = active_snapshot(2);
        assert!(p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn binary_flush_flushes_and_gates_isolated_loads() {
        let mut p = MlpBinaryFlushPolicy::new(2);
        let t0 = ThreadId::new(0);
        let req = p
            .on_long_latency_detected(t0, 0x40, SeqNum(10), SeqNum(50), 0, false)
            .expect("flush expected");
        assert_eq!(req.keep_up_to, SeqNum(10));
        let s = active_snapshot(2);
        assert!(!p.fetch_priority_vec(&s).contains(&t0));
        p.on_long_latency_resolved(t0, SeqNum(10));
        assert!(p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn distance_flush_at_stall_never_flushes_immediately() {
        let mut p = MlpDistanceFlushAtStallPolicy::new(2);
        let t0 = ThreadId::new(0);
        assert!(p
            .on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(180), 8, true)
            .is_none());
    }

    #[test]
    fn distance_flush_at_stall_flushes_past_trigger_on_resource_stall() {
        let mut p = MlpDistanceFlushAtStallPolicy::new(2);
        let t0 = ThreadId::new(0);
        let _ = p.on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(130), 8, true);
        let mut s = active_snapshot(2);
        s.threads[0].outstanding_long_latency_loads = 1;
        s.threads[0].oldest_lll_cycle = Some(1);
        s.resource_stalled = true;
        let reqs = p.on_resource_stall_vec(&s);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].keep_up_to, SeqNum(100));
        // Only one flush per stall episode.
        assert!(p.on_resource_stall_vec(&s).is_empty());
        // After the load resolves the episode resets.
        p.on_long_latency_resolved(t0, SeqNum(100));
        s.threads[0].outstanding_long_latency_loads = 0;
        let _ = p.fetch_priority_vec(&s);
        let _ = p.on_long_latency_detected(t0, 0x44, SeqNum(300), SeqNum(310), 4, true);
        s.threads[0].outstanding_long_latency_loads = 1;
        assert_eq!(p.on_resource_stall_vec(&s).len(), 1);
    }

    #[test]
    fn distance_flush_at_stall_gates_past_allowance() {
        let mut p = MlpDistanceFlushAtStallPolicy::new(2);
        let t0 = ThreadId::new(0);
        let mut s = active_snapshot(2);
        s.threads[0].outstanding_long_latency_loads = 1;
        s.threads[0].oldest_lll_cycle = Some(1);
        let _ = p.on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(100), 6, true);
        p.on_fetch(t0, SeqNum(103));
        assert!(p.fetch_priority_vec(&s).contains(&t0));
        p.on_fetch(t0, SeqNum(106));
        assert!(!p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn binary_flush_at_stall_keeps_fetching_with_mlp() {
        let mut p = MlpBinaryFlushAtStallPolicy::new(2);
        let t0 = ThreadId::new(0);
        let mut s = active_snapshot(2);
        s.threads[0].outstanding_long_latency_loads = 1;
        s.threads[0].oldest_lll_cycle = Some(1);
        assert!(p
            .on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(120), 0, true)
            .is_none());
        // MLP predicted: no gating even with the load outstanding.
        assert!(p.fetch_priority_vec(&s).contains(&t0));
        // A resource stall reclaims the resources.
        s.resource_stalled = true;
        let reqs = p.on_resource_stall_vec(&s);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].keep_up_to, SeqNum(100));
        // After the flush the thread is gated at the trigger until resolution.
        assert!(!p.fetch_priority_vec(&s).contains(&t0));
    }

    #[test]
    fn squash_clears_alternative_policy_state() {
        let mut p = MlpBinaryFlushAtStallPolicy::new(2);
        let t0 = ThreadId::new(0);
        let _ = p.on_long_latency_detected(t0, 0x40, SeqNum(100), SeqNum(120), 0, false);
        p.on_squash(t0, SeqNum(50));
        let s = active_snapshot(2);
        assert!(p.fetch_priority_vec(&s).contains(&t0));
    }
}
