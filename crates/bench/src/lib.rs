//! Shared helpers for the Criterion benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for recorded
//! paper-versus-measured values). Each bench prints the regenerated rows once
//! during setup and then measures the runtime of a reduced-size version of the
//! experiment so `cargo bench` both reproduces the numbers and tracks simulator
//! performance.

use smt_core::runner::RunScale;

/// Scale used for the *printed* (reported) experiment output.
///
/// Controlled by the `SMT_BENCH_INSTRUCTIONS` environment variable (instructions
/// per thread, default 20 000) so `cargo bench` can regenerate higher-fidelity
/// numbers when more time is available.
pub fn report_scale() -> RunScale {
    let instructions = std::env::var("SMT_BENCH_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    RunScale::standard().with_instructions(instructions)
}

/// Scale used inside the Criterion measurement loop (kept small so iterations
/// finish quickly).
pub fn measure_scale() -> RunScale {
    RunScale::tiny()
}

/// How many workloads per group the policy-comparison benches simulate.
pub fn workloads_per_group() -> usize {
    std::env::var("SMT_BENCH_WORKLOADS_PER_GROUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        assert!(report_scale().instructions_per_thread >= 1_000);
        assert!(measure_scale().instructions_per_thread <= report_scale().instructions_per_thread);
        assert!(workloads_per_group() >= 1);
    }
}
