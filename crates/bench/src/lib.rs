//! Shared helpers for the Criterion benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper by running its [`smt_core::experiments::ExperimentRegistry`] spec
//! (see `EXPERIMENTS.md` for the experiment index and recorded
//! paper-versus-measured values). Each bench prints the regenerated report
//! once during setup and then measures the runtime of a reduced-size version
//! of the same spec, so `cargo bench` both reproduces the numbers and tracks
//! simulator performance.

use smt_core::experiments::{engine, ExperimentRegistry, ExperimentReport, ExperimentSpec};
use smt_core::runner::RunScale;

/// Scale used for the *printed* (reported) experiment output.
///
/// Controlled by the `SMT_BENCH_INSTRUCTIONS` environment variable (instructions
/// per thread, default 20 000) so `cargo bench` can regenerate higher-fidelity
/// numbers when more time is available.
pub fn report_scale() -> RunScale {
    let instructions = std::env::var("SMT_BENCH_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    RunScale::standard().with_instructions(instructions)
}

/// Scale used inside the Criterion measurement loop (kept small so iterations
/// finish quickly).
pub fn measure_scale() -> RunScale {
    RunScale::tiny()
}

/// How many workloads per group the policy-comparison benches simulate.
pub fn workloads_per_group() -> usize {
    std::env::var("SMT_BENCH_WORKLOADS_PER_GROUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Fetches a registry spec by name, panicking with a clear message if the
/// registry and the bench harness ever drift apart.
pub fn registry_spec(name: &str) -> ExperimentSpec {
    ExperimentRegistry::builtin()
        .get(name)
        .unwrap_or_else(|| panic!("registry entry `{name}` missing"))
        .clone()
}

/// Runs `spec` at the reporting scale, limited to `per_group` workloads per
/// group, and prints the regenerated report under `header`.
pub fn report(header: &str, spec: ExperimentSpec, per_group: usize) -> ExperimentReport {
    let spec = spec
        .with_scale(report_scale())
        .with_workload_limit_per_group(per_group)
        .expect("registry workloads are valid");
    let report = engine::run_spec(&spec).expect("experiment run");
    println!("\n=== {header} ===\n{}", report.format_text());
    report
}

/// The reduced-size version of `spec` measured inside the Criterion loop.
pub fn measured(spec: ExperimentSpec) -> ExperimentSpec {
    spec.with_scale(measure_scale())
        .with_workload_limit_per_group(1)
        .expect("registry workloads are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        assert!(report_scale().instructions_per_thread >= 1_000);
        assert!(measure_scale().instructions_per_thread <= report_scale().instructions_per_thread);
        assert!(workloads_per_group() >= 1);
    }

    #[test]
    fn registry_spec_panics_helpfully_on_drift() {
        let spec = registry_spec("fig09_two_thread_policies");
        assert_eq!(spec.name, "fig09_two_thread_policies");
        let measured = measured(spec);
        assert_eq!(measured.scale, measure_scale());
    }
}
