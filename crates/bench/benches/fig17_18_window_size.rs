//! Experiments E-F17 / E-F18: regenerate Figures 17 and 18 (STP and ANTT versus
//! processor window size, relative to ICOUNT).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale};
use smt_core::experiments::sweeps::{format_sweep, window_size_sweep};

fn bench_fig17_18(c: &mut Criterion) {
    let points = window_size_sweep(&[128, 256, 512, 1024], report_scale()).expect("window sweep");
    println!("\n=== Figures 17/18 (regenerated): window-size sweep ===\n");
    println!("{}", format_sweep(&points, "rob"));

    let mut group = c.benchmark_group("fig17_18");
    group.sample_size(10);
    group.bench_function("window_point_512", |b| {
        b.iter(|| window_size_sweep(&[512], measure_scale()).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig17_18);
criterion_main!(benches);
