//! Experiments E-F17/E-F18: regenerate Figures 17 and 18 (STP and ANTT as the
//! window size sweeps 128-1024 ROB entries) via the `fig17_window_size_sweep`
//! registry spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report};
use smt_core::experiments::engine;

fn bench_fig17_18(c: &mut Criterion) {
    report(
        "Figures 17/18 (regenerated): window size sweep",
        registry_spec("fig17_window_size_sweep"),
        usize::MAX,
    );

    let mut spec = measured(registry_spec("fig17_window_size_sweep"));
    spec.sweep.as_mut().expect("fig17 sweeps").values = vec![512];
    let mut group = c.benchmark_group("fig17_18");
    group.sample_size(10);
    group.bench_function("window_point_512", |b| {
        b.iter(|| engine::run_spec(&spec).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig17_18);
criterion_main!(benches);
