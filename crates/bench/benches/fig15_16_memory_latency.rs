//! Experiments E-F15 / E-F16: regenerate Figures 15 and 16 (STP and ANTT versus
//! main-memory access latency, relative to ICOUNT).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale};
use smt_core::experiments::sweeps::{format_sweep, memory_latency_sweep};

fn bench_fig15_16(c: &mut Criterion) {
    let points = memory_latency_sweep(&[200, 400, 600, 800], report_scale()).expect("latency sweep");
    println!("\n=== Figures 15/16 (regenerated): memory-latency sweep ===\n");
    println!("{}", format_sweep(&points, "mem-lat"));

    let mut group = c.benchmark_group("fig15_16");
    group.sample_size(10);
    group.bench_function("latency_point_600", |b| {
        b.iter(|| memory_latency_sweep(&[600], measure_scale()).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig15_16);
criterion_main!(benches);
