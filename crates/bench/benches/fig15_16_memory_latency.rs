//! Experiments E-F15/E-F16: regenerate Figures 15 and 16 (STP and ANTT as the
//! main-memory latency sweeps 200-800 cycles) via the
//! `fig15_memory_latency_sweep` registry spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report};
use smt_core::experiments::engine;

fn bench_fig15_16(c: &mut Criterion) {
    report(
        "Figures 15/16 (regenerated): memory latency sweep",
        registry_spec("fig15_memory_latency_sweep"),
        usize::MAX,
    );

    let mut spec = measured(registry_spec("fig15_memory_latency_sweep"));
    spec.sweep.as_mut().expect("fig15 sweeps").values = vec![600];
    let mut group = c.benchmark_group("fig15_16");
    group.sample_size(10);
    group.bench_function("latency_point_600", |b| {
        b.iter(|| engine::run_spec(&spec).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig15_16);
criterion_main!(benches);
