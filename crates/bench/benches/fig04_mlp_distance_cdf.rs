//! Experiment E-F4: regenerate Figure 4 (predicted MLP-distance CDFs) via the
//! `fig04_mlp_distance_cdf` registry spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report};
use smt_core::experiments::engine;

fn bench_fig04(c: &mut Criterion) {
    report(
        "Figure 4 (regenerated): predicted MLP-distance CDFs",
        registry_spec("fig04_mlp_distance_cdf"),
        usize::MAX,
    );

    let spec = measured(registry_spec("fig04_mlp_distance_cdf"));
    let mut group = c.benchmark_group("fig04");
    group.sample_size(10);
    group.bench_function("mlp_distance_cdf", |b| {
        b.iter(|| engine::run_spec(&spec).expect("figure 4"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig04);
criterion_main!(benches);
