//! Experiment E-F4: regenerate Figure 4 (cumulative distribution of the predicted
//! MLP distance for the six most MLP-intensive programs).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale};
use smt_core::experiments::predictors::figure4;

fn bench_fig04(c: &mut Criterion) {
    let cdfs = figure4(report_scale()).expect("figure 4");
    println!("\n=== Figure 4 (regenerated): fraction of predicted MLP distances within N instructions ===");
    println!("{:<10} {:>6} {:>6} {:>6} {:>6}", "benchmark", "<=32", "<=64", "<=96", "<=128");
    for cdf in &cdfs {
        println!(
            "{:<10} {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%",
            cdf.benchmark,
            cdf.fraction_within(32) * 100.0,
            cdf.fraction_within(64) * 100.0,
            cdf.fraction_within(96) * 100.0,
            cdf.fraction_within(128) * 100.0
        );
    }

    let mut group = c.benchmark_group("fig04");
    group.sample_size(10);
    group.bench_function("mlp_distance_cdf", |b| {
        b.iter(|| figure4(measure_scale()).expect("figure 4"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig04);
criterion_main!(benches);
