//! Experiments E-F9 / E-F10: regenerate Figures 9 and 10 (STP and ANTT of the six
//! main fetch policies over the two-thread workload groups of Table II).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale, workloads_per_group};
use smt_core::experiments::policies::{format_group_summaries, policy_comparison_two_thread};

fn bench_fig09_10(c: &mut Criterion) {
    let groups = policy_comparison_two_thread(report_scale(), workloads_per_group())
        .expect("two-thread policy comparison");
    println!("\n=== Figures 9/10 (regenerated): two-thread STP / ANTT ===\n");
    println!("{}", format_group_summaries(&groups));

    let mut group = c.benchmark_group("fig09_10");
    group.sample_size(10);
    group.bench_function("two_thread_one_workload_per_group", |b| {
        b.iter(|| policy_comparison_two_thread(measure_scale(), 1).expect("comparison"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig09_10);
criterion_main!(benches);
