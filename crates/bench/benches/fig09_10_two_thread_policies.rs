//! Experiments E-F9/E-F10: regenerate Figures 9 and 10 (STP and ANTT of the
//! six main fetch policies over the Table II two-thread workloads) via the
//! `fig09_two_thread_policies` registry spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report, workloads_per_group};
use smt_core::experiments::engine;

fn bench_fig09_10(c: &mut Criterion) {
    report(
        "Figures 9/10 (regenerated): two-thread STP / ANTT",
        registry_spec("fig09_two_thread_policies"),
        workloads_per_group(),
    );

    let spec = measured(registry_spec("fig09_two_thread_policies"));
    let mut group = c.benchmark_group("fig09_10");
    group.sample_size(10);
    group.bench_function("two_thread_one_workload_per_group", |b| {
        b.iter(|| engine::run_spec(&spec).expect("comparison"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig09_10);
criterion_main!(benches);
