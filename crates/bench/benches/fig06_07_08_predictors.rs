//! Experiments E-F6/E-F7/E-F8: regenerate Figures 6-8 (long-latency load,
//! binary MLP, and MLP-distance predictor accuracies) via the
//! `fig06_08_predictor_accuracy` registry spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report};
use smt_core::experiments::engine;

fn bench_fig06_07_08(c: &mut Criterion) {
    report(
        "Figures 6-8 (regenerated): predictor accuracies",
        registry_spec("fig06_08_predictor_accuracy"),
        usize::MAX,
    );

    let spec = measured(registry_spec("fig06_08_predictor_accuracy"));
    let mut group = c.benchmark_group("fig06_07_08");
    group.sample_size(10);
    group.bench_function("predictor_characterization", |b| {
        b.iter(|| engine::run_spec(&spec).expect("characterization"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig06_07_08);
criterion_main!(benches);
