//! Experiments E-F6, E-F7, E-F8: regenerate Figures 6 (long-latency load predictor
//! accuracy), 7 (binary MLP prediction outcomes) and 8 (MLP-distance "far enough"
//! accuracy).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale};
use smt_core::experiments::predictors::predictor_characterization;

fn bench_fig06_07_08(c: &mut Criterion) {
    let rows = predictor_characterization(report_scale()).expect("predictor characterization");
    println!("\n=== Figures 6/7/8 (regenerated): predictor accuracy per benchmark ===");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "benchmark", "LLL-acc", "TP", "TN", "FP", "FN", "far-enough"
    );
    for r in &rows {
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}%",
            r.benchmark,
            r.lll_accuracy * 100.0,
            r.mlp_true_positive * 100.0,
            r.mlp_true_negative * 100.0,
            r.mlp_false_positive * 100.0,
            r.mlp_false_negative * 100.0,
            r.mlp_distance_accuracy * 100.0
        );
    }
    let avg_lll = rows.iter().map(|r| r.lll_accuracy).sum::<f64>() / rows.len() as f64;
    let avg_far = rows.iter().map(|r| r.mlp_distance_accuracy).sum::<f64>() / rows.len() as f64;
    println!("average LLL-predictor accuracy: {:.1}% (paper: 99.4%)", avg_lll * 100.0);
    println!("average far-enough accuracy:    {:.1}% (paper: 87.8%)", avg_far * 100.0);

    let mut group = c.benchmark_group("fig06_07_08");
    group.sample_size(10);
    group.bench_function("predictor_characterization", |b| {
        b.iter(|| predictor_characterization(measure_scale()).expect("characterization"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig06_07_08);
criterion_main!(benches);
