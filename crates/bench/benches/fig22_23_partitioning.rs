//! Experiments E-F22 / E-F23: regenerate Figures 22 and 23 (MLP-aware flush versus
//! static resource partitioning and DCRA, on two- and four-thread workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale, workloads_per_group};
use smt_core::experiments::policies::{format_group_summaries, partitioning_comparison};

fn bench_fig22_23(c: &mut Criterion) {
    let (two_thread, four_thread) =
        partitioning_comparison(report_scale(), workloads_per_group(), workloads_per_group() * 2)
            .expect("partitioning comparison");
    println!("\n=== Figures 22/23 (regenerated): MLP-aware flush vs static partitioning vs DCRA ===\n");
    println!("{}", format_group_summaries(&two_thread));
    println!("-- four-thread workloads --");
    println!("policy                      STP      ANTT");
    for p in &four_thread {
        println!("{:<26} {:>6.3}  {:>8.3}", p.policy.name(), p.avg_stp, p.avg_antt);
    }

    let mut group = c.benchmark_group("fig22_23");
    group.sample_size(10);
    group.bench_function("partitioning_one_workload_per_group", |b| {
        b.iter(|| partitioning_comparison(measure_scale(), 1, 1).expect("partitioning"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig22_23);
criterion_main!(benches);
