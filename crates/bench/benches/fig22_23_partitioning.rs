//! Experiments E-F22/E-F23: regenerate Figures 22 and 23 (MLP-aware flush
//! versus static partitioning and DCRA) via the two `fig22_partitioning_*`
//! registry specs.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report, workloads_per_group};
use smt_core::experiments::engine;

fn bench_fig22_23(c: &mut Criterion) {
    report(
        "Figures 22/23 (regenerated): two-thread partitioning comparison",
        registry_spec("fig22_partitioning_two_thread"),
        workloads_per_group(),
    );
    report(
        "Figures 22/23 (regenerated): four-thread partitioning comparison",
        registry_spec("fig22_partitioning_four_thread"),
        workloads_per_group(),
    );

    let spec = measured(registry_spec("fig22_partitioning_two_thread"));
    let mut group = c.benchmark_group("fig22_23");
    group.sample_size(10);
    group.bench_function("partitioning_one_workload_per_group", |b| {
        b.iter(|| engine::run_spec(&spec).expect("partitioning"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig22_23);
criterion_main!(benches);
