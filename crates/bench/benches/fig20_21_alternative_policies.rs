//! Experiments E-F20 / E-F21: regenerate Figures 20 and 21 (the five alternative
//! MLP-aware flush policies of Section 6.5).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale, workloads_per_group};
use smt_core::experiments::policies::{alternative_policies, format_group_summaries};

fn bench_fig20_21(c: &mut Criterion) {
    let groups =
        alternative_policies(report_scale(), workloads_per_group()).expect("alternative policies");
    println!("\n=== Figures 20/21 (regenerated): alternative MLP-aware policies ===\n");
    println!("{}", format_group_summaries(&groups));

    let mut group = c.benchmark_group("fig20_21");
    group.sample_size(10);
    group.bench_function("alternatives_one_workload_per_group", |b| {
        b.iter(|| alternative_policies(measure_scale(), 1).expect("alternatives"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig20_21);
criterion_main!(benches);
