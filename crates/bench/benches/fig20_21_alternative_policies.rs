//! Experiments E-F20/E-F21: regenerate Figures 20 and 21 (the alternative
//! MLP-aware flush policies) via the `fig20_alternative_policies` registry
//! spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report, workloads_per_group};
use smt_core::experiments::engine;

fn bench_fig20_21(c: &mut Criterion) {
    report(
        "Figures 20/21 (regenerated): alternative MLP-aware policies",
        registry_spec("fig20_alternative_policies"),
        workloads_per_group(),
    );

    let spec = measured(registry_spec("fig20_alternative_policies"));
    let mut group = c.benchmark_group("fig20_21");
    group.sample_size(10);
    group.bench_function("alternatives_one_workload_per_group", |b| {
        b.iter(|| engine::run_spec(&spec).expect("alternatives"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig20_21);
criterion_main!(benches);
