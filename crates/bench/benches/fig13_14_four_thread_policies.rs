//! Experiments E-F13/E-F14: regenerate Figures 13 and 14 (STP and ANTT of the
//! main fetch policies over the Table III four-thread workloads) via the
//! `fig13_four_thread_policies` registry spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report, workloads_per_group};
use smt_core::experiments::engine;

fn bench_fig13_14(c: &mut Criterion) {
    report(
        "Figures 13/14 (regenerated): four-thread STP / ANTT",
        registry_spec("fig13_four_thread_policies"),
        workloads_per_group(),
    );

    let spec = measured(registry_spec("fig13_four_thread_policies")).with_workload_limit(1);
    let mut group = c.benchmark_group("fig13_14");
    group.sample_size(10);
    group.bench_function("four_thread_one_workload", |b| {
        b.iter(|| engine::run_spec(&spec).expect("comparison"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig13_14);
criterion_main!(benches);
