//! Experiments E-F13 / E-F14: regenerate Figures 13 and 14 (STP and ANTT of the
//! main fetch policies over the four-thread workloads of Table III).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale, workloads_per_group};
use smt_core::experiments::policies::four_thread_comparison;

fn bench_fig13_14(c: &mut Criterion) {
    let limit = workloads_per_group() * 3;
    let results = four_thread_comparison(report_scale(), limit).expect("four-thread comparison");
    println!("\n=== Figures 13/14 (regenerated): four-thread STP / ANTT ({limit} workloads) ===");
    println!("policy                      STP      ANTT");
    for p in &results {
        println!("{:<26} {:>6.3}  {:>8.3}", p.policy.name(), p.avg_stp, p.avg_antt);
    }

    let mut group = c.benchmark_group("fig13_14");
    group.sample_size(10);
    group.bench_function("four_thread_one_workload", |b| {
        b.iter(|| four_thread_comparison(measure_scale(), 1).expect("comparison"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig13_14);
criterion_main!(benches);
