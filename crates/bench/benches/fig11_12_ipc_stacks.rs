//! Experiments E-F11 / E-F12: regenerate Figures 11 and 12 (per-thread IPC for
//! MLP-intensive and mixed ILP/MLP two-thread workloads under each policy).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale, workloads_per_group};
use smt_core::experiments::policies::ipc_stacks;
use smt_core::workloads::WorkloadGroup;

fn print_stacks(title: &str, group: WorkloadGroup) {
    let stacks = ipc_stacks(report_scale(), group, workloads_per_group()).expect("ipc stacks");
    println!("\n=== {title} (regenerated) ===");
    for stack in &stacks {
        println!("{}:", stack.workload);
        for (policy, ipcs) in &stack.per_policy {
            let parts: Vec<String> = ipcs.iter().map(|v| format!("{v:.2}")).collect();
            println!("  {:<26} {}", policy.name(), parts.join(" / "));
        }
    }
}

fn bench_fig11_12(c: &mut Criterion) {
    print_stacks("Figure 11: MLP-intensive per-thread IPC", WorkloadGroup::MlpIntensive);
    print_stacks("Figure 12: mixed ILP/MLP per-thread IPC", WorkloadGroup::Mixed);

    let mut group = c.benchmark_group("fig11_12");
    group.sample_size(10);
    group.bench_function("ipc_stack_one_mlp_workload", |b| {
        b.iter(|| ipc_stacks(measure_scale(), WorkloadGroup::MlpIntensive, 1).expect("stacks"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig11_12);
criterion_main!(benches);
