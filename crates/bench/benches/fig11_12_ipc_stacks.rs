//! Experiments E-F11/E-F12: regenerate Figures 11 and 12 (per-thread IPC
//! stacks). The stacks are the `per_thread_ipc` columns of the
//! `fig09_two_thread_policies` grid cells, so this bench runs that spec
//! restricted to the MLP-intensive group.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report_scale};
use smt_core::experiments::{engine, ExperimentSpec};
use smt_core::workloads::{two_thread_group, WorkloadGroup};

/// The fig09 spec restricted to `limit` MLP-intensive workloads.
fn mlp_only_spec(limit: usize) -> ExperimentSpec {
    let mut spec = registry_spec("fig09_two_thread_policies");
    spec.workloads = two_thread_group(WorkloadGroup::MlpIntensive)
        .into_iter()
        .take(limit)
        .map(|w| w.benchmarks)
        .collect();
    spec
}

fn bench_fig11_12(c: &mut Criterion) {
    let spec = mlp_only_spec(2).with_scale(report_scale());
    let regenerated = engine::run_spec(&spec).expect("ipc stacks");
    println!("\n=== Figures 11/12 (regenerated): per-thread IPC stacks ===\n");
    for cell in &regenerated.policy_cells {
        let ipcs: Vec<String> = cell
            .per_thread_ipc
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect();
        println!(
            "{:<16} {:<26} {}",
            cell.workload,
            cell.policy.name(),
            ipcs.join(" / ")
        );
    }

    let spec = measured(mlp_only_spec(1));
    let mut group = c.benchmark_group("fig11_12");
    group.sample_size(10);
    group.bench_function("ipc_stack_one_mlp_workload", |b| {
        b.iter(|| engine::run_spec(&spec).expect("stacks"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig11_12);
criterion_main!(benches);
