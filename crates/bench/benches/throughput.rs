//! Simulator-throughput bench: times the `smt-cli bench` scenario matrix's
//! headline 4-thread baseline cell (and the 2-thread MLP cell) through the
//! [`smt_core::throughput`] harness, so `cargo bench` tracks raw sims/sec
//! alongside the figure-regeneration benches.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use smt_core::throughput::{prepare_scenario, scenario_matrix, BenchOptions, BASELINE_SCENARIO};

fn bench_throughput(c: &mut Criterion) {
    let opts = BenchOptions {
        instructions_per_thread: 5_000,
        runs: 1,
        quick: true,
        ..BenchOptions::quick()
    };
    let matrix = scenario_matrix();
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for name in [BASELINE_SCENARIO, "2t_mlp_mlpflush"] {
        let scenario = matrix
            .iter()
            .find(|s| s.name == name)
            .expect("scenario matrix entry");
        group.bench_function(name, |b| {
            // Trace and simulator construction stay outside the timed region so
            // the sample is the cycle loop alone, matching the cycles/s metric.
            b.iter_batched(
                || prepare_scenario(scenario, &opts).expect("scenario prepares"),
                |(mut sim, options)| black_box(sim.run(options)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
