//! Experiment E-T1: regenerate Table I / Figure 1 (per-benchmark long-latency
//! load rate, MLP, and MLP impact) via the `table1_characterization` registry
//! spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report};
use smt_core::experiments::engine;

fn bench_table1(c: &mut Criterion) {
    report(
        "Table I (regenerated): MLP characterization",
        registry_spec("table1_characterization"),
        usize::MAX,
    );

    let spec = measured(registry_spec("table1_characterization"));
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("characterize_one_per_class", |b| {
        b.iter(|| engine::run_spec(&spec).expect("characterization"))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
