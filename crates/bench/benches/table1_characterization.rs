//! Experiment E-T1 / E-F1: regenerate Table I and Figure 1 (per-benchmark
//! long-latency load rate, MLP, MLP impact and ILP/MLP classification) and
//! benchmark the per-benchmark characterization run.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale};
use smt_core::experiments::characterization::{characterize, format_table1, table1};

fn bench_table1(c: &mut Criterion) {
    let rows = table1(report_scale()).expect("Table I characterization");
    println!("\n=== Table I / Figure 1 (regenerated) ===\n{}", format_table1(&rows));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("characterize_mcf", |b| {
        b.iter(|| characterize("mcf", measure_scale()).expect("characterize"))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
