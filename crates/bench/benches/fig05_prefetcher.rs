//! Experiment E-F5: regenerate Figure 5 (single-thread IPC with and without
//! the hardware prefetcher) via the `fig05_prefetcher` registry spec.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measured, registry_spec, report};
use smt_core::experiments::engine;

fn bench_fig05(c: &mut Criterion) {
    let regenerated = report(
        "Figure 5 (regenerated): prefetcher impact",
        registry_spec("fig05_prefetcher"),
        usize::MAX,
    );
    let speedups: Vec<f64> = regenerated
        .bench_rows
        .iter()
        .filter_map(|r| r.prefetch_speedup)
        .collect();
    let mean: f64 = speedups.len() as f64 / speedups.iter().map(|s| 1.0 / s).sum::<f64>();
    println!(
        "harmonic-mean speedup: {:.1}% (paper: 20.2%)",
        (mean - 1.0) * 100.0
    );

    let spec = measured(registry_spec("fig05_prefetcher"));
    let mut group = c.benchmark_group("fig05");
    group.sample_size(10);
    group.bench_function("prefetcher_impact_one_per_class", |b| {
        b.iter(|| engine::run_spec(&spec).expect("figure 5"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig05);
criterion_main!(benches);
