//! Experiment E-F5: regenerate Figure 5 (single-thread IPC with and without the
//! stream-buffer hardware prefetcher).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::{measure_scale, report_scale};
use smt_core::experiments::predictors::figure5;
use smt_core::runner::run_single_thread;
use smt_types::SmtConfig;

fn bench_fig05(c: &mut Criterion) {
    let rows = figure5(report_scale()).expect("figure 5");
    println!("\n=== Figure 5 (regenerated): IPC without / with hardware prefetching ===");
    println!("{:<10} {:>8} {:>8} {:>9}", "benchmark", "no-pf", "with-pf", "speedup");
    for row in &rows {
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.1}%",
            row.benchmark,
            row.ipc_without_prefetch,
            row.ipc_with_prefetch,
            (row.speedup() - 1.0) * 100.0
        );
    }
    let mean: f64 =
        rows.len() as f64 / rows.iter().map(|r| 1.0 / r.speedup()).sum::<f64>();
    println!("harmonic-mean speedup: {:.1}% (paper: 20.2%)", (mean - 1.0) * 100.0);

    let mut group = c.benchmark_group("fig05");
    group.sample_size(10);
    group.bench_function("swim_with_prefetcher", |b| {
        b.iter(|| {
            run_single_thread("swim", &SmtConfig::baseline(1), measure_scale()).expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig05);
criterion_main!(benches);
