//! Set-associative branch target buffer.

use serde::{Deserialize, Serialize};

#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
    last_used: u64,
}

/// Serializable snapshot of one BTB way (for warm checkpoints).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BtbEntryState {
    /// Whether the way holds a target.
    pub valid: bool,
    /// Stored tag.
    pub tag: u64,
    /// Predicted target PC.
    pub target: u64,
    /// LRU stamp.
    pub last_used: u64,
}

/// Serializable snapshot of a [`BranchTargetBuffer`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BtbState {
    /// All ways of all sets, flattened row-major (`set * assoc + way`).
    pub entries: Vec<BtbEntryState>,
    /// The LRU clock.
    pub tick: u64,
}

/// A set-associative, LRU-replaced branch target buffer.
///
/// # Example
///
/// ```
/// use smt_branch::BranchTargetBuffer;
/// let mut btb = BranchTargetBuffer::new(256, 4);
/// btb.insert(0x400, 0x800);
/// assert_eq!(btb.lookup(0x400), Some(0x800));
/// assert_eq!(btb.lookup(0x404), None);
/// ```
#[derive(Clone, Debug)]
pub struct BranchTargetBuffer {
    sets: Vec<Vec<BtbEntry>>,
    tick: u64,
}

impl BranchTargetBuffer {
    /// Creates a BTB with `entries` total entries organised as `assoc`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `assoc` is zero, `assoc` does not divide `entries`,
    /// or the resulting set count is not a power of two.
    pub fn new(entries: u32, assoc: u32) -> Self {
        assert!(entries > 0 && assoc > 0, "BTB sizes must be non-zero");
        assert!(
            entries.is_multiple_of(assoc),
            "associativity must divide entry count"
        );
        let sets = entries / assoc;
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        BranchTargetBuffer {
            sets: vec![vec![BtbEntry::default(); assoc as usize]; sets as usize],
            tick: 0,
        }
    }

    fn set_and_tag(&self, pc: u64) -> (usize, u64) {
        let idx = pc >> 2;
        let set = (idx as usize) & (self.sets.len() - 1);
        (set, idx >> self.sets.len().trailing_zeros())
    }

    /// Looks up a predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(pc);
        for e in &mut self.sets[set] {
            if e.valid && e.tag == tag {
                e.last_used = tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Captures the BTB state for a warm checkpoint.
    pub fn state(&self) -> BtbState {
        BtbState {
            entries: self
                .sets
                .iter()
                .flat_map(|set| set.iter())
                .map(|e| BtbEntryState {
                    valid: e.valid,
                    tag: e.tag,
                    target: e.target,
                    last_used: e.last_used,
                })
                .collect(),
            tick: self.tick,
        }
    }

    /// Restores a state captured with [`BranchTargetBuffer::state`]. Fails
    /// when the geometry differs.
    pub fn restore_state(&mut self, state: &BtbState) -> Result<(), String> {
        let total: usize = self.sets.iter().map(|s| s.len()).sum();
        if state.entries.len() != total {
            return Err(format!(
                "BTB size mismatch: state has {} ways, buffer has {total}",
                state.entries.len()
            ));
        }
        let mut it = state.entries.iter();
        for set in &mut self.sets {
            for way in set.iter_mut() {
                let s = it.next().expect("length checked above");
                *way = BtbEntry {
                    valid: s.valid,
                    tag: s.tag,
                    target: s.target,
                    last_used: s.last_used,
                };
            }
        }
        self.tick = state.tick;
        Ok(())
    }

    /// Installs (or refreshes) the target of a taken branch.
    pub fn insert(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(pc);
        let ways = &mut self.sets[set];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.last_used = tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_used } else { 0 })
            .expect("BTB set has at least one way");
        *victim = BtbEntry {
            valid: true,
            tag,
            target,
            last_used: tick,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut btb = BranchTargetBuffer::new(64, 4);
        btb.insert(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        btb.insert(0x1000, 0x3000);
        assert_eq!(btb.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut btb = BranchTargetBuffer::new(4, 2); // 2 sets, 2 ways
                                                     // PCs mapping to set 0: idx multiples of 2 → pc multiples of 8 with (pc>>2)&1==0.
        let pcs = [0x0u64, 0x8, 0x10];
        btb.insert(pcs[0], 0xa0);
        btb.insert(pcs[1], 0xa1);
        assert!(btb.lookup(pcs[0]).is_some()); // refresh pcs[0]
        btb.insert(pcs[2], 0xa2); // evicts pcs[1]
        assert!(btb.lookup(pcs[0]).is_some());
        assert!(btb.lookup(pcs[1]).is_none());
        assert!(btb.lookup(pcs[2]).is_some());
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        let _ = BranchTargetBuffer::new(10, 4);
    }
}
