//! gshare direction predictor (global history XOR PC indexing into 2-bit counters).

use serde::{Deserialize, Serialize};

/// Serializable snapshot of a [`Gshare`] predictor (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct GshareState {
    /// The two-bit counter table.
    pub counters: Vec<u8>,
    /// The global history register.
    pub history: u64,
}

/// A gshare branch direction predictor.
///
/// # Example
///
/// ```
/// use smt_branch::Gshare;
/// let mut g = Gshare::new(1024);
/// // Train until the global history register saturates and the final counter warms.
/// for _ in 0..16 { g.update(0x40, true); }
/// assert!(g.predict(0x40));
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: u32) -> Self {
        assert!(entries > 0, "gshare needs at least one entry");
        assert!(
            entries.is_power_of_two(),
            "gshare entries must be a power of two"
        );
        Gshare {
            counters: vec![1; entries as usize], // weakly not-taken
            history: 0,
            history_mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.history_mask) as usize
    }

    /// Predicts the direction of the branch at `pc` (true = taken).
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Captures the predictor state for a warm checkpoint.
    pub fn state(&self) -> GshareState {
        GshareState {
            counters: self.counters.clone(),
            history: self.history,
        }
    }

    /// Restores a state captured with [`Gshare::state`]. Fails when the table
    /// geometry differs.
    pub fn restore_state(&mut self, state: &GshareState) -> Result<(), String> {
        if state.counters.len() != self.counters.len() {
            return Err(format!(
                "gshare table size mismatch: state has {}, predictor has {}",
                state.counters.len(),
                self.counters.len()
            ));
        }
        self.counters.copy_from_slice(&state.counters);
        self.history = state.history & self.history_mask;
        Ok(())
    }

    /// Updates the counter and global history with the resolved direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_counters() {
        let mut g = Gshare::new(16);
        for _ in 0..10 {
            g.update(0x0, true);
        }
        assert!(g.predict(0x0));
        for _ in 0..10 {
            g.update(0x0, false);
        }
        assert!(!g.predict(0x0));
    }

    #[test]
    fn history_affects_index() {
        let mut g = Gshare::new(1024);
        // With different global history the same PC can map to different counters;
        // just ensure updates do not panic and predictions stay boolean.
        for i in 0..100u64 {
            let taken = i % 3 == 0;
            let _ = g.predict(0x40);
            g.update(0x40, taken);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = Gshare::new(1000);
    }
}
