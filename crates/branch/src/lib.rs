//! Branch prediction substrate: a gshare direction predictor and a set-associative
//! branch target buffer, matching the Table IV configuration (2K-entry gshare,
//! 256-entry 4-way BTB, 11-cycle misprediction penalty charged by the pipeline).
//!
//! # Example
//!
//! ```
//! use smt_branch::BranchPredictor;
//!
//! let mut bp = BranchPredictor::new(2048, 256, 4);
//! // Train a strongly taken branch until the global history saturates.
//! for _ in 0..24 {
//!     let p = bp.predict(0x400);
//!     bp.update(0x400, true, 0x800, p);
//! }
//! assert!(bp.predict(0x400).taken);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod btb;
pub mod gshare;

pub use btb::{BranchTargetBuffer, BtbEntryState, BtbState};
pub use gshare::{Gshare, GshareState};

use serde::{Deserialize, Serialize};

/// Serializable snapshot of a [`BranchPredictor`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BranchPredictorState {
    /// Direction predictor state.
    pub gshare: GshareState,
    /// Target buffer state.
    pub btb: BtbState,
    /// Predictions made so far.
    pub predictions: u64,
    /// Mispredictions observed so far.
    pub mispredictions: u64,
}

/// A direction + target prediction for one branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target, if the BTB has one for this branch.
    pub target: Option<u64>,
}

/// Per-thread branch predictor combining a gshare direction predictor with a BTB.
///
/// Each SMT thread gets its own instance (the paper's predictor sizes are per
/// thread; sharing would only add destructive aliasing unrelated to the study).
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    gshare: Gshare,
    btb: BranchTargetBuffer,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `gshare_entries` two-bit counters and a
    /// `btb_entries`-entry, `btb_assoc`-way BTB.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or `gshare_entries` is not a power of two.
    pub fn new(gshare_entries: u32, btb_entries: u32, btb_assoc: u32) -> Self {
        BranchPredictor {
            gshare: Gshare::new(gshare_entries),
            btb: BranchTargetBuffer::new(btb_entries, btb_assoc),
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> BranchPrediction {
        self.predictions += 1;
        BranchPrediction {
            taken: self.gshare.predict(pc),
            target: self.btb.lookup(pc),
        }
    }

    /// Trains the predictor with a resolved branch outcome without scoring a
    /// prediction (used when training happens at commit, on the committed path
    /// only, while predictions were made earlier at fetch).
    pub fn train(&mut self, pc: u64, taken: bool, target: u64) {
        self.gshare.update(pc, taken);
        if taken {
            self.btb.insert(pc, target);
        }
    }

    /// Updates predictor state with the resolved outcome and returns `true` if the
    /// earlier `prediction` was a misprediction (wrong direction, or taken with a
    /// wrong/unknown target).
    pub fn update(
        &mut self,
        pc: u64,
        taken: bool,
        target: u64,
        prediction: BranchPrediction,
    ) -> bool {
        self.gshare.update(pc, taken);
        if taken {
            self.btb.insert(pc, target);
        }
        let direction_wrong = prediction.taken != taken;
        let target_wrong = taken && prediction.target != Some(target);
        let mispredicted = direction_wrong || target_wrong;
        if mispredicted {
            self.mispredictions += 1;
        }
        mispredicted
    }

    /// Captures the predictor state for a warm checkpoint.
    pub fn state(&self) -> BranchPredictorState {
        BranchPredictorState {
            gshare: self.gshare.state(),
            btb: self.btb.state(),
            predictions: self.predictions,
            mispredictions: self.mispredictions,
        }
    }

    /// Restores a state captured with [`BranchPredictor::state`]. Fails when
    /// the predictor geometry differs.
    pub fn restore_state(&mut self, state: &BranchPredictorState) -> Result<(), String> {
        self.gshare.restore_state(&state.gshare)?;
        self.btb.restore_state(&state.btb)?;
        self.predictions = state.predictions;
        self.mispredictions = state.mispredictions;
        Ok(())
    }

    /// Number of predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions observed.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate over all predictions (0.0 when nothing was predicted).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut bp = BranchPredictor::new(1024, 64, 4);
        let mut wrong_late = 0;
        for i in 0..100 {
            let p = bp.predict(0x1000);
            if bp.update(0x1000, true, 0x2000, p) && i >= 50 {
                wrong_late += 1;
            }
        }
        // Once the global history warms up, an always-taken branch is always correct.
        assert_eq!(wrong_late, 0, "bias should be learned by the second half");
        assert_eq!(bp.predictions(), 100);
    }

    #[test]
    fn alternating_pattern_learned_via_history() {
        let mut bp = BranchPredictor::new(4096, 64, 4);
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let p = bp.predict(0x2000);
            let m = bp.update(0x2000, taken, 0x3000, p);
            if i >= 200 && m {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 40,
            "gshare should capture an alternating pattern, got {wrong_late}"
        );
    }

    #[test]
    fn unknown_target_counts_as_misprediction() {
        let mut bp = BranchPredictor::new(1024, 64, 4);
        // Force the direction predictor to predict taken, but with a cold BTB.
        for _ in 0..4 {
            let p = bp.predict(0x4000);
            bp.update(0x4000, true, 0x5000, p);
        }
        let p = bp.predict(0x4444);
        // Even if the direction guess happens to be taken, the target is unknown.
        if p.taken {
            assert!(bp.update(0x4444, true, 0x9000, p));
        }
    }

    #[test]
    fn misprediction_rate_bounds() {
        let bp = BranchPredictor::new(512, 64, 2);
        assert_eq!(bp.misprediction_rate(), 0.0);
    }
}
