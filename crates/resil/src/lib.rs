//! `smt-resil` — deterministic fault injection for the experiment engine.
//!
//! The resilient experiment engine in `smt-core` claims to survive panicking
//! cells, enforce deadlines, and retry transient failures. This crate is what
//! proves it: a [`FaultPlan`] is a serde-serializable chaos schedule that
//! fires panics, delays, and injectable failures at named engine injection
//! points ([`SITES`]).
//!
//! Everything is **deterministic**. Whether a fault fires is a pure function
//! of the plan and the `(site, cell index, attempt)` key the engine passes to
//! [`FaultInjector::check`] — never the wall clock, thread scheduling, or
//! `thread_rng` (the workspace `smt-analyze` determinism rule applies in
//! spirit here too). The plan-level seed drives an optional per-key
//! probability gate through a counter-mode hash, so "30% of cells fail"
//! plans still replay bit-for-bit and are invariant across engine thread
//! counts.
//!
//! # Example
//!
//! ```
//! use smt_resil::{FaultAction, FaultInjector, FaultPlan, FaultSpec};
//!
//! // Panic in cell 2 on its first attempt only, then recover.
//! let plan = FaultPlan {
//!     seed: 7,
//!     faults: vec![FaultSpec {
//!         site: "cell-start".to_string(),
//!         action: FaultAction::Panic,
//!         cell: Some(2),
//!         hits: Some(1),
//!         delay_ms: None,
//!         probability_pct: None,
//!         detail: None,
//!     }],
//! };
//! plan.validate().unwrap();
//! let injector = FaultInjector::new(plan);
//! assert!(injector.check("cell-start", 2, 0).is_some());
//! assert!(injector.check("cell-start", 2, 1).is_none()); // recovered
//! assert!(injector.check("cell-start", 3, 0).is_none()); // other cells clean
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use serde::{Deserialize, Serialize};
use smt_types::resilience::CellError;
use smt_types::SimError;

/// The engine injection points a fault can name.
///
/// * `cell-start` — fires before a cell attempt's body runs;
/// * `cell-finish` — fires after the body succeeded, before the result is
///   recorded (exercises late failure of an otherwise healthy cell).
pub const SITES: [&str; 2] = ["cell-start", "cell-finish"];

/// What an armed fault does when it fires.
///
/// Serializes as the short machine-readable [`FaultAction::name`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultAction {
    /// Panic with the fault's detail string (exercises `catch_unwind`
    /// quarantine).
    Panic,
    /// Sleep for [`FaultSpec::delay_ms`] wall-clock milliseconds (exercises
    /// the deadline watchdog; never changes simulation results).
    Delay,
    /// Return an [`CellError::injected`] failure without panicking
    /// (exercises the retry/backoff path).
    Fail,
}

impl FaultAction {
    /// Every action, in presentation order.
    pub const ALL: [FaultAction; 3] = [FaultAction::Panic, FaultAction::Delay, FaultAction::Fail];

    /// Short machine-readable name used in fault-plan files.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Delay => "delay",
            FaultAction::Fail => "fail",
        }
    }

    /// Parses a [`FaultAction::name`] string back into an action.
    pub fn from_name(name: &str) -> Option<FaultAction> {
        Self::ALL.into_iter().find(|a| a.name() == name)
    }
}

serde::named_enum_serde!(FaultAction, "fault action");

/// One scheduled fault: where it fires, what it does, and the deterministic
/// counters that arm it.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FaultSpec {
    /// Injection point name (one of [`SITES`]).
    pub site: String,
    /// What the fault does when it fires.
    pub action: FaultAction,
    /// Restrict the fault to one engine cell index; absent = every cell.
    pub cell: Option<u64>,
    /// Fire on the first `hits` attempts of each matching cell, then disarm
    /// (transient-then-recover); absent = fire on every attempt (permanent).
    pub hits: Option<u64>,
    /// Wall-clock sleep for [`FaultAction::Delay`], in milliseconds.
    pub delay_ms: Option<u64>,
    /// Fire only on this percentage of `(cell, attempt)` keys, selected by a
    /// counter-mode hash of the plan seed; absent = always fire. The
    /// selection is deterministic and thread-count invariant.
    pub probability_pct: Option<u64>,
    /// Label carried into the panic payload / injected error.
    pub detail: Option<String>,
}

impl FaultSpec {
    /// Whether this fault is guaranteed to stop firing once a cell has made
    /// `attempts` attempts — i.e. a retry budget of `attempts` always
    /// recovers from it.
    pub fn recovers_within(&self, attempts: u64) -> bool {
        self.hits.is_some_and(|h| h < attempts)
    }

    /// The label this fault stamps on panics and injected errors.
    fn label(&self, cell: u64, attempt: u64) -> String {
        match &self.detail {
            Some(d) => format!("{d} (site {}, cell {cell}, attempt {attempt})", self.site),
            None => format!(
                "injected {} at {} (cell {cell}, attempt {attempt})",
                self.action.name(),
                self.site
            ),
        }
    }
}

/// A deterministic chaos schedule: a seed plus the faults it arms.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FaultPlan {
    /// Seed for the per-key probability gate. Plans with identical faults
    /// but different seeds select different `(cell, attempt)` victims.
    pub seed: u64,
    /// The scheduled faults, checked in order; the first that fires wins.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan that never fires.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Checks the plan for unknown sites and missing action parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending fault.
    pub fn validate(&self) -> Result<(), SimError> {
        for (i, fault) in self.faults.iter().enumerate() {
            if !SITES.contains(&fault.site.as_str()) {
                return Err(SimError::invalid_config(format!(
                    "fault_plan.faults[{i}].site: unknown injection point `{}` (known: {})",
                    fault.site,
                    SITES.join(", ")
                )));
            }
            if fault.action == FaultAction::Delay && fault.delay_ms.is_none() {
                return Err(SimError::invalid_config(format!(
                    "fault_plan.faults[{i}]: delay faults require delay_ms"
                )));
            }
            if fault.hits == Some(0) {
                return Err(SimError::invalid_config(format!(
                    "fault_plan.faults[{i}].hits: zero hits never fires; omit the fault instead"
                )));
            }
            if fault.probability_pct.is_some_and(|p| p > 100) {
                return Err(SimError::invalid_config(format!(
                    "fault_plan.faults[{i}].probability_pct: must be 0..=100"
                )));
            }
        }
        Ok(())
    }

    /// Whether every fault in the plan is transient within a budget of
    /// `attempts` attempts per cell — i.e. a run retrying up to that budget
    /// is guaranteed to recover completely.
    pub fn recovers_within(&self, attempts: u64) -> bool {
        self.faults.iter().all(|f| f.recovers_within(attempts))
    }
}

/// The result of a fault check that fired: what to do, fully resolved.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArmedFault {
    /// The action to take.
    pub action: FaultAction,
    /// Sleep length for [`FaultAction::Delay`].
    pub delay_ms: u64,
    /// Label for the panic payload / injected error.
    pub detail: String,
}

impl ArmedFault {
    /// Executes the fault.
    ///
    /// # Errors
    ///
    /// [`FaultAction::Fail`] returns [`CellError::injected`];
    /// [`FaultAction::Delay`] sleeps and returns `Ok`.
    ///
    /// # Panics
    ///
    /// [`FaultAction::Panic`] panics with the fault's detail — callers run
    /// this under `catch_unwind` (that is the point).
    pub fn trigger(&self) -> Result<(), CellError> {
        match self.action {
            FaultAction::Panic => panic!("{}", self.detail),
            FaultAction::Delay => {
                std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
                Ok(())
            }
            FaultAction::Fail => Err(CellError::injected(self.detail.clone())),
        }
    }
}

/// Stateless fault oracle the engine consults at each injection point.
///
/// `check` is a pure function of the plan and its arguments, so injection is
/// reproducible across reruns and engine thread counts.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a validated plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Returns the first fault armed for `(site, cell, attempt)`, if any.
    pub fn check(&self, site: &str, cell: u64, attempt: u64) -> Option<ArmedFault> {
        self.plan
            .faults
            .iter()
            .enumerate()
            .find(|(index, f)| {
                f.site == site
                    && f.cell.is_none_or(|c| c == cell)
                    && f.hits.is_none_or(|h| attempt < h)
                    && f.probability_pct.is_none_or(|p| {
                        gate_hash(self.plan.seed, *index as u64, site, cell, attempt) % 100 < p
                    })
            })
            .map(|(_, f)| ArmedFault {
                action: f.action,
                delay_ms: f.delay_ms.unwrap_or(0),
                detail: f.label(cell, attempt),
            })
    }
}

/// Counter-mode hash for the probability gate: splitmix64 finalizer over the
/// seed and the full injection key. Deterministic by construction.
fn gate_hash(seed: u64, fault_index: u64, site: &str, cell: u64, attempt: u64) -> u64 {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in site.bytes() {
        x = (x ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    x ^= fault_index.wrapping_mul(0xa076_1d64_78bd_642f);
    x ^= cell.wrapping_mul(0xe703_7ed1_a0b4_28db);
    x ^= attempt.wrapping_mul(0x8ebc_6af0_9c88_c6e3);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_types::resilience::CellErrorKind;

    fn fault(site: &str, action: FaultAction) -> FaultSpec {
        FaultSpec {
            site: site.to_string(),
            action,
            cell: None,
            hits: None,
            delay_ms: None,
            probability_pct: None,
            detail: None,
        }
    }

    #[test]
    fn validate_rejects_unknown_site_and_bad_params() {
        let mut plan = FaultPlan::none(1);
        plan.faults.push(fault("warp-core", FaultAction::Panic));
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none(1);
        plan.faults.push(fault("cell-start", FaultAction::Delay));
        assert!(plan.validate().is_err(), "delay without delay_ms");

        let mut plan = FaultPlan::none(1);
        let mut f = fault("cell-start", FaultAction::Fail);
        f.hits = Some(0);
        plan.faults.push(f);
        assert!(plan.validate().is_err(), "zero hits");

        let mut plan = FaultPlan::none(1);
        let mut f = fault("cell-start", FaultAction::Fail);
        f.probability_pct = Some(150);
        plan.faults.push(f);
        assert!(plan.validate().is_err(), "probability over 100");

        let mut plan = FaultPlan::none(1);
        let mut f = fault("cell-finish", FaultAction::Delay);
        f.delay_ms = Some(5);
        plan.faults.push(f);
        plan.validate().unwrap();
    }

    #[test]
    fn transient_faults_disarm_after_their_hits() {
        let mut f = fault("cell-start", FaultAction::Fail);
        f.hits = Some(2);
        f.cell = Some(4);
        let injector = FaultInjector::new(FaultPlan {
            seed: 3,
            faults: vec![f],
        });
        assert!(injector.check("cell-start", 4, 0).is_some());
        assert!(injector.check("cell-start", 4, 1).is_some());
        assert!(injector.check("cell-start", 4, 2).is_none());
        assert!(injector.check("cell-start", 5, 0).is_none());
        assert!(injector.check("cell-finish", 4, 0).is_none());
        assert!(injector.plan().recovers_within(3));
        assert!(!injector.plan().recovers_within(2));
    }

    #[test]
    fn probability_gate_is_deterministic_and_seeded() {
        let mut f = fault("cell-start", FaultAction::Fail);
        f.probability_pct = Some(40);
        let a = FaultInjector::new(FaultPlan {
            seed: 11,
            faults: vec![f.clone()],
        });
        let b = FaultInjector::new(FaultPlan {
            seed: 11,
            faults: vec![f.clone()],
        });
        let c = FaultInjector::new(FaultPlan {
            seed: 12,
            faults: vec![f],
        });
        let fire = |inj: &FaultInjector| -> Vec<bool> {
            (0..64)
                .map(|cell| inj.check("cell-start", cell, 0).is_some())
                .collect()
        };
        assert_eq!(fire(&a), fire(&b), "same seed, same victims");
        assert_ne!(fire(&a), fire(&c), "different seed, different victims");
        let hits = fire(&a).iter().filter(|&&h| h).count();
        assert!(hits > 5 && hits < 60, "40% gate fired {hits}/64 times");
    }

    #[test]
    fn trigger_executes_the_armed_action() {
        let armed = ArmedFault {
            action: FaultAction::Fail,
            delay_ms: 0,
            detail: "injected".to_string(),
        };
        let err = armed.trigger().unwrap_err();
        assert_eq!(err.kind, CellErrorKind::InjectedFault);

        let armed = ArmedFault {
            action: FaultAction::Delay,
            delay_ms: 1,
            detail: String::new(),
        };
        armed.trigger().unwrap();

        let armed = ArmedFault {
            action: FaultAction::Panic,
            delay_ms: 0,
            detail: "kaboom".to_string(),
        };
        let payload = std::panic::catch_unwind(|| armed.trigger()).unwrap_err();
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.contains("kaboom"), "payload: {text}");
    }

    #[test]
    fn plan_round_trips_through_toml() {
        let plan = FaultPlan {
            seed: 99,
            faults: vec![
                FaultSpec {
                    site: "cell-start".to_string(),
                    action: FaultAction::Panic,
                    cell: Some(0),
                    hits: Some(1),
                    delay_ms: None,
                    probability_pct: None,
                    detail: Some("chaos".to_string()),
                },
                FaultSpec {
                    site: "cell-finish".to_string(),
                    action: FaultAction::Delay,
                    cell: None,
                    hits: None,
                    delay_ms: Some(25),
                    probability_pct: Some(50),
                    detail: None,
                },
            ],
        };
        let text = toml::to_string(&plan).unwrap();
        let back: FaultPlan = toml::from_str(&text).unwrap();
        assert_eq!(back, plan);
        assert!(toml::from_str::<FaultPlan>("seed = 1\nwarp = true\n").is_err());
    }
}
