//! The chip-shared memory levels: last-level cache, LLC MSHRs, and the
//! off-chip memory bus.
//!
//! On the paper's single-core machine these structures sit at the bottom of
//! [`crate::hierarchy::MemoryHierarchy`] and are private to the one core. On
//! a chip ([`smt_types::ChipConfig`]) every core's private levels
//! ([`crate::hierarchy::CoreMemory`]) miss into one [`SharedLlc`]: cores
//! compete for LLC capacity, per-`(core, thread)` MSHR slots bound each
//! requester's outstanding misses, and the [`MemoryBus`] charges queueing
//! delay per in-flight line transfer.
//!
//! # Arbitration disciplines
//!
//! The shared level supports two disciplines:
//!
//! * **Legacy (single requester domain)** — LRU is stamped with an internal
//!   access tick and fills take effect immediately, exactly the behaviour of
//!   the original fused hierarchy. Used by the single-core machine (and
//!   one-core chips) so its results stay bit-for-bit identical.
//! * **Chip arbitration** — every access of one chip cycle carries the same
//!   LRU stamp (the cycle number), fills are staged and applied once per
//!   cycle in a canonical order, and bus congestion is frozen at the start of
//!   the cycle. Together with per-core-disjoint physical address spaces this
//!   makes chip results independent of the order cores are stepped in within
//!   a cycle.
//!
//! # The view / stage / merge split
//!
//! The chip discipline is made explicit in the type system so that cores can
//! step in parallel without sharing mutable state:
//!
//! * [`SharedLlcView`] is a **frozen read view** of the shared level —
//!   `&self`-only queries against cycle-start state: tag probes, the frozen
//!   bus congestion, and MSHR availability snapshots;
//! * [`CoreStage`] is a **per-core stage buffer** owned by one core for the
//!   duration of a cycle: staged fills, MSHR allocations, bus enqueues, LRU
//!   stamp touches, and hit/miss tallies;
//! * [`StagedShared`] pairs the two into a [`SharedLevel`] the pipeline
//!   steps against; [`SharedLlc::merge_stage`] folds each stage back in
//!   canonical core order before [`SharedLlc::end_cycle`] applies the fills.
//!
//! Because every intra-cycle write either carries the idempotent cycle stamp
//! or is deferred to the merge, the staged path is bit-for-bit the serial
//! interleaved one — which is exactly what lets a worker pool step cores of
//! one cycle concurrently.

use smt_types::{ChipConfig, SmtConfig};

use crate::cache::SetAssocCache;
use serde::{Deserialize, Serialize};

use crate::cache::CacheState;
use crate::mshr::{MshrFile, MshrOutcome, MshrStage};

/// The interface a core's private memory hierarchy steps against: either the
/// shared level itself ([`SharedLlc`], the serial discipline) or a frozen
/// view plus per-core stage buffer ([`StagedShared`], the staged chip
/// discipline). Static dispatch keeps the hot path monomorphized.
pub trait SharedLevel {
    /// Looks up `addr` in the shared LLC, returning `true` on a hit.
    fn access(&mut self, addr: u64) -> bool;
    /// Installs (or refreshes) the line containing `addr`.
    fn fill(&mut self, addr: u64);
    /// Hit latency of the shared LLC.
    fn latency(&self) -> u64;
    /// Off-chip main-memory latency (excluding bus queueing).
    fn memory_latency(&self) -> u64;
    /// Bus queueing delay a transfer issued this cycle pays.
    fn queue_delay(&self) -> u64;
    /// Presents an off-chip miss to the LLC MSHR file.
    fn mshr_request(
        &mut self,
        requester: usize,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome;
    /// Records a newly issued off-chip transfer completing at `completion`.
    fn register_transfer(&mut self, completion: u64);
}

/// The shared off-chip memory bus: each in-flight line transfer adds one bus
/// occupancy of queueing delay to newly issued transfers.
///
/// The congestion seen by a request is the number of transfers in flight at
/// the *start* of the current cycle, so same-cycle requests from different
/// cores observe the same congestion no matter which core is serviced first.
#[derive(Clone, Debug)]
pub struct MemoryBus {
    /// Cycles one line transfer occupies the bus (0 = unlimited bandwidth).
    transfer_cycles: u64,
    /// Completion cycles of in-flight transfers.
    inflight: Vec<u64>,
    /// Number of transfers in flight at the start of the current cycle.
    frozen: u64,
}

impl MemoryBus {
    /// Builds the bus for `config` with the chip's cache-line size.
    pub fn new(config: smt_types::BusConfig, line_bytes: u64) -> Self {
        MemoryBus {
            transfer_cycles: config.transfer_cycles(line_bytes),
            inflight: Vec::new(),
            frozen: 0,
        }
    }

    /// Whether the bus models any contention.
    pub fn is_unlimited(&self) -> bool {
        self.transfer_cycles == 0
    }

    /// Starts a new cycle: retires finished transfers and freezes the
    /// congestion count every request of this cycle will observe.
    pub fn begin_cycle(&mut self, cycle: u64) {
        if self.transfer_cycles == 0 {
            return;
        }
        self.inflight.retain(|&done| done > cycle);
        self.frozen = self.inflight.len() as u64;
    }

    /// Queueing delay (in cycles) a transfer issued this cycle pays.
    pub fn queue_delay(&self) -> u64 {
        self.frozen * self.transfer_cycles
    }

    /// Records a newly issued transfer completing at `completion`.
    pub fn register(&mut self, completion: u64) {
        if self.transfer_cycles > 0 {
            self.inflight.push(completion);
        }
    }

    /// Number of transfers currently tracked as in flight.
    pub fn inflight_transfers(&self) -> usize {
        self.inflight.len()
    }

    /// Clears all in-flight state.
    pub fn reset(&mut self) {
        self.inflight.clear();
        self.frozen = 0;
    }
}

/// Serializable snapshot of a [`SharedLlc`] (for warm checkpoints).
///
/// Only the warm (cache-content) state is captured: checkpoints are taken at
/// quiescent boundaries where no misses are outstanding, no bus transfers are
/// in flight, and no fills are staged, so the transient timing state is
/// structurally empty and restores to empty.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SharedLlcState {
    /// LLC tag-store contents.
    pub llc: CacheState,
    /// Current cycle stamp (chip arbitration only; zero otherwise).
    pub cycle: u64,
}

/// The shared last-level cache, its MSHR file, and the memory bus.
#[derive(Clone, Debug)]
pub struct SharedLlc {
    llc: SetAssocCache,
    mshrs: MshrFile,
    bus: MemoryBus,
    memory_latency: u64,
    line_bytes: u64,
    /// `true`: cycle-stamped, staged-fill chip arbitration; `false`: the
    /// legacy synchronous single-core discipline.
    chip_arbitration: bool,
    /// Current cycle (chip arbitration only).
    cycle: u64,
    /// Line ids staged for fill at the end of the current cycle.
    staged: Vec<u64>,
}

impl SharedLlc {
    /// The shared level of the paper's single-core machine: the `config.l3`
    /// cache, per-thread MSHRs, an uncontended bus, and the legacy
    /// synchronous discipline.
    pub fn single_core(config: &SmtConfig) -> Self {
        SharedLlc {
            llc: SetAssocCache::new(&config.l3),
            mshrs: MshrFile::new(config.num_threads, config.max_outstanding_misses as usize),
            bus: MemoryBus::new(
                smt_types::BusConfig::unlimited(),
                config.l1d.line_bytes as u64,
            ),
            memory_latency: config.memory_latency,
            line_bytes: config.l1d.line_bytes as u64,
            chip_arbitration: false,
            cycle: 0,
            staged: Vec::new(),
        }
    }

    /// The shared level of a chip: the `shared_llc` cache, one MSHR slot set
    /// per `(core, thread)` requester, the configured bus, and (for
    /// multi-core chips) the order-invariant chip arbitration discipline.
    ///
    /// A one-core chip keeps the legacy discipline so that `num_cores == 1`
    /// is bit-for-bit the single-core machine.
    pub fn for_chip(chip: &ChipConfig) -> Self {
        SharedLlc {
            llc: SetAssocCache::new(&chip.shared_llc),
            mshrs: MshrFile::new(
                chip.total_threads(),
                chip.core.max_outstanding_misses as usize,
            ),
            bus: MemoryBus::new(chip.bus, chip.core.l1d.line_bytes as u64),
            memory_latency: chip.core.memory_latency,
            line_bytes: chip.core.l1d.line_bytes as u64,
            chip_arbitration: chip.num_cores > 1,
            cycle: 0,
            staged: Vec::new(),
        }
    }

    /// Hit latency of the shared LLC.
    pub fn latency(&self) -> u64 {
        self.llc.latency()
    }

    /// Off-chip main-memory latency (excluding bus queueing).
    pub fn memory_latency(&self) -> u64 {
        self.memory_latency
    }

    /// Whether the chip arbitration discipline is active.
    pub fn chip_arbitration(&self) -> bool {
        self.chip_arbitration
    }

    /// Starts a chip cycle: freezes bus congestion and sets the LRU stamp.
    /// The single-core pipeline never calls this (its discipline has no
    /// per-cycle shared state).
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.bus.begin_cycle(cycle);
    }

    /// Ends a chip cycle: applies the staged fills in canonical (sorted line
    /// id) order, which makes the resulting LLC state a pure function of the
    /// *set* of lines filled this cycle rather than of core stepping order.
    pub fn end_cycle(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let stamp = self.cycle + 1;
        let mut staged = std::mem::take(&mut self.staged);
        staged.sort_unstable();
        staged.dedup();
        for &line in &staged {
            self.llc.fill_stamped(line * self.line_bytes, stamp);
        }
        staged.clear();
        self.staged = staged;
    }

    /// Looks up `addr` in the shared LLC, returning `true` on a hit. Lines
    /// staged for fill this cycle count as present — and as hits in the
    /// counters — since they can only belong to the requesting core
    /// (physical address spaces are disjoint per core). A line is never both
    /// installed and staged, so the staged check can run first.
    pub fn access(&mut self, addr: u64) -> bool {
        if !self.chip_arbitration {
            return self.llc.access(addr);
        }
        if self.staged.contains(&(addr / self.line_bytes)) {
            self.llc.record_external_hit();
            return true;
        }
        self.llc.access_stamped(addr, self.cycle + 1)
    }

    /// Installs (or refreshes) the line containing `addr`: immediately under
    /// the legacy discipline, staged until [`SharedLlc::end_cycle`] under
    /// chip arbitration.
    pub fn fill(&mut self, addr: u64) {
        if !self.chip_arbitration {
            self.llc.fill(addr);
            return;
        }
        if self.llc.probe(addr) {
            // Present: refresh the stamp without staging a duplicate install.
            self.llc.fill_stamped(addr, self.cycle + 1);
            return;
        }
        let line = addr / self.line_bytes;
        if !self.staged.contains(&line) {
            self.staged.push(line);
        }
    }

    /// Presents an off-chip miss to the LLC MSHR file (see
    /// [`MshrFile::request`]).
    pub fn mshr_request(
        &mut self,
        requester: usize,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome {
        self.mshrs.request(requester, line_addr, now, completion)
    }

    /// Bus queueing delay a transfer issued this cycle pays.
    pub fn queue_delay(&self) -> u64 {
        self.bus.queue_delay()
    }

    /// Records a newly issued off-chip transfer completing at `completion`.
    pub fn register_transfer(&mut self, completion: u64) {
        self.bus.register(completion);
    }

    /// LLC hit rate so far.
    pub fn llc_hit_rate(&self) -> f64 {
        self.llc.hit_rate()
    }

    /// Whether the transient timing state is structurally empty: no MSHR
    /// entries, no in-flight bus transfers, no staged fills. Checkpoints may
    /// only be captured when this holds.
    pub fn is_quiescent(&self) -> bool {
        self.mshrs.total_entries() == 0
            && self.bus.inflight_transfers() == 0
            && self.staged.is_empty()
    }

    /// Captures the warm state for a checkpoint. Fails unless the level is
    /// quiescent (see [`SharedLlc::is_quiescent`]).
    pub fn state(&self) -> Result<SharedLlcState, String> {
        if !self.is_quiescent() {
            return Err(
                "shared LLC has outstanding misses, bus transfers, or staged fills; \
                 checkpoints are only legal at quiescent boundaries"
                    .to_string(),
            );
        }
        Ok(SharedLlcState {
            llc: self.llc.state(),
            cycle: self.cycle,
        })
    }

    /// Restores a state captured with [`SharedLlc::state`]; the transient
    /// timing state (MSHRs, bus, staged fills) is reset to empty.
    pub fn restore_state(&mut self, state: &SharedLlcState) -> Result<(), String> {
        self.llc.restore_state(&state.llc)?;
        self.cycle = state.cycle;
        self.mshrs.reset();
        self.bus.reset();
        self.staged.clear();
        Ok(())
    }

    /// Clears all LLC, MSHR, bus and staging state.
    pub fn reset(&mut self) {
        self.llc.flush_all();
        self.mshrs.reset();
        self.bus.reset();
        self.staged.clear();
        self.cycle = 0;
    }

    /// A frozen read view of the cycle-start state, for staged stepping.
    pub fn view(&self) -> SharedLlcView<'_> {
        SharedLlcView { shared: self }
    }

    /// Folds one core's stage buffer into the shared level at the end of a
    /// cycle. Call once per core in canonical (ascending core id) order,
    /// then [`SharedLlc::end_cycle`] to apply the combined staged fills.
    ///
    /// Merge order within a cycle is immaterial to the final state: stamp
    /// touches all carry the same cycle stamp, MSHR slots are per-requester,
    /// counters commute, and bus observables are order-independent — but the
    /// canonical order makes the serial and pooled schedules produce not
    /// just equivalent, byte-identical internal state.
    pub fn merge_stage(&mut self, stage: &mut CoreStage) {
        let stamp = self.cycle + 1;
        // Stamp touches must land before end_cycle installs any fill: the
        // serial discipline refreshes stamps during the cycle, and victim
        // selection at the fill point sees those refreshed stamps.
        for &addr in &stage.touched {
            debug_assert!(self.llc.probe(addr), "touched line vanished mid-cycle");
            self.llc.fill_stamped(addr, stamp);
        }
        stage.touched.clear();
        self.llc.add_lookup_counts(stage.hits, stage.misses);
        stage.hits = 0;
        stage.misses = 0;
        for (slot, mshr_stage) in stage.mshr.iter_mut().enumerate() {
            self.mshrs
                .apply_stage(stage.requester_base + slot, mshr_stage, self.cycle);
        }
        for &completion in &stage.transfers {
            self.bus.register(completion);
        }
        stage.transfers.clear();
        self.staged.append(&mut stage.staged_lines);
    }
}

impl SharedLevel for SharedLlc {
    fn access(&mut self, addr: u64) -> bool {
        SharedLlc::access(self, addr)
    }

    fn fill(&mut self, addr: u64) {
        SharedLlc::fill(self, addr)
    }

    fn latency(&self) -> u64 {
        SharedLlc::latency(self)
    }

    fn memory_latency(&self) -> u64 {
        SharedLlc::memory_latency(self)
    }

    fn queue_delay(&self) -> u64 {
        SharedLlc::queue_delay(self)
    }

    fn mshr_request(
        &mut self,
        requester: usize,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome {
        SharedLlc::mshr_request(self, requester, line_addr, now, completion)
    }

    fn register_transfer(&mut self, completion: u64) {
        SharedLlc::register_transfer(self, completion)
    }
}

/// A frozen, `&self`-only read view of a [`SharedLlc`] at cycle start.
///
/// Every query is answered from state that cannot change while cores step:
/// tag presence (fills are staged), bus congestion (frozen at
/// [`SharedLlc::begin_cycle`]), and the MSHR entry maps (allocations are
/// staged per core). Many views may coexist, one per worker thread.
#[derive(Clone, Copy)]
pub struct SharedLlcView<'a> {
    shared: &'a SharedLlc,
}

impl SharedLlcView<'_> {
    /// Whether the line containing `addr` is present, without touching LRU
    /// state or counters.
    pub fn probe(&self, addr: u64) -> bool {
        self.shared.llc.probe(addr)
    }

    /// Hit latency of the shared LLC.
    pub fn latency(&self) -> u64 {
        self.shared.llc.latency()
    }

    /// Off-chip main-memory latency (excluding bus queueing).
    pub fn memory_latency(&self) -> u64 {
        self.shared.memory_latency
    }

    /// Bus queueing delay, frozen at cycle start.
    pub fn queue_delay(&self) -> u64 {
        self.shared.bus.queue_delay()
    }

    /// Cache-line id of `addr`.
    fn line_of(&self, addr: u64) -> u64 {
        addr / self.shared.line_bytes
    }
}

/// One core's staged mutations of the shared level within one chip cycle.
///
/// Owned exclusively by its core while the cycle runs (no synchronization
/// needed), drained by [`SharedLlc::merge_stage`] at the end of the cycle.
/// All buffers retain capacity across cycles, keeping the steady-state cycle
/// loop allocation-free.
#[derive(Debug)]
pub struct CoreStage {
    /// First chip-wide requester id of the owning core
    /// (`core_id * threads_per_core`).
    requester_base: usize,
    /// Staged MSHR mutations, one slot per hardware thread of the core.
    mshr: Vec<MshrStage>,
    /// Line ids newly staged for fill this cycle.
    staged_lines: Vec<u64>,
    /// Addresses whose LRU stamp must refresh at the merge (hits on present
    /// lines, and fills of already-present lines).
    touched: Vec<u64>,
    /// LLC lookup tallies of this cycle, folded into the cache counters at
    /// the merge.
    hits: u64,
    misses: u64,
    /// Completion cycles of off-chip transfers issued this cycle.
    transfers: Vec<u64>,
}

impl CoreStage {
    /// Creates the stage buffer for the core whose first chip-wide requester
    /// id is `requester_base` and which hosts `threads` hardware threads.
    pub fn new(requester_base: usize, threads: usize) -> Self {
        CoreStage {
            requester_base,
            mshr: (0..threads).map(|_| MshrStage::default()).collect(),
            staged_lines: Vec::new(),
            touched: Vec::new(),
            hits: 0,
            misses: 0,
            transfers: Vec::new(),
        }
    }

    /// Whether the stage holds no pending mutations (always true between
    /// cycles: the merge drains every buffer).
    pub fn is_empty(&self) -> bool {
        self.staged_lines.is_empty()
            && self.touched.is_empty()
            && self.transfers.is_empty()
            && self.hits == 0
            && self.misses == 0
            && self.mshr.iter().all(MshrStage::is_empty)
    }
}

/// A frozen view plus one core's stage buffer: the [`SharedLevel`] a core
/// steps against under the staged chip discipline. Reads are answered from
/// the view (and the core's own staged fills), writes land in the stage.
pub struct StagedShared<'a> {
    view: SharedLlcView<'a>,
    stage: &'a mut CoreStage,
}

impl<'a> StagedShared<'a> {
    /// Pairs a frozen view with the stepping core's stage buffer.
    pub fn new(view: SharedLlcView<'a>, stage: &'a mut CoreStage) -> Self {
        StagedShared { view, stage }
    }
}

impl SharedLevel for StagedShared<'_> {
    fn access(&mut self, addr: u64) -> bool {
        // Own staged fills read as present, exactly as the serial chip
        // discipline's global staged check (address spaces are per-core
        // disjoint, so only the owner can ever match its staged lines).
        if self.stage.staged_lines.contains(&self.view.line_of(addr)) {
            self.stage.hits += 1;
            return true;
        }
        if self.view.probe(addr) {
            // The serial path refreshes the LRU stamp here; defer the
            // (idempotent, same-stamp) refresh to the merge.
            self.stage.touched.push(addr);
            self.stage.hits += 1;
            return true;
        }
        self.stage.misses += 1;
        false
    }

    fn fill(&mut self, addr: u64) {
        if self.view.probe(addr) {
            // Present: a stamp refresh, never a duplicate install.
            self.stage.touched.push(addr);
            return;
        }
        let line = self.view.line_of(addr);
        if !self.stage.staged_lines.contains(&line) {
            self.stage.staged_lines.push(line);
        }
    }

    fn latency(&self) -> u64 {
        self.view.latency()
    }

    fn memory_latency(&self) -> u64 {
        self.view.memory_latency()
    }

    fn queue_delay(&self) -> u64 {
        self.view.queue_delay()
    }

    fn mshr_request(
        &mut self,
        requester: usize,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome {
        let slot = requester - self.stage.requester_base;
        self.view.shared.mshrs.request_frozen(
            requester,
            &mut self.stage.mshr[slot],
            line_addr,
            now,
            completion,
        )
    }

    fn register_transfer(&mut self, completion: u64) {
        self.stage.transfers.push(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_types::BusConfig;

    #[test]
    fn unlimited_bus_is_free() {
        let mut bus = MemoryBus::new(BusConfig::unlimited(), 64);
        assert!(bus.is_unlimited());
        bus.begin_cycle(0);
        assert_eq!(bus.queue_delay(), 0);
        bus.register(400);
        assert_eq!(bus.inflight_transfers(), 0);
    }

    #[test]
    fn contended_bus_charges_per_inflight_transfer() {
        let mut bus = MemoryBus::new(BusConfig::contended(), 64);
        bus.begin_cycle(0);
        assert_eq!(bus.queue_delay(), 0);
        bus.register(350);
        bus.register(360);
        // Congestion is frozen at cycle start: still free this cycle.
        assert_eq!(bus.queue_delay(), 0);
        bus.begin_cycle(1);
        assert_eq!(bus.queue_delay(), 2 * 4);
        // Finished transfers retire.
        bus.begin_cycle(355);
        assert_eq!(bus.queue_delay(), 4);
        bus.begin_cycle(361);
        assert_eq!(bus.queue_delay(), 0);
    }

    #[test]
    fn legacy_discipline_matches_plain_cache() {
        let config = SmtConfig::baseline(2);
        let mut shared = SharedLlc::single_core(&config);
        assert!(!shared.chip_arbitration());
        assert!(!shared.access(0x40));
        shared.fill(0x40);
        assert!(shared.access(0x40));
        assert_eq!(shared.latency(), config.l3.latency);
        assert_eq!(shared.memory_latency(), config.memory_latency);
    }

    #[test]
    fn chip_arbitration_stages_fills_until_end_of_cycle() {
        let chip = ChipConfig::baseline(2, 2);
        let mut shared = SharedLlc::for_chip(&chip);
        assert!(shared.chip_arbitration());
        shared.begin_cycle(10);
        assert!(!shared.access(0x40));
        shared.fill(0x40);
        // Staged lines read as present within the cycle (and count as hits
        // in the LLC's counters)...
        let rate_before = shared.llc_hit_rate();
        assert!(shared.access(0x40));
        assert!(shared.llc_hit_rate() > rate_before);
        shared.end_cycle();
        // ...and are installed for later cycles.
        shared.begin_cycle(11);
        assert!(shared.access(0x44));
        shared.reset();
        shared.begin_cycle(12);
        assert!(!shared.access(0x40));
    }

    #[test]
    fn chip_fills_are_order_invariant_within_a_cycle() {
        let chip = ChipConfig::baseline(2, 2);
        let mut a = SharedLlc::for_chip(&chip);
        let mut b = SharedLlc::for_chip(&chip);
        // Same set of same-cycle fills, opposite arrival order.
        let lines = [0x1_0000_0000_0040u64, 0x40, 0x2_0000_0000_0040];
        a.begin_cycle(5);
        b.begin_cycle(5);
        for &l in &lines {
            a.fill(l);
        }
        for &l in lines.iter().rev() {
            b.fill(l);
        }
        a.end_cycle();
        b.end_cycle();
        a.begin_cycle(6);
        b.begin_cycle(6);
        for &l in &lines {
            assert_eq!(a.access(l), b.access(l), "line {l:#x}");
            assert!(a.access(l));
        }
    }

    #[test]
    fn one_core_chip_uses_legacy_discipline() {
        let chip = ChipConfig::baseline(1, 2);
        let shared = SharedLlc::for_chip(&chip);
        assert!(!shared.chip_arbitration());
        assert!(shared.bus.is_unlimited());
    }

    /// Drives the same access/fill/MSHR/bus sequence through the serial
    /// interleaved chip discipline and through the view+stage+merge split;
    /// every intra-cycle outcome and all cycle-end observables must agree.
    #[test]
    fn staged_discipline_matches_serial_chip_discipline() {
        let chip = ChipConfig::baseline(2, 2);
        let mut serial = SharedLlc::for_chip(&chip);
        let mut staged = SharedLlc::for_chip(&chip);
        let mut stages = [CoreStage::new(0, 2), CoreStage::new(2, 2)];
        let mut probes: Vec<u64> = Vec::new();
        for cycle in 0..200u64 {
            serial.begin_cycle(cycle);
            staged.begin_cycle(cycle);
            assert_eq!(serial.queue_delay(), staged.queue_delay());
            for (core, stage) in stages.iter_mut().enumerate() {
                // Per-core-disjoint physical spaces, with reuse so hits,
                // stamp refreshes, merges and capacity pressure all occur.
                let space = (core as u64) << 44;
                for k in 0..6u64 {
                    let addr = space + ((cycle * 13 + k * 29) % 96) * 64;
                    probes.push(addr);
                    let hit_serial = serial.access(addr);
                    let hit_staged = StagedShared::new(staged.view(), stage).access(addr);
                    assert_eq!(hit_serial, hit_staged, "cycle {cycle} addr {addr:#x}");
                    if hit_serial {
                        continue;
                    }
                    let requester = core * 2 + (k as usize % 2);
                    let completion = cycle + 300 + serial.queue_delay();
                    let out_serial = serial.mshr_request(requester, addr / 64, cycle, completion);
                    let out_staged = StagedShared::new(staged.view(), stage).mshr_request(
                        requester,
                        addr / 64,
                        cycle,
                        completion,
                    );
                    assert_eq!(out_serial, out_staged, "cycle {cycle} addr {addr:#x}");
                    if out_serial == MshrOutcome::Allocated {
                        serial.register_transfer(completion);
                        StagedShared::new(staged.view(), stage).register_transfer(completion);
                    }
                    serial.fill(addr);
                    StagedShared::new(staged.view(), stage).fill(addr);
                }
            }
            for stage in &mut stages {
                staged.merge_stage(stage);
                assert!(stage.is_empty(), "merge must drain the stage");
            }
            serial.end_cycle();
            staged.end_cycle();
        }
        assert_eq!(serial.llc_hit_rate(), staged.llc_hit_rate());
        assert_eq!(
            serial.bus.inflight_transfers(),
            staged.bus.inflight_transfers()
        );
        for addr in probes {
            assert_eq!(serial.view().probe(addr), staged.view().probe(addr));
        }
    }
}
