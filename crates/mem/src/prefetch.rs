//! Stream-buffer hardware prefetcher with a PC-indexed stride predictor.
//!
//! The baseline processor of the paper (Table IV) includes "8 stream buffers, 8
//! entries each, with a stride predictor" allocated using the confidence scheme of
//! Sherwood et al. (2000). This module reproduces that design:
//!
//! * a 2K-entry, load-PC indexed stride table records the last address and stride
//!   of each static load and a saturating confidence counter;
//! * once a load's stride has been confirmed `confidence_threshold` times, an L2/L3
//!   miss by that load allocates a stream buffer which prefetches the next
//!   `entries_per_buffer` lines along the stride;
//! * later misses first probe the stream buffers; a hit returns the (possibly
//!   partial) remaining latency of the in-flight prefetch instead of a full memory
//!   access.

use serde::{Deserialize, Serialize};
use smt_types::config::PrefetcherConfig;
use smt_types::ThreadId;

/// Serializable snapshot of one stride-table entry (for warm checkpoints).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct StrideEntryState {
    /// Whether the entry is trained.
    pub valid: bool,
    /// Load PC tag.
    pub tag: u64,
    /// Last observed address.
    pub last_addr: u64,
    /// Learned stride in bytes.
    pub stride: i64,
    /// Saturating confidence counter.
    pub confidence: u8,
}

/// Serializable snapshot of one stream buffer (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct StreamBufferState {
    /// Whether the buffer tracks a stream.
    pub valid: bool,
    /// Owning thread index.
    pub thread: u64,
    /// `(line, available_at)` per held or in-flight line.
    pub lines: Vec<(u64, u64)>,
    /// Allocation stamp for LRU replacement.
    pub last_allocated: u64,
}

/// Serializable snapshot of a [`StreamBufferPrefetcher`] (for warm
/// checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PrefetcherState {
    /// Stride-table contents.
    pub stride_table: Vec<StrideEntryState>,
    /// Stream-buffer contents.
    pub buffers: Vec<StreamBufferState>,
    /// Allocation clock.
    pub tick: u64,
    /// Prefetches issued so far.
    pub issued: u64,
    /// Prefetch hits so far.
    pub hits: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    valid: bool,
    tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

#[derive(Clone, Debug)]
struct StreamBuffer {
    valid: bool,
    thread: usize,
    /// Line addresses held (or being fetched) by this buffer, with the cycle at
    /// which each becomes available.
    lines: Vec<(u64, u64)>,
    last_allocated: u64,
}

/// Result of probing the prefetcher on a demand miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetchHit {
    /// Cycle at which the prefetched line is available in the stream buffer.
    pub available_at: u64,
}

/// Stream-buffer prefetcher (Sherwood et al. style), shared by all threads but with
/// per-thread buffer ownership so one thread cannot silently consume another's
/// prefetched lines.
#[derive(Clone, Debug)]
pub struct StreamBufferPrefetcher {
    config: PrefetcherConfig,
    stride_table: Vec<StrideEntry>,
    buffers: Vec<StreamBuffer>,
    line_bytes: u64,
    memory_latency: u64,
    tick: u64,
    issued: u64,
    hits: u64,
}

impl StreamBufferPrefetcher {
    /// Creates a prefetcher.
    ///
    /// `line_bytes` is the cache-line size prefetches operate on and
    /// `memory_latency` the cycles needed to bring a prefetched line on chip.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero buffers, entries, or stride-table
    /// entries while enabled.
    pub fn new(config: PrefetcherConfig, line_bytes: u64, memory_latency: u64) -> Self {
        if config.enabled {
            assert!(config.stream_buffers > 0, "prefetcher needs stream buffers");
            assert!(config.entries_per_buffer > 0, "stream buffers need entries");
            assert!(
                config.stride_table_entries > 0,
                "stride table needs entries"
            );
        }
        StreamBufferPrefetcher {
            stride_table: vec![StrideEntry::default(); config.stride_table_entries.max(1) as usize],
            buffers: (0..config.stream_buffers.max(1))
                .map(|_| StreamBuffer {
                    valid: false,
                    thread: 0,
                    lines: Vec::new(),
                    last_allocated: 0,
                })
                .collect(),
            config,
            line_bytes,
            memory_latency,
            tick: 0,
            issued: 0,
            hits: 0,
        }
    }

    /// Whether prefetching is enabled.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Total prefetch requests issued.
    pub fn prefetches_issued(&self) -> u64 {
        self.issued
    }

    /// Total demand misses satisfied (fully or partially) from a stream buffer.
    pub fn prefetch_hits(&self) -> u64 {
        self.hits
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    fn stride_slot(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.stride_table.len()
    }

    /// Records the outcome of an executed load so the stride predictor can learn.
    /// Call this for *every* load, hit or miss.
    pub fn train(&mut self, _thread: ThreadId, pc: u64, addr: u64) {
        if !self.config.enabled {
            return;
        }
        let slot = self.stride_slot(pc);
        let entry = &mut self.stride_table[slot];
        if !entry.valid || entry.tag != pc {
            *entry = StrideEntry {
                valid: true,
                tag: pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let stride = addr as i64 - entry.last_addr as i64;
        if stride != 0 && stride == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1).min(7);
        } else {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.last_addr = addr;
    }

    /// Probes the stream buffers for the line containing `addr`. On a hit the line
    /// is consumed from the buffer and the buffer prefetches one further line down
    /// its stream (the classic FIFO stream-buffer behaviour).
    pub fn probe(&mut self, thread: ThreadId, addr: u64, now: u64) -> Option<PrefetchHit> {
        if !self.config.enabled {
            return None;
        }
        let line = self.line_of(addr);
        let line_bytes = self.line_bytes;
        let memory_latency = self.memory_latency;
        for buf in &mut self.buffers {
            if !buf.valid || buf.thread != thread.index() {
                continue;
            }
            if let Some(pos) = buf.lines.iter().position(|&(l, _)| l == line) {
                let (_, avail) = buf.lines.remove(pos);
                self.hits += 1;
                // Extend the stream by one line past the deepest entry.
                if let Some(&(deepest, _)) = buf.lines.iter().max_by_key(|&&(l, _)| l) {
                    let stride_lines = 1u64;
                    let next = deepest + stride_lines;
                    buf.lines.push((next, now + memory_latency));
                    self.issued += 1;
                } else {
                    let next = line + 1;
                    buf.lines.push((next, now + memory_latency));
                    self.issued += 1;
                }
                let _ = line_bytes;
                return Some(PrefetchHit {
                    available_at: avail.max(now),
                });
            }
        }
        None
    }

    /// Notifies the prefetcher of a demand miss that is going to memory. If the
    /// missing load has a confident stride, a stream buffer is allocated (replacing
    /// the least recently allocated one) and `entries_per_buffer` lines ahead of the
    /// miss are prefetched.
    pub fn on_demand_miss(&mut self, thread: ThreadId, pc: u64, addr: u64, now: u64) {
        if !self.config.enabled {
            return;
        }
        self.tick += 1;
        let slot = self.stride_slot(pc);
        let entry = self.stride_table[slot];
        if !entry.valid || entry.tag != pc || entry.stride == 0 {
            return;
        }
        if entry.confidence < self.config.confidence_threshold {
            return;
        }
        // Allocate (or re-target) a stream buffer for this stream.
        let tick = self.tick;
        let stride_lines = (entry.stride.unsigned_abs() / self.line_bytes).max(1);
        let direction = entry.stride.signum();
        let base_line = self.line_of(addr);
        let entries = self.config.entries_per_buffer as u64;
        let ready_at = now + self.memory_latency;
        self.issued += entries;
        let victim = self
            .buffers
            .iter_mut()
            .min_by_key(|b| if b.valid { b.last_allocated } else { 0 })
            .expect("at least one stream buffer");
        victim.valid = true;
        victim.thread = thread.index();
        // Refill the victim's line vector in place: its capacity is reused
        // across reallocations, keeping the steady state allocation-free.
        victim.lines.clear();
        victim.lines.extend((1..=entries).map(|i| {
            let offset = stride_lines * i;
            let line = if direction >= 0 {
                base_line + offset
            } else {
                base_line.saturating_sub(offset)
            };
            (line, ready_at)
        }));
        victim.last_allocated = tick;
    }

    /// Captures the prefetcher state for a warm checkpoint.
    pub fn state(&self) -> PrefetcherState {
        PrefetcherState {
            stride_table: self
                .stride_table
                .iter()
                .map(|e| StrideEntryState {
                    valid: e.valid,
                    tag: e.tag,
                    last_addr: e.last_addr,
                    stride: e.stride,
                    confidence: e.confidence,
                })
                .collect(),
            buffers: self
                .buffers
                .iter()
                .map(|b| StreamBufferState {
                    valid: b.valid,
                    thread: b.thread as u64,
                    lines: b.lines.clone(),
                    last_allocated: b.last_allocated,
                })
                .collect(),
            tick: self.tick,
            issued: self.issued,
            hits: self.hits,
        }
    }

    /// Restores a state captured with [`StreamBufferPrefetcher::state`].
    /// Fails when the geometry differs.
    pub fn restore_state(&mut self, state: &PrefetcherState) -> Result<(), String> {
        if state.stride_table.len() != self.stride_table.len()
            || state.buffers.len() != self.buffers.len()
        {
            return Err(format!(
                "prefetcher geometry mismatch: state has {} stride entries / {} buffers, \
                 prefetcher has {} / {}",
                state.stride_table.len(),
                state.buffers.len(),
                self.stride_table.len(),
                self.buffers.len()
            ));
        }
        for (entry, s) in self.stride_table.iter_mut().zip(state.stride_table.iter()) {
            entry.valid = s.valid;
            entry.tag = s.tag;
            entry.last_addr = s.last_addr;
            entry.stride = s.stride;
            entry.confidence = s.confidence;
        }
        for (buf, s) in self.buffers.iter_mut().zip(state.buffers.iter()) {
            buf.valid = s.valid;
            buf.thread = s.thread as usize;
            buf.lines.clear();
            buf.lines.extend(s.lines.iter().copied());
            buf.last_allocated = s.last_allocated;
        }
        self.tick = state.tick;
        self.issued = state.issued;
        self.hits = state.hits;
        Ok(())
    }

    /// Clears all prefetcher state.
    pub fn reset(&mut self) {
        for e in &mut self.stride_table {
            e.valid = false;
        }
        for b in &mut self.buffers {
            b.valid = false;
            b.lines.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamBufferPrefetcher {
        StreamBufferPrefetcher::new(PrefetcherConfig::default(), 64, 350)
    }

    fn train_strided(p: &mut StreamBufferPrefetcher, pc: u64, start: u64, stride: u64, n: u64) {
        let t = ThreadId::new(0);
        for i in 0..n {
            p.train(t, pc, start + i * stride);
        }
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let cfg = PrefetcherConfig {
            enabled: false,
            ..PrefetcherConfig::default()
        };
        let mut p = StreamBufferPrefetcher::new(cfg, 64, 350);
        let t = ThreadId::new(0);
        p.train(t, 0x10, 0x1000);
        p.on_demand_miss(t, 0x10, 0x1000, 0);
        assert!(p.probe(t, 0x1040, 10).is_none());
        assert_eq!(p.prefetches_issued(), 0);
    }

    #[test]
    fn strided_stream_allocates_and_hits() {
        let mut p = pf();
        let t = ThreadId::new(0);
        // Teach the stride predictor a 64-byte stride with enough confidence.
        train_strided(&mut p, 0x400, 0x10000, 64, 5);
        // A miss on the next element allocates a stream buffer.
        p.on_demand_miss(t, 0x400, 0x10000 + 5 * 64, 1000);
        assert!(p.prefetches_issued() >= 8);
        // The following line should now be covered by the prefetcher.
        let hit = p.probe(t, 0x10000 + 6 * 64, 2000);
        assert!(hit.is_some());
        // The prefetch was launched at cycle 1000, so the line is ready by 1350 and
        // the probe at cycle 2000 sees it immediately available.
        assert_eq!(hit.unwrap().available_at, 2000);
        assert_eq!(p.prefetch_hits(), 1);
    }

    #[test]
    fn random_pattern_never_gains_confidence() {
        let mut p = pf();
        let t = ThreadId::new(0);
        let addrs = [0x1000u64, 0x8000, 0x2340, 0x99000, 0x1200, 0x55000];
        for (i, a) in addrs.iter().enumerate() {
            p.train(t, 0x500, *a);
            p.on_demand_miss(t, 0x500, *a, i as u64 * 10);
        }
        assert_eq!(p.prefetches_issued(), 0);
        assert!(p.probe(t, 0x1040, 100).is_none());
    }

    #[test]
    fn threads_do_not_share_buffers() {
        let mut p = pf();
        train_strided(&mut p, 0x400, 0x10000, 64, 5);
        p.on_demand_miss(ThreadId::new(0), 0x400, 0x10000 + 5 * 64, 0);
        // Thread 1 must not hit in thread 0's buffer.
        assert!(p.probe(ThreadId::new(1), 0x10000 + 6 * 64, 10).is_none());
        assert!(p.probe(ThreadId::new(0), 0x10000 + 6 * 64, 10).is_some());
    }

    #[test]
    fn probe_consumes_and_extends_stream() {
        let mut p = pf();
        let t = ThreadId::new(0);
        train_strided(&mut p, 0x400, 0x20000, 64, 5);
        p.on_demand_miss(t, 0x400, 0x20000 + 5 * 64, 0);
        let first = p.probe(t, 0x20000 + 6 * 64, 500);
        assert!(first.is_some());
        // Same line again: already consumed.
        assert!(p.probe(t, 0x20000 + 6 * 64, 510).is_none());
        // Deeper line still present.
        assert!(p.probe(t, 0x20000 + 7 * 64, 520).is_some());
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = pf();
        let t = ThreadId::new(0);
        train_strided(&mut p, 0x400, 0x20000, 64, 5);
        p.on_demand_miss(t, 0x400, 0x20000 + 5 * 64, 0);
        p.reset();
        assert!(p.probe(t, 0x20000 + 6 * 64, 500).is_none());
    }
}
