//! Set-associative cache tag store with LRU replacement.

use serde::{Deserialize, Serialize};
use smt_types::config::CacheConfig;

/// Serializable snapshot of one cache way (for warm checkpoints).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WayState {
    /// Whether the way holds a line.
    pub valid: bool,
    /// Stored tag.
    pub tag: u64,
    /// LRU stamp.
    pub last_used: u64,
}

/// Serializable snapshot of a [`SetAssocCache`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CacheState {
    /// All ways of all sets, `set * associativity + way` order.
    pub ways: Vec<WayState>,
    /// The LRU clock.
    pub tick: u64,
    /// Lookup hits so far.
    pub hits: u64,
    /// Lookup misses so far.
    pub misses: u64,
}

/// One cache way: a valid tag plus an LRU timestamp.
#[derive(Clone, Copy, Debug, Default)]
struct Way {
    valid: bool,
    tag: u64,
    last_used: u64,
}

/// A set-associative, LRU-replaced cache tag store.
///
/// Only tags are modelled (the simulator is trace driven and never needs data
/// values). The cache is shared between SMT threads; callers are expected to embed
/// the thread id into the address if they want disjoint address spaces.
///
/// # Example
///
/// ```
/// use smt_mem::SetAssocCache;
/// use smt_types::config::CacheConfig;
///
/// let cfg = CacheConfig { size_bytes: 1024, associativity: 2, line_bytes: 64, latency: 1 };
/// let mut cache = SetAssocCache::new(&cfg);
/// assert!(!cache.access(0x40));     // cold miss
/// cache.fill(0x40);
/// assert!(cache.access(0x44));      // same line now hits
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// All ways of all sets in one flat allocation, indexed by
    /// `set * associativity + way` — no per-set pointer chase on lookup.
    ways: Vec<Way>,
    associativity: usize,
    line_shift: u32,
    set_mask: u64,
    latency: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate (see
    /// [`CacheConfig::validate`]).
    pub fn new(config: &CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let num_sets = config.num_sets();
        let associativity = config.associativity as usize;
        SetAssocCache {
            ways: vec![Way::default(); num_sets as usize * associativity],
            associativity,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            latency: config.latency,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The ways of one set, as a contiguous slice of the flat way array.
    #[inline(always)]
    fn set_ways(&self, set: usize) -> &[Way] {
        let start = set * self.associativity;
        &self.ways[start..start + self.associativity]
    }

    /// Mutable counterpart of [`SetAssocCache::set_ways`].
    #[inline(always)]
    fn set_ways_mut(&mut self, set: usize) -> &mut [Way] {
        let start = set * self.associativity;
        &mut self.ways[start..start + self.associativity]
    }

    /// Access latency of this level in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Looks up `addr`, updating LRU state and hit/miss counters.
    ///
    /// Returns `true` on a hit. Does **not** allocate on a miss; call
    /// [`SetAssocCache::fill`] for that, which mirrors how the hierarchy installs
    /// the line only once the miss returns.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index_tag(addr);
        for way in self.set_ways_mut(set) {
            if way.valid && way.tag == tag {
                way.last_used = tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Checks for presence without touching LRU state or counters.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index_tag(addr);
        self.set_ways(set).iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU way if needed.
    pub fn fill(&mut self, addr: u64) {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index_tag(addr);
        let ways = self.set_ways_mut(set);
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_used } else { 0 })
            .expect("cache set has at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.last_used = tick;
    }

    /// Records a hit serviced outside the tag store (the chip-shared level
    /// forwarding a line staged for fill this cycle) so the hit/miss
    /// counters classify the access correctly.
    pub fn record_external_hit(&mut self) {
        self.hits += 1;
    }

    /// Folds externally tallied lookup outcomes into the hit/miss counters.
    /// The staged chip discipline classifies accesses against a frozen view
    /// during the cycle and merges each core's tallies here, so the counters
    /// end the cycle exactly as interleaved lookups would have left them.
    pub fn add_lookup_counts(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Looks up `addr` with an explicit LRU stamp instead of the internal
    /// access tick, updating hit/miss counters.
    ///
    /// Chip-shared levels stamp every access of one chip cycle with the same
    /// value so that the LRU state after the cycle does not depend on the
    /// order cores were serviced in.
    pub fn access_stamped(&mut self, addr: u64, stamp: u64) -> bool {
        let (set, tag) = self.index_tag(addr);
        for way in self.set_ways_mut(set) {
            if way.valid && way.tag == tag {
                way.last_used = stamp;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Installs (or LRU-refreshes) the line containing `addr` with an explicit
    /// stamp, evicting the lowest-stamped valid way if needed (invalid ways
    /// are always preferred; ties break on the lowest way index, so the
    /// outcome is a pure function of the set state and the stamp).
    pub fn fill_stamped(&mut self, addr: u64, stamp: u64) {
        let (set, tag) = self.index_tag(addr);
        let ways = self.set_ways_mut(set);
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = stamp;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| (w.valid, w.last_used))
            .expect("cache set has at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.last_used = stamp;
    }

    /// Captures the tag-store state for a warm checkpoint.
    pub fn state(&self) -> CacheState {
        CacheState {
            ways: self
                .ways
                .iter()
                .map(|w| WayState {
                    valid: w.valid,
                    tag: w.tag,
                    last_used: w.last_used,
                })
                .collect(),
            tick: self.tick,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores a state captured with [`SetAssocCache::state`]. Fails when
    /// the cache geometry differs.
    pub fn restore_state(&mut self, state: &CacheState) -> Result<(), String> {
        if state.ways.len() != self.ways.len() {
            return Err(format!(
                "cache geometry mismatch: state has {} ways, cache has {}",
                state.ways.len(),
                self.ways.len()
            ));
        }
        for (way, s) in self.ways.iter_mut().zip(state.ways.iter()) {
            way.valid = s.valid;
            way.tag = s.tag;
            way.last_used = s.last_used;
        }
        self.tick = state.tick;
        self.hits = state.hits;
        self.misses = state.misses;
        Ok(())
    }

    /// Invalidates every line (used between experiment repetitions).
    pub fn flush_all(&mut self) {
        for way in &mut self.ways {
            way.valid = false;
        }
    }

    /// Number of lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups (1.0 when no lookups have happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(assoc: u32) -> SetAssocCache {
        SetAssocCache::new(&CacheConfig {
            size_bytes: 4 * 64 * assoc as u64,
            associativity: assoc,
            line_bytes: 64,
            latency: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(2);
        assert!(!c.access(0x1000));
        c.fill(0x1000);
        assert!(c.access(0x1000));
        assert!(c.access(0x103f)); // same 64B line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache(2);
        // Three lines mapping to the same set of a 4-set cache: stride = sets*line = 256.
        let a = 0x0;
        let b = 0x400;
        let d = 0x800;
        c.fill(a);
        c.fill(b);
        assert!(c.access(a)); // a is now MRU
        c.fill(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_disturb_counters() {
        let mut c = small_cache(2);
        c.fill(0x0);
        assert!(c.probe(0x0));
        assert!(!c.probe(0x40));
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = small_cache(4);
        for i in 0..16 {
            c.fill(i * 64);
        }
        c.flush_all();
        for i in 0..16 {
            assert!(!c.probe(i * 64));
        }
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small_cache(2);
        assert_eq!(c.hit_rate(), 1.0);
        c.fill(0);
        assert!(c.access(0));
        assert!(!c.access(64));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stamped_access_and_fill_are_order_invariant_within_a_stamp() {
        // Two caches see the same three same-set lines filled at one stamp in
        // opposite orders; the observable state afterwards must be identical.
        let mut a = small_cache(2);
        let mut b = small_cache(2);
        a.fill_stamped(0x0, 5);
        a.fill_stamped(0x400, 5);
        b.fill_stamped(0x400, 5);
        b.fill_stamped(0x0, 5);
        for addr in [0x0u64, 0x400] {
            assert_eq!(a.probe(addr), b.probe(addr));
        }
        // Oldest-stamped line is the victim regardless of way position.
        a.fill_stamped(0x0, 1);
        a.fill_stamped(0x400, 9);
        a.fill_stamped(0x800, 10);
        assert!(!a.probe(0x0));
        assert!(a.probe(0x400) && a.probe(0x800));
        // Stamped lookups refresh the stamp.
        assert!(a.access_stamped(0x400, 11));
        a.fill_stamped(0xc00, 12);
        assert!(a.probe(0x400));
        assert!(!a.probe(0x800));
        assert!(!a.access_stamped(0x1000, 13));
    }

    #[test]
    fn refill_of_present_line_updates_lru_not_duplicate() {
        let mut c = small_cache(2);
        c.fill(0x0);
        c.fill(0x400);
        c.fill(0x0); // refresh a
        c.fill(0x800); // should evict 0x400, not 0x0
        assert!(c.probe(0x0));
        assert!(!c.probe(0x400));
    }
}
