//! Fully-associative translation lookaside buffer with LRU replacement.

use smt_types::config::TlbConfig;

#[derive(Clone, Copy, Debug, Default)]
struct TlbEntry {
    valid: bool,
    vpn: u64,
    last_used: u64,
}

/// Looks up `vpn` in `entries`, refreshing its LRU stamp on a hit or
/// installing it over the LRU victim on a miss (the hardware page walk).
/// Returns `true` on a hit. Shared by [`Tlb`] and [`TlbFile`] so the
/// replacement policy cannot drift between the two.
fn access_entries(entries: &mut [TlbEntry], tick: u64, vpn: u64) -> bool {
    if let Some(e) = entries.iter_mut().find(|e| e.valid && e.vpn == vpn) {
        e.last_used = tick;
        return true;
    }
    let victim = entries
        .iter_mut()
        .min_by_key(|e| if e.valid { e.last_used } else { 0 })
        .expect("TLB has at least one entry");
    victim.valid = true;
    victim.vpn = vpn;
    victim.last_used = tick;
    false
}

/// A fully-associative TLB, as configured in Table IV (128-entry I-TLB, 512-entry
/// D-TLB, 8 KB pages).
///
/// A D-TLB miss is one of the two events the paper counts as a *long-latency load*
/// (the other being an L3 load miss).
///
/// # Example
///
/// ```
/// use smt_mem::Tlb;
/// use smt_types::config::TlbConfig;
///
/// let mut tlb = Tlb::new(&TlbConfig { entries: 4, page_bytes: 8192, miss_penalty: 350 });
/// assert!(!tlb.access(0x0));          // cold miss, entry installed
/// assert!(tlb.access(0x1fff));        // same 8 KB page
/// assert!(!tlb.access(0x2000));       // next page
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    page_shift: u32,
    miss_penalty: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero or the page size is not a power of two.
    pub fn new(config: &TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![TlbEntry::default(); config.entries as usize],
            page_shift: config.page_bytes.trailing_zeros(),
            miss_penalty: config.miss_penalty,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Penalty in cycles charged for a miss (a page-table walk to memory).
    pub fn miss_penalty(&self) -> u64 {
        self.miss_penalty
    }

    /// Translates `addr`; returns `true` on a hit. On a miss the translation is
    /// installed (hardware page walk), evicting the LRU entry.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let hit = access_entries(&mut self.entries, self.tick, addr >> self.page_shift);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Checks for a translation without installing or touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        self.entries.iter().any(|e| e.valid && e.vpn == vpn)
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates every translation.
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

/// The per-thread TLBs of one kind (instruction or data) for every hardware
/// thread, stored as a single flat entry array indexed by
/// `thread * entries_per_thread + entry`.
///
/// Functionally identical to a `Vec<Tlb>` — each thread's slice is searched and
/// replaced exactly as [`Tlb`] would — but with one allocation instead of one
/// `Vec` per thread, so hierarchy lookups don't chase a per-thread pointer.
///
/// # Example
///
/// ```
/// use smt_mem::TlbFile;
/// use smt_types::config::TlbConfig;
///
/// let cfg = TlbConfig { entries: 4, page_bytes: 8192, miss_penalty: 350 };
/// let mut tlbs = TlbFile::new(&cfg, 2);
/// assert!(!tlbs.access(0, 0x0));       // thread 0: cold miss, entry installed
/// assert!(tlbs.access(0, 0x1fff));     // same 8 KB page
/// assert!(!tlbs.access(1, 0x0));       // thread 1 has its own entries
/// ```
#[derive(Clone, Debug)]
pub struct TlbFile {
    /// All threads' entries in one flat allocation.
    entries: Vec<TlbEntry>,
    entries_per_thread: usize,
    page_shift: u32,
    miss_penalty: u64,
    /// Per-thread LRU clocks (each thread's TLB ticks independently, exactly
    /// like a standalone [`Tlb`]).
    ticks: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl TlbFile {
    /// Builds `num_threads` TLBs of `config`'s shape.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero, the page size is not a power of two,
    /// or `num_threads` is zero.
    pub fn new(config: &TlbConfig, num_threads: usize) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(num_threads > 0, "TLB file needs at least one thread");
        let entries_per_thread = config.entries as usize;
        TlbFile {
            entries: vec![TlbEntry::default(); entries_per_thread * num_threads],
            entries_per_thread,
            page_shift: config.page_bytes.trailing_zeros(),
            miss_penalty: config.miss_penalty,
            ticks: vec![0; num_threads],
            hits: 0,
            misses: 0,
        }
    }

    /// Penalty in cycles charged for a miss (a page-table walk to memory).
    pub fn miss_penalty(&self) -> u64 {
        self.miss_penalty
    }

    /// Translates `addr` for `thread`; returns `true` on a hit. On a miss the
    /// translation is installed (hardware page walk), evicting the LRU entry
    /// of that thread's slice.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn access(&mut self, thread: usize, addr: u64) -> bool {
        self.ticks[thread] += 1;
        let tick = self.ticks[thread];
        let start = thread * self.entries_per_thread;
        let slice = &mut self.entries[start..start + self.entries_per_thread];
        let hit = access_entries(slice, tick, addr >> self.page_shift);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Checks for a translation without installing or touching LRU state.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn probe(&self, thread: usize, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        let start = thread * self.entries_per_thread;
        self.entries[start..start + self.entries_per_thread]
            .iter()
            .any(|e| e.valid && e.vpn == vpn)
    }

    /// Number of hits so far, over all threads.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far, over all threads.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates every translation of every thread.
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(&TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 350,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1abc));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.probe(0x0000));
        assert!(!t.probe(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut t = tiny();
        t.access(0x0);
        let hits = t.hits();
        let misses = t.misses();
        assert!(t.probe(0x0));
        assert!(!t.probe(0x5000));
        assert_eq!(t.hits(), hits);
        assert_eq!(t.misses(), misses);
        assert!(!t.probe(0x5000)); // probe of a missing page must not install it
    }

    #[test]
    fn flush_all_clears() {
        let mut t = tiny();
        t.access(0x0);
        t.flush_all();
        assert!(!t.probe(0x0));
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        let _ = Tlb::new(&TlbConfig {
            entries: 0,
            page_bytes: 4096,
            miss_penalty: 1,
        });
    }

    #[test]
    fn tlb_file_matches_vec_of_tlbs() {
        let cfg = TlbConfig {
            entries: 3,
            page_bytes: 4096,
            miss_penalty: 350,
        };
        let mut file = TlbFile::new(&cfg, 2);
        let mut reference: Vec<Tlb> = (0..2).map(|_| Tlb::new(&cfg)).collect();
        // A deterministic access pattern with reuse, eviction and cross-thread
        // interleaving; the flat file must behave exactly like one Tlb per
        // thread.
        let mut x: u64 = 7;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let thread = (i % 2) as usize;
            let addr = (x >> 33) % 8 * 4096 + (x & 0xfff);
            assert_eq!(
                file.access(thread, addr),
                reference[thread].access(addr),
                "divergence at access {i}"
            );
        }
        let reference_hits: u64 = reference.iter().map(|t| t.hits()).sum();
        let reference_misses: u64 = reference.iter().map(|t| t.misses()).sum();
        assert_eq!(file.hits(), reference_hits);
        assert_eq!(file.misses(), reference_misses);
        for page in 0..8u64 {
            for (thread, tlb) in reference.iter().enumerate() {
                assert_eq!(file.probe(thread, page * 4096), tlb.probe(page * 4096));
            }
        }
        file.flush_all();
        assert!(!file.probe(0, 0));
        assert!(!file.probe(1, 0));
    }

    #[test]
    fn tlb_file_threads_are_disjoint() {
        let cfg = TlbConfig {
            entries: 2,
            page_bytes: 8192,
            miss_penalty: 350,
        };
        let mut file = TlbFile::new(&cfg, 3);
        assert!(!file.access(0, 0x0));
        assert!(!file.access(1, 0x0));
        assert!(file.access(0, 0x1));
        assert!(!file.access(2, 0x0));
        assert!(!file.probe(2, 0x4000));
        assert_eq!(file.miss_penalty(), 350);
    }
}
