//! Fully-associative translation lookaside buffer with LRU replacement.

use smt_types::config::TlbConfig;

#[derive(Clone, Copy, Debug, Default)]
struct TlbEntry {
    valid: bool,
    vpn: u64,
    last_used: u64,
}

/// A fully-associative TLB, as configured in Table IV (128-entry I-TLB, 512-entry
/// D-TLB, 8 KB pages).
///
/// A D-TLB miss is one of the two events the paper counts as a *long-latency load*
/// (the other being an L3 load miss).
///
/// # Example
///
/// ```
/// use smt_mem::Tlb;
/// use smt_types::config::TlbConfig;
///
/// let mut tlb = Tlb::new(&TlbConfig { entries: 4, page_bytes: 8192, miss_penalty: 350 });
/// assert!(!tlb.access(0x0));          // cold miss, entry installed
/// assert!(tlb.access(0x1fff));        // same 8 KB page
/// assert!(!tlb.access(0x2000));       // next page
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    page_shift: u32,
    miss_penalty: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero or the page size is not a power of two.
    pub fn new(config: &TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![TlbEntry::default(); config.entries as usize],
            page_shift: config.page_bytes.trailing_zeros(),
            miss_penalty: config.miss_penalty,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Penalty in cycles charged for a miss (a page-table walk to memory).
    pub fn miss_penalty(&self) -> u64 {
        self.miss_penalty
    }

    /// Translates `addr`; returns `true` on a hit. On a miss the translation is
    /// installed (hardware page walk), evicting the LRU entry.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let vpn = addr >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|e| e.valid && e.vpn == vpn) {
            e.last_used = tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_used } else { 0 })
            .expect("TLB has at least one entry");
        victim.valid = true;
        victim.vpn = vpn;
        victim.last_used = tick;
        false
    }

    /// Checks for a translation without installing or touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        self.entries.iter().any(|e| e.valid && e.vpn == vpn)
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates every translation.
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(&TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 350,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1abc));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.probe(0x0000));
        assert!(!t.probe(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut t = tiny();
        t.access(0x0);
        let hits = t.hits();
        let misses = t.misses();
        assert!(t.probe(0x0));
        assert!(!t.probe(0x5000));
        assert_eq!(t.hits(), hits);
        assert_eq!(t.misses(), misses);
        assert!(!t.probe(0x5000)); // probe of a missing page must not install it
    }

    #[test]
    fn flush_all_clears() {
        let mut t = tiny();
        t.access(0x0);
        t.flush_all();
        assert!(!t.probe(0x0));
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        let _ = Tlb::new(&TlbConfig {
            entries: 0,
            page_bytes: 4096,
            miss_penalty: 1,
        });
    }
}
