//! Fully-associative translation lookaside buffer with LRU replacement.

use serde::{Deserialize, Serialize};
use smt_types::config::TlbConfig;

/// Serializable snapshot of one TLB entry (for warm checkpoints).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TlbEntryState {
    /// Whether the entry holds a translation.
    pub valid: bool,
    /// Stored virtual page number.
    pub vpn: u64,
    /// LRU stamp.
    pub last_used: u64,
}

/// Serializable snapshot of a [`TlbFile`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TlbFileState {
    /// All threads' entries, `thread * entries_per_thread + entry` order.
    pub entries: Vec<TlbEntryState>,
    /// Per-thread LRU clocks.
    pub ticks: Vec<u64>,
    /// Hits so far.
    pub hits: u64,
    /// Misses so far.
    pub misses: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct TlbEntry {
    valid: bool,
    vpn: u64,
    last_used: u64,
}

/// Sentinel for "no slot" in [`LruIndex`] links.
const NO_SLOT: u32 = u32::MAX;

/// Splitmix64-finalizer hasher for the vpn → slot map. Keys are single `u64`
/// virtual page numbers hashed on the hot path of every load and store;
/// SipHash's collision-attack resistance buys nothing against our own address
/// stream and costs most of the lookup.
#[derive(Clone, Copy, Default, Debug)]
struct VpnHasher(u64);

impl std::hash::Hasher for VpnHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 writes (unused by the vpn map).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, key: u64) {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

/// The vpn → slot map used by [`LruIndex`].
type VpnMap = std::collections::HashMap<u64, u32, std::hash::BuildHasherDefault<VpnHasher>>;

/// O(1) recency index over one TLB's entry slice: a `vpn → slot` hash map for
/// lookups plus an intrusive doubly-linked list ordered least- to
/// most-recently used for victim selection.
///
/// This replays *exactly* the outcomes of the original linear algorithm
/// (scan for a matching valid entry; otherwise evict the entry minimizing
/// `if valid { last_used } else { 0 }`, first slot winning ties): invalid
/// slots sit at the front of the list in slot order, and every use appends to
/// the back with a fresh, strictly increasing stamp. The fully-associative
/// D-TLB is 512 entries, so the linear scans dominated every load and store
/// in both detailed and fast-forward mode before this index existed.
#[derive(Clone, Debug)]
struct LruIndex {
    map: VpnMap,
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Least recently used slot (the eviction victim).
    head: u32,
    /// Most recently used slot.
    tail: u32,
}

impl LruIndex {
    /// Builds the index for `n` initially-invalid slots (list in slot order).
    fn new(n: usize) -> Self {
        let mut this = LruIndex {
            map: VpnMap::with_capacity_and_hasher(n, Default::default()),
            prev: vec![NO_SLOT; n],
            next: vec![NO_SLOT; n],
            head: NO_SLOT,
            tail: NO_SLOT,
        };
        this.link_in_order(&(0..n as u32).collect::<Vec<_>>());
        this
    }

    /// Relinks the list to exactly `slots` (front to back) and clears nothing
    /// else; callers are responsible for the map.
    fn link_in_order(&mut self, slots: &[u32]) {
        self.head = NO_SLOT;
        self.tail = NO_SLOT;
        for &slot in slots {
            self.prev[slot as usize] = self.tail;
            self.next[slot as usize] = NO_SLOT;
            if self.tail == NO_SLOT {
                self.head = slot;
            } else {
                self.next[self.tail as usize] = slot;
            }
            self.tail = slot;
        }
    }

    /// Moves `slot` to the most-recently-used end.
    fn touch(&mut self, slot: u32) {
        if self.tail == slot {
            return;
        }
        // Unlink.
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NO_SLOT {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n != NO_SLOT {
            self.prev[n as usize] = p;
        }
        // Append.
        self.prev[slot as usize] = self.tail;
        self.next[slot as usize] = NO_SLOT;
        if self.tail != NO_SLOT {
            self.next[self.tail as usize] = slot;
        }
        self.tail = slot;
        if self.head == NO_SLOT {
            self.head = slot;
        }
    }

    /// Rebuilds map and list from restored entries: recency order is
    /// `(if valid { last_used } else { 0 }, slot)` ascending, and duplicate
    /// vpns keep first-slot-wins semantics like the original linear scan.
    fn rebuild(&mut self, entries: &[TlbEntry]) {
        self.map.clear();
        // analyze: allow(hot-path-alloc) reason="once per checkpoint restore, called only from restore_state"
        let mut slots: Vec<u32> = (0..entries.len() as u32).collect();
        slots.sort_by_key(|&s| {
            let e = &entries[s as usize];
            (if e.valid { e.last_used } else { 0 }, s)
        });
        self.link_in_order(&slots);
        for (slot, e) in entries.iter().enumerate() {
            if e.valid {
                self.map.entry(e.vpn).or_insert(slot as u32);
            }
        }
    }
}

/// Looks up `vpn` in `entries`, refreshing its LRU stamp on a hit or
/// installing it over the LRU victim on a miss (the hardware page walk).
/// Returns `true` on a hit. Shared by [`Tlb`] and [`TlbFile`] so the
/// replacement policy cannot drift between the two.
fn access_entries(entries: &mut [TlbEntry], index: &mut LruIndex, tick: u64, vpn: u64) -> bool {
    if let Some(&slot) = index.map.get(&vpn) {
        let e = &mut entries[slot as usize];
        if e.valid && e.vpn == vpn {
            e.last_used = tick;
            index.touch(slot);
            return true;
        }
    }
    let victim = index.head;
    let e = &mut entries[victim as usize];
    if e.valid && index.map.get(&e.vpn) == Some(&victim) {
        index.map.remove(&e.vpn);
    }
    e.valid = true;
    e.vpn = vpn;
    e.last_used = tick;
    index.map.entry(vpn).or_insert(victim);
    index.touch(victim);
    false
}

/// The original linear-scan formulation of [`access_entries`], kept as the
/// reference model the indexed fast path is property-tested against.
#[cfg(test)]
fn reference_access_entries(entries: &mut [TlbEntry], tick: u64, vpn: u64) -> bool {
    if let Some(e) = entries.iter_mut().find(|e| e.valid && e.vpn == vpn) {
        e.last_used = tick;
        return true;
    }
    let victim = entries
        .iter_mut()
        .min_by_key(|e| if e.valid { e.last_used } else { 0 })
        .expect("TLB has at least one entry");
    victim.valid = true;
    victim.vpn = vpn;
    victim.last_used = tick;
    false
}

/// A fully-associative TLB, as configured in Table IV (128-entry I-TLB, 512-entry
/// D-TLB, 8 KB pages).
///
/// A D-TLB miss is one of the two events the paper counts as a *long-latency load*
/// (the other being an L3 load miss).
///
/// # Example
///
/// ```
/// use smt_mem::Tlb;
/// use smt_types::config::TlbConfig;
///
/// let mut tlb = Tlb::new(&TlbConfig { entries: 4, page_bytes: 8192, miss_penalty: 350 });
/// assert!(!tlb.access(0x0));          // cold miss, entry installed
/// assert!(tlb.access(0x1fff));        // same 8 KB page
/// assert!(!tlb.access(0x2000));       // next page
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    index: LruIndex,
    page_shift: u32,
    miss_penalty: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero or the page size is not a power of two.
    pub fn new(config: &TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![TlbEntry::default(); config.entries as usize],
            index: LruIndex::new(config.entries as usize),
            page_shift: config.page_bytes.trailing_zeros(),
            miss_penalty: config.miss_penalty,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Penalty in cycles charged for a miss (a page-table walk to memory).
    pub fn miss_penalty(&self) -> u64 {
        self.miss_penalty
    }

    /// Translates `addr`; returns `true` on a hit. On a miss the translation is
    /// installed (hardware page walk), evicting the LRU entry.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let hit = access_entries(
            &mut self.entries,
            &mut self.index,
            self.tick,
            addr >> self.page_shift,
        );
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Checks for a translation without installing or touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        self.entries.iter().any(|e| e.valid && e.vpn == vpn)
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates every translation.
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.index.rebuild(&self.entries);
    }
}

/// The per-thread TLBs of one kind (instruction or data) for every hardware
/// thread, stored as a single flat entry array indexed by
/// `thread * entries_per_thread + entry`.
///
/// Functionally identical to a `Vec<Tlb>` — each thread's slice is searched and
/// replaced exactly as [`Tlb`] would — but with one allocation instead of one
/// `Vec` per thread, so hierarchy lookups don't chase a per-thread pointer.
///
/// # Example
///
/// ```
/// use smt_mem::TlbFile;
/// use smt_types::config::TlbConfig;
///
/// let cfg = TlbConfig { entries: 4, page_bytes: 8192, miss_penalty: 350 };
/// let mut tlbs = TlbFile::new(&cfg, 2);
/// assert!(!tlbs.access(0, 0x0));       // thread 0: cold miss, entry installed
/// assert!(tlbs.access(0, 0x1fff));     // same 8 KB page
/// assert!(!tlbs.access(1, 0x0));       // thread 1 has its own entries
/// ```
#[derive(Clone, Debug)]
pub struct TlbFile {
    /// All threads' entries in one flat allocation.
    entries: Vec<TlbEntry>,
    /// One recency index per thread, over that thread's slice.
    indexes: Vec<LruIndex>,
    entries_per_thread: usize,
    page_shift: u32,
    miss_penalty: u64,
    /// Per-thread LRU clocks (each thread's TLB ticks independently, exactly
    /// like a standalone [`Tlb`]).
    ticks: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl TlbFile {
    /// Builds `num_threads` TLBs of `config`'s shape.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero, the page size is not a power of two,
    /// or `num_threads` is zero.
    pub fn new(config: &TlbConfig, num_threads: usize) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(num_threads > 0, "TLB file needs at least one thread");
        let entries_per_thread = config.entries as usize;
        TlbFile {
            entries: vec![TlbEntry::default(); entries_per_thread * num_threads],
            indexes: (0..num_threads)
                .map(|_| LruIndex::new(entries_per_thread))
                .collect(),
            entries_per_thread,
            page_shift: config.page_bytes.trailing_zeros(),
            miss_penalty: config.miss_penalty,
            ticks: vec![0; num_threads],
            hits: 0,
            misses: 0,
        }
    }

    /// Penalty in cycles charged for a miss (a page-table walk to memory).
    pub fn miss_penalty(&self) -> u64 {
        self.miss_penalty
    }

    /// Translates `addr` for `thread`; returns `true` on a hit. On a miss the
    /// translation is installed (hardware page walk), evicting the LRU entry
    /// of that thread's slice.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn access(&mut self, thread: usize, addr: u64) -> bool {
        self.ticks[thread] += 1;
        let tick = self.ticks[thread];
        let start = thread * self.entries_per_thread;
        let slice = &mut self.entries[start..start + self.entries_per_thread];
        let hit = access_entries(
            slice,
            &mut self.indexes[thread],
            tick,
            addr >> self.page_shift,
        );
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Checks for a translation without installing or touching LRU state.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn probe(&self, thread: usize, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        let start = thread * self.entries_per_thread;
        self.entries[start..start + self.entries_per_thread]
            .iter()
            .any(|e| e.valid && e.vpn == vpn)
    }

    /// Number of hits so far, over all threads.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far, over all threads.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Captures the TLB-file state for a warm checkpoint.
    pub fn state(&self) -> TlbFileState {
        TlbFileState {
            entries: self
                .entries
                .iter()
                .map(|e| TlbEntryState {
                    valid: e.valid,
                    vpn: e.vpn,
                    last_used: e.last_used,
                })
                .collect(),
            ticks: self.ticks.clone(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores a state captured with [`TlbFile::state`]. Fails when the
    /// geometry differs.
    pub fn restore_state(&mut self, state: &TlbFileState) -> Result<(), String> {
        if state.entries.len() != self.entries.len() || state.ticks.len() != self.ticks.len() {
            return Err(format!(
                "TLB geometry mismatch: state has {} entries / {} threads, file has {} / {}",
                state.entries.len(),
                state.ticks.len(),
                self.entries.len(),
                self.ticks.len()
            ));
        }
        for (entry, s) in self.entries.iter_mut().zip(state.entries.iter()) {
            entry.valid = s.valid;
            entry.vpn = s.vpn;
            entry.last_used = s.last_used;
        }
        self.ticks.copy_from_slice(&state.ticks);
        self.hits = state.hits;
        self.misses = state.misses;
        self.rebuild_indexes();
        Ok(())
    }

    /// Invalidates every translation of every thread.
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.rebuild_indexes();
    }

    /// Rebuilds every thread's recency index from the entry array (after a
    /// restore or flush mutated entries behind the indexes' back).
    fn rebuild_indexes(&mut self) {
        for (thread, index) in self.indexes.iter_mut().enumerate() {
            let start = thread * self.entries_per_thread;
            index.rebuild(&self.entries[start..start + self.entries_per_thread]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(&TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 350,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1abc));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.probe(0x0000));
        assert!(!t.probe(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut t = tiny();
        t.access(0x0);
        let hits = t.hits();
        let misses = t.misses();
        assert!(t.probe(0x0));
        assert!(!t.probe(0x5000));
        assert_eq!(t.hits(), hits);
        assert_eq!(t.misses(), misses);
        assert!(!t.probe(0x5000)); // probe of a missing page must not install it
    }

    #[test]
    fn flush_all_clears() {
        let mut t = tiny();
        t.access(0x0);
        t.flush_all();
        assert!(!t.probe(0x0));
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        let _ = Tlb::new(&TlbConfig {
            entries: 0,
            page_bytes: 4096,
            miss_penalty: 1,
        });
    }

    #[test]
    fn tlb_file_matches_vec_of_tlbs() {
        let cfg = TlbConfig {
            entries: 3,
            page_bytes: 4096,
            miss_penalty: 350,
        };
        let mut file = TlbFile::new(&cfg, 2);
        let mut reference: Vec<Tlb> = (0..2).map(|_| Tlb::new(&cfg)).collect();
        // A deterministic access pattern with reuse, eviction and cross-thread
        // interleaving; the flat file must behave exactly like one Tlb per
        // thread.
        let mut x: u64 = 7;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let thread = (i % 2) as usize;
            let addr = (x >> 33) % 8 * 4096 + (x & 0xfff);
            assert_eq!(
                file.access(thread, addr),
                reference[thread].access(addr),
                "divergence at access {i}"
            );
        }
        let reference_hits: u64 = reference.iter().map(|t| t.hits()).sum();
        let reference_misses: u64 = reference.iter().map(|t| t.misses()).sum();
        assert_eq!(file.hits(), reference_hits);
        assert_eq!(file.misses(), reference_misses);
        for page in 0..8u64 {
            for (thread, tlb) in reference.iter().enumerate() {
                assert_eq!(file.probe(thread, page * 4096), tlb.probe(page * 4096));
            }
        }
        file.flush_all();
        assert!(!file.probe(0, 0));
        assert!(!file.probe(1, 0));
    }

    /// Splitmix-style deterministic pseudo-random stream for model tests.
    fn next_rand(x: &mut u64) -> u64 {
        *x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x >> 16
    }

    #[test]
    fn indexed_access_matches_linear_reference() {
        // Drive the O(1) indexed path and the original linear-scan algorithm
        // with the same access stream (heavy reuse and eviction pressure:
        // 13 pages over 5 entries) and demand identical hit/miss outcomes and
        // identical entry arrays after every access.
        for seed in [1u64, 99, 123_456_789] {
            let cfg = TlbConfig {
                entries: 5,
                page_bytes: 4096,
                miss_penalty: 350,
            };
            let mut indexed = Tlb::new(&cfg);
            let mut reference = vec![TlbEntry::default(); cfg.entries as usize];
            let mut x = seed;
            for (i, tick) in (1u64..=2_000).enumerate() {
                let addr = next_rand(&mut x) % 13 * 4096;
                let got = indexed.access(addr);
                let want = reference_access_entries(&mut reference, tick, addr >> 12);
                assert_eq!(got, want, "hit/miss divergence at access {i} (seed {seed})");
                for (slot, (a, b)) in indexed.entries.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        (a.valid, a.vpn, a.last_used),
                        (b.valid, b.vpn, b.last_used),
                        "entry divergence at access {i} slot {slot} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_file_matches_reference_across_restore() {
        // Same property at TlbFile scale, with a state()/restore_state()
        // round-trip into a fresh file mid-stream: the rebuilt index must
        // continue replaying the linear reference exactly.
        let cfg = TlbConfig {
            entries: 4,
            page_bytes: 4096,
            miss_penalty: 350,
        };
        let threads = 2usize;
        let mut file = TlbFile::new(&cfg, threads);
        let mut reference = vec![vec![TlbEntry::default(); cfg.entries as usize]; threads];
        let mut ticks = vec![0u64; threads];
        let mut x = 42u64;
        for phase in 0..3 {
            for i in 0..800u64 {
                let r = next_rand(&mut x);
                let thread = (r % threads as u64) as usize;
                let addr = (r >> 8) % 11 * 4096;
                ticks[thread] += 1;
                let got = file.access(thread, addr);
                let want =
                    reference_access_entries(&mut reference[thread], ticks[thread], addr >> 12);
                assert_eq!(got, want, "divergence at phase {phase} access {i}");
            }
            let snapshot = file.state();
            let mut fresh = TlbFile::new(&cfg, threads);
            fresh.restore_state(&snapshot).expect("geometry matches");
            assert_eq!(fresh.state(), snapshot);
            file = fresh;
        }
    }

    #[test]
    fn tlb_file_threads_are_disjoint() {
        let cfg = TlbConfig {
            entries: 2,
            page_bytes: 8192,
            miss_penalty: 350,
        };
        let mut file = TlbFile::new(&cfg, 3);
        assert!(!file.access(0, 0x0));
        assert!(!file.access(1, 0x0));
        assert!(file.access(0, 0x1));
        assert!(!file.access(2, 0x0));
        assert!(!file.probe(2, 0x4000));
        assert_eq!(file.miss_penalty(), 350);
    }
}
