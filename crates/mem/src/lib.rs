//! Memory hierarchy substrate for the SMT simulator.
//!
//! Implements the Table IV memory system of the paper:
//!
//! * set-associative L1 instruction, L1 data, unified L2 and unified L3 caches with
//!   LRU replacement ([`cache`]),
//! * fully-associative instruction and data TLBs ([`tlb`]),
//! * miss status handling registers that let independent long-latency loads overlap
//!   ([`mshr`]) — the structural mechanism behind memory-level parallelism,
//! * a stream-buffer hardware prefetcher guided by a PC-indexed stride predictor
//!   with allocation confidence ([`prefetch`]),
//! * an 8-entry write buffer drained at commit ([`write_buffer`]),
//! * the chip-shared bottom level — LLC, LLC MSHRs, memory bus — with its
//!   order-invariant multi-core arbitration discipline ([`shared`]),
//! * the per-core private levels ([`hierarchy::CoreMemory`]) and the composed
//!   single-core [`hierarchy::MemoryHierarchy`] facade that the pipeline
//!   queries for load and fetch latencies.
//!
//! # Example
//!
//! ```
//! use smt_mem::hierarchy::MemoryHierarchy;
//! use smt_types::{SmtConfig, ThreadId};
//!
//! let cfg = SmtConfig::baseline(1);
//! let mut mem = MemoryHierarchy::new(&cfg);
//! let t = ThreadId::new(0);
//! // A cold access goes all the way to memory and is long latency.
//! let first = mem.load_access(t, 0x40, 0x10_0000, 0);
//! assert!(first.long_latency);
//! // Re-accessing the same line soon after hits in the L1.
//! let second = mem.load_access(t, 0x40, 0x10_0000, first.completion_cycle() + 1);
//! assert!(!second.long_latency);
//! assert!(second.latency < first.latency);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod shared;
pub mod tlb;
pub mod write_buffer;

pub use cache::{CacheState, SetAssocCache, WayState};
pub use hierarchy::{AccessLevel, CoreMemory, CoreMemoryState, LoadAccessResult, MemoryHierarchy};
pub use mshr::{MshrFile, MshrStage};
pub use prefetch::{PrefetcherState, StreamBufferPrefetcher};
pub use shared::{
    CoreStage, MemoryBus, SharedLevel, SharedLlc, SharedLlcState, SharedLlcView, StagedShared,
};
pub use tlb::{Tlb, TlbFile, TlbFileState};
pub use write_buffer::WriteBuffer;
