//! Miss status handling registers (MSHRs).
//!
//! MSHRs are what make memory-level parallelism possible in hardware: each
//! outstanding cache-line miss occupies one MSHR, later accesses to the same line
//! merge into the existing entry, and independent misses proceed in parallel as
//! long as free MSHRs remain. The paper assumes the processor has enough MSHRs for
//! the ROB-limited MLP; the default configuration provides 32 per thread.
//!
//! Entries are tracked per *requester*: on the single-core machine a
//! requester is a hardware thread; on a chip a requester is one `(core,
//! thread)` slot, so the file also bounds each core's outstanding misses at
//! the shared LLC.

use std::collections::HashMap;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the miss proceeds to the next memory level.
    Allocated,
    /// The line is already outstanding; this access merges and completes at the
    /// contained cycle.
    Merged(u64),
    /// No MSHR is free; the access must serialize behind the returned completion
    /// cycle of the soonest-finishing outstanding miss.
    Full(u64),
}

/// Staged MSHR mutations of one requester within one chip cycle.
///
/// Under the staged chip discipline a core never mutates the shared MSHR
/// file mid-cycle: allocations land here and the whole slot is folded into
/// the file at the end-of-cycle merge ([`MshrFile::apply_stage`]). Because
/// `now` is constant within a cycle and every requester owns a private
/// entry map, the merged file is bit-for-bit the state the serial
/// interleaved [`MshrFile::request`] calls would have produced.
#[derive(Clone, Debug, Default)]
pub struct MshrStage {
    /// `(line, completion)` pairs allocated this cycle.
    inserts: Vec<(u64, u64)>,
    /// Whether the requester presented at least one request this cycle. The
    /// serial discipline retires completed entries on every request; the
    /// merge replays that retire exactly once, and only if it would have
    /// happened.
    requested: bool,
}

impl MshrStage {
    /// Whether the stage holds no pending mutations.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && !self.requested
    }
}

/// A per-requester file of miss status handling registers.
///
/// # Example
///
/// ```
/// use smt_mem::MshrFile;
///
/// let mut mshrs = MshrFile::new(2, 4);
/// assert!(matches!(mshrs.request(0, 0x1000, 100, 450), smt_mem::mshr::MshrOutcome::Allocated));
/// // A second access to the same line merges with the outstanding miss.
/// assert!(matches!(mshrs.request(0, 0x1000, 120, 470), smt_mem::mshr::MshrOutcome::Merged(450)));
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    outstanding: Vec<HashMap<u64, u64>>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries for each of
    /// `num_requesters` requesters (threads, or `(core, thread)` slots on a
    /// chip).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(num_requesters: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            capacity,
            outstanding: vec![HashMap::new(); num_requesters],
        }
    }

    /// Presents a miss for the cache line containing `line_addr` at `now`; if a new
    /// entry is allocated it will complete at `completion`.
    pub fn request(
        &mut self,
        requester: usize,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome {
        self.retire_completed(requester, now);
        let map = &mut self.outstanding[requester];
        if let Some(&done) = map.get(&line_addr) {
            return MshrOutcome::Merged(done);
        }
        if map.len() >= self.capacity {
            let soonest = *map.values().min().expect("full MSHR file is non-empty");
            return MshrOutcome::Full(soonest);
        }
        map.insert(line_addr, completion);
        MshrOutcome::Allocated
    }

    /// Presents a miss against the *frozen* file without mutating it: the
    /// outcome is computed from the cycle-start entry map plus the
    /// requester's staged allocations, and a new allocation is recorded in
    /// `stage`. With `now` held constant across the cycle this reproduces
    /// [`MshrFile::request`] outcome-for-outcome: retired entries (done
    /// `<= now`) are skipped instead of removed, and the live population is
    /// the surviving frozen entries plus this cycle's staged inserts.
    pub fn request_frozen(
        &self,
        requester: usize,
        stage: &mut MshrStage,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome {
        stage.requested = true;
        // A line allocated earlier this cycle merges exactly as a live map
        // entry would (it is never also live in the frozen map: a live entry
        // would have merged instead of allocating).
        if let Some(&(_, done)) = stage.inserts.iter().find(|&&(line, _)| line == line_addr) {
            return MshrOutcome::Merged(done);
        }
        let map = &self.outstanding[requester];
        if let Some(&done) = map.get(&line_addr) {
            if done > now {
                return MshrOutcome::Merged(done);
            }
        }
        let live = map.values().filter(|&&done| done > now).count() + stage.inserts.len();
        if live >= self.capacity {
            let soonest = map
                .values()
                .copied()
                .filter(|&done| done > now)
                .chain(stage.inserts.iter().map(|&(_, done)| done))
                .min()
                .expect("full MSHR file is non-empty");
            return MshrOutcome::Full(soonest);
        }
        stage.inserts.push((line_addr, completion));
        MshrOutcome::Allocated
    }

    /// Folds one requester's staged mutations into the file at the
    /// end-of-cycle merge: replay the retire the serial discipline would
    /// have performed on the requester's first request of the cycle, then
    /// install the staged allocations. Clears the stage.
    pub fn apply_stage(&mut self, requester: usize, stage: &mut MshrStage, now: u64) {
        if stage.requested {
            self.retire_completed(requester, now);
        }
        let map = &mut self.outstanding[requester];
        for &(line, completion) in &stage.inserts {
            map.insert(line, completion);
        }
        stage.inserts.clear();
        stage.requested = false;
    }

    /// Removes entries whose miss has completed by `now`.
    pub fn retire_completed(&mut self, requester: usize, now: u64) {
        self.outstanding[requester].retain(|_, &mut done| done > now); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
    }

    /// Number of misses outstanding for `requester` at `now`.
    pub fn outstanding_count(&mut self, requester: usize, now: u64) -> usize {
        self.retire_completed(requester, now);
        self.outstanding[requester].len()
    }

    /// Completion cycle of the latest-finishing outstanding miss, if any.
    pub fn latest_completion(&self, requester: usize) -> Option<u64> {
        self.outstanding[requester].values().copied().max() // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
    }

    /// Number of entries currently held across all requesters, ignoring
    /// completion times (zero means the file is structurally empty and a
    /// checkpoint boundary is safe).
    pub fn total_entries(&self) -> usize {
        self.outstanding.iter().map(|m| m.len()).sum()
    }

    /// Clears all outstanding state (between runs).
    pub fn reset(&mut self) {
        for map in &mut self.outstanding {
            map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_full() {
        let mut m = MshrFile::new(1, 2);
        assert_eq!(m.request(0, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.request(0, 0x40, 10, 360), MshrOutcome::Merged(350));
        assert_eq!(m.request(0, 0x80, 10, 360), MshrOutcome::Allocated);
        assert_eq!(m.request(0, 0xc0, 20, 370), MshrOutcome::Full(350));
    }

    #[test]
    fn completed_entries_retire() {
        let mut m = MshrFile::new(1, 1);
        assert_eq!(m.request(0, 0x40, 0, 100), MshrOutcome::Allocated);
        // At cycle 100 the miss is done, so a new miss can allocate.
        assert_eq!(m.request(0, 0x80, 100, 450), MshrOutcome::Allocated);
        assert_eq!(m.outstanding_count(0, 100), 1);
        assert_eq!(m.outstanding_count(0, 450), 0);
    }

    #[test]
    fn requesters_are_independent() {
        let mut m = MshrFile::new(2, 1);
        assert_eq!(m.request(0, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.request(1, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.outstanding_count(0, 10), 1);
        assert_eq!(m.outstanding_count(1, 10), 1);
    }

    #[test]
    fn latest_completion_tracks_max() {
        let mut m = MshrFile::new(1, 4);
        m.request(0, 0x40, 0, 350);
        m.request(0, 0x80, 5, 500);
        m.request(0, 0xc0, 7, 420);
        assert_eq!(m.latest_completion(0), Some(500));
        m.reset();
        assert_eq!(m.latest_completion(0), None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(1, 0);
    }

    /// The staged protocol must reproduce the serial one outcome-for-outcome
    /// within a cycle and state-for-state after the merge, including retire
    /// replay (stale entries), merges with staged inserts, and Full with the
    /// soonest completion drawn from both populations.
    #[test]
    fn frozen_plus_stage_matches_serial_request_sequence() {
        // `(line, latency)` pairs; completions are `now + latency` as in the
        // real discipline (a request never carries a completion in the past).
        let requests: [(u64, u64); 6] = [
            (0x40, 350),
            (0x80, 360),
            (0x40, 370), // merge with this-cycle insert
            (0xc0, 380), // full once two entries are live
            (0x100, 390),
            (0x80, 400), // merge with this-cycle insert
        ];
        for now in [0u64, 355] {
            let mut serial = MshrFile::new(1, 2);
            let mut frozen = MshrFile::new(1, 2);
            // Pre-populate both files identically in an earlier cycle; the
            // entry is live at `now == 0` and stale by `now == 355`, so both
            // the capacity-pressure and retire-replay paths are exercised.
            for file in [&mut serial, &mut frozen] {
                file.request(0, 0x200, 0, 300);
            }
            let mut stage = MshrStage::default();
            assert!(stage.is_empty());
            for &(line, latency) in &requests {
                let completion = now + latency;
                let expect = serial.request(0, line, now, completion);
                let got = frozen.request_frozen(0, &mut stage, line, now, completion);
                assert_eq!(got, expect, "line {line:#x} at now={now}");
            }
            assert!(!stage.is_empty());
            frozen.apply_stage(0, &mut stage, now);
            assert!(stage.is_empty());
            assert_eq!(frozen.outstanding[0], serial.outstanding[0], "now={now}");
        }
    }

    #[test]
    fn apply_stage_without_requests_leaves_stale_entries() {
        // A requester that made no request this cycle must not have its
        // completed entries retired by the merge (the serial discipline only
        // retires on a request).
        let mut file = MshrFile::new(1, 2);
        file.request(0, 0x40, 0, 100);
        let mut stage = MshrStage::default();
        file.apply_stage(0, &mut stage, 200);
        assert_eq!(file.total_entries(), 1);
    }
}
