//! Miss status handling registers (MSHRs).
//!
//! MSHRs are what make memory-level parallelism possible in hardware: each
//! outstanding cache-line miss occupies one MSHR, later accesses to the same line
//! merge into the existing entry, and independent misses proceed in parallel as
//! long as free MSHRs remain. The paper assumes the processor has enough MSHRs for
//! the ROB-limited MLP; the default configuration provides 32 per thread.

use std::collections::HashMap;

use smt_types::ThreadId;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the miss proceeds to the next memory level.
    Allocated,
    /// The line is already outstanding; this access merges and completes at the
    /// contained cycle.
    Merged(u64),
    /// No MSHR is free; the access must serialize behind the returned completion
    /// cycle of the soonest-finishing outstanding miss.
    Full(u64),
}

/// A per-thread file of miss status handling registers.
///
/// # Example
///
/// ```
/// use smt_mem::MshrFile;
/// use smt_types::ThreadId;
///
/// let mut mshrs = MshrFile::new(2, 4);
/// let t = ThreadId::new(0);
/// assert!(matches!(mshrs.request(t, 0x1000, 100, 450), smt_mem::mshr::MshrOutcome::Allocated));
/// // A second access to the same line merges with the outstanding miss.
/// assert!(matches!(mshrs.request(t, 0x1000, 120, 470), smt_mem::mshr::MshrOutcome::Merged(450)));
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    outstanding: Vec<HashMap<u64, u64>>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries for each of `num_threads`
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(num_threads: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            capacity,
            outstanding: vec![HashMap::new(); num_threads],
        }
    }

    /// Presents a miss for the cache line containing `line_addr` at `now`; if a new
    /// entry is allocated it will complete at `completion`.
    pub fn request(
        &mut self,
        thread: ThreadId,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome {
        self.retire_completed(thread, now);
        let map = &mut self.outstanding[thread.index()];
        if let Some(&done) = map.get(&line_addr) {
            return MshrOutcome::Merged(done);
        }
        if map.len() >= self.capacity {
            let soonest = *map.values().min().expect("full MSHR file is non-empty");
            return MshrOutcome::Full(soonest);
        }
        map.insert(line_addr, completion);
        MshrOutcome::Allocated
    }

    /// Removes entries whose miss has completed by `now`.
    pub fn retire_completed(&mut self, thread: ThreadId, now: u64) {
        self.outstanding[thread.index()].retain(|_, &mut done| done > now);
    }

    /// Number of misses outstanding for `thread` at `now`.
    pub fn outstanding_count(&mut self, thread: ThreadId, now: u64) -> usize {
        self.retire_completed(thread, now);
        self.outstanding[thread.index()].len()
    }

    /// Completion cycle of the latest-finishing outstanding miss, if any.
    pub fn latest_completion(&self, thread: ThreadId) -> Option<u64> {
        self.outstanding[thread.index()].values().copied().max()
    }

    /// Clears all outstanding state (between runs).
    pub fn reset(&mut self) {
        for map in &mut self.outstanding {
            map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_full() {
        let mut m = MshrFile::new(1, 2);
        let t = ThreadId::new(0);
        assert_eq!(m.request(t, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.request(t, 0x40, 10, 360), MshrOutcome::Merged(350));
        assert_eq!(m.request(t, 0x80, 10, 360), MshrOutcome::Allocated);
        assert_eq!(m.request(t, 0xc0, 20, 370), MshrOutcome::Full(350));
    }

    #[test]
    fn completed_entries_retire() {
        let mut m = MshrFile::new(1, 1);
        let t = ThreadId::new(0);
        assert_eq!(m.request(t, 0x40, 0, 100), MshrOutcome::Allocated);
        // At cycle 100 the miss is done, so a new miss can allocate.
        assert_eq!(m.request(t, 0x80, 100, 450), MshrOutcome::Allocated);
        assert_eq!(m.outstanding_count(t, 100), 1);
        assert_eq!(m.outstanding_count(t, 450), 0);
    }

    #[test]
    fn threads_are_independent() {
        let mut m = MshrFile::new(2, 1);
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        assert_eq!(m.request(t0, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.request(t1, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.outstanding_count(t0, 10), 1);
        assert_eq!(m.outstanding_count(t1, 10), 1);
    }

    #[test]
    fn latest_completion_tracks_max() {
        let mut m = MshrFile::new(1, 4);
        let t = ThreadId::new(0);
        m.request(t, 0x40, 0, 350);
        m.request(t, 0x80, 5, 500);
        m.request(t, 0xc0, 7, 420);
        assert_eq!(m.latest_completion(t), Some(500));
        m.reset();
        assert_eq!(m.latest_completion(t), None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(1, 0);
    }
}
