//! Miss status handling registers (MSHRs).
//!
//! MSHRs are what make memory-level parallelism possible in hardware: each
//! outstanding cache-line miss occupies one MSHR, later accesses to the same line
//! merge into the existing entry, and independent misses proceed in parallel as
//! long as free MSHRs remain. The paper assumes the processor has enough MSHRs for
//! the ROB-limited MLP; the default configuration provides 32 per thread.
//!
//! Entries are tracked per *requester*: on the single-core machine a
//! requester is a hardware thread; on a chip a requester is one `(core,
//! thread)` slot, so the file also bounds each core's outstanding misses at
//! the shared LLC.

use std::collections::HashMap;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the miss proceeds to the next memory level.
    Allocated,
    /// The line is already outstanding; this access merges and completes at the
    /// contained cycle.
    Merged(u64),
    /// No MSHR is free; the access must serialize behind the returned completion
    /// cycle of the soonest-finishing outstanding miss.
    Full(u64),
}

/// A per-requester file of miss status handling registers.
///
/// # Example
///
/// ```
/// use smt_mem::MshrFile;
///
/// let mut mshrs = MshrFile::new(2, 4);
/// assert!(matches!(mshrs.request(0, 0x1000, 100, 450), smt_mem::mshr::MshrOutcome::Allocated));
/// // A second access to the same line merges with the outstanding miss.
/// assert!(matches!(mshrs.request(0, 0x1000, 120, 470), smt_mem::mshr::MshrOutcome::Merged(450)));
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    outstanding: Vec<HashMap<u64, u64>>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries for each of
    /// `num_requesters` requesters (threads, or `(core, thread)` slots on a
    /// chip).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(num_requesters: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            capacity,
            outstanding: vec![HashMap::new(); num_requesters],
        }
    }

    /// Presents a miss for the cache line containing `line_addr` at `now`; if a new
    /// entry is allocated it will complete at `completion`.
    pub fn request(
        &mut self,
        requester: usize,
        line_addr: u64,
        now: u64,
        completion: u64,
    ) -> MshrOutcome {
        self.retire_completed(requester, now);
        let map = &mut self.outstanding[requester];
        if let Some(&done) = map.get(&line_addr) {
            return MshrOutcome::Merged(done);
        }
        if map.len() >= self.capacity {
            let soonest = *map.values().min().expect("full MSHR file is non-empty");
            return MshrOutcome::Full(soonest);
        }
        map.insert(line_addr, completion);
        MshrOutcome::Allocated
    }

    /// Removes entries whose miss has completed by `now`.
    pub fn retire_completed(&mut self, requester: usize, now: u64) {
        self.outstanding[requester].retain(|_, &mut done| done > now); // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
    }

    /// Number of misses outstanding for `requester` at `now`.
    pub fn outstanding_count(&mut self, requester: usize, now: u64) -> usize {
        self.retire_completed(requester, now);
        self.outstanding[requester].len()
    }

    /// Completion cycle of the latest-finishing outstanding miss, if any.
    pub fn latest_completion(&self, requester: usize) -> Option<u64> {
        self.outstanding[requester].values().copied().max() // analyze: allow(determinism) reason="retain/min/max over a hash set is order-independent: the predicate and fold are commutative"
    }

    /// Number of entries currently held across all requesters, ignoring
    /// completion times (zero means the file is structurally empty and a
    /// checkpoint boundary is safe).
    pub fn total_entries(&self) -> usize {
        self.outstanding.iter().map(|m| m.len()).sum()
    }

    /// Clears all outstanding state (between runs).
    pub fn reset(&mut self) {
        for map in &mut self.outstanding {
            map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_full() {
        let mut m = MshrFile::new(1, 2);
        assert_eq!(m.request(0, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.request(0, 0x40, 10, 360), MshrOutcome::Merged(350));
        assert_eq!(m.request(0, 0x80, 10, 360), MshrOutcome::Allocated);
        assert_eq!(m.request(0, 0xc0, 20, 370), MshrOutcome::Full(350));
    }

    #[test]
    fn completed_entries_retire() {
        let mut m = MshrFile::new(1, 1);
        assert_eq!(m.request(0, 0x40, 0, 100), MshrOutcome::Allocated);
        // At cycle 100 the miss is done, so a new miss can allocate.
        assert_eq!(m.request(0, 0x80, 100, 450), MshrOutcome::Allocated);
        assert_eq!(m.outstanding_count(0, 100), 1);
        assert_eq!(m.outstanding_count(0, 450), 0);
    }

    #[test]
    fn requesters_are_independent() {
        let mut m = MshrFile::new(2, 1);
        assert_eq!(m.request(0, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.request(1, 0x40, 0, 350), MshrOutcome::Allocated);
        assert_eq!(m.outstanding_count(0, 10), 1);
        assert_eq!(m.outstanding_count(1, 10), 1);
    }

    #[test]
    fn latest_completion_tracks_max() {
        let mut m = MshrFile::new(1, 4);
        m.request(0, 0x40, 0, 350);
        m.request(0, 0x80, 5, 500);
        m.request(0, 0xc0, 7, 420);
        assert_eq!(m.latest_completion(0), Some(500));
        m.reset();
        assert_eq!(m.latest_completion(0), None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(1, 0);
    }
}
