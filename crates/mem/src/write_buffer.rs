//! Post-commit store write buffer.
//!
//! The paper adds an 8-entry write buffer to SMTSIM: "store operations leave the
//! ROB upon commit and wait in the write buffer for writing to the memory
//! subsystem; commit blocks in case the write buffer is full and we want to commit
//! a store."

/// A bounded FIFO of stores draining to the memory subsystem.
///
/// # Example
///
/// ```
/// use smt_mem::WriteBuffer;
/// let mut wb = WriteBuffer::new(2, 10);
/// assert!(wb.try_push(0));
/// assert!(wb.try_push(0));
/// assert!(!wb.try_push(0));      // full: commit would block
/// assert!(wb.try_push(10));      // first entry drained by cycle 10
/// ```
#[derive(Clone, Debug)]
pub struct WriteBuffer {
    capacity: usize,
    drain_latency: u64,
    /// Completion cycles of in-flight stores, oldest first.
    entries: Vec<u64>,
    total_stores: u64,
    full_rejections: u64,
}

impl WriteBuffer {
    /// Creates a write buffer with `capacity` entries that each take
    /// `drain_latency` cycles to write out.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, drain_latency: u64) -> Self {
        assert!(capacity > 0, "write buffer capacity must be non-zero");
        WriteBuffer {
            capacity,
            drain_latency,
            entries: Vec::with_capacity(capacity),
            total_stores: 0,
            full_rejections: 0,
        }
    }

    fn drain(&mut self, now: u64) {
        self.entries.retain(|&done| done > now);
    }

    /// Attempts to enqueue a committing store at `now`. Returns `false` when the
    /// buffer is full (the commit stage must retry next cycle).
    pub fn try_push(&mut self, now: u64) -> bool {
        self.drain(now);
        if self.entries.len() >= self.capacity {
            self.full_rejections += 1;
            return false;
        }
        // Stores drain one after another: a new store completes after the last one.
        let start = self.entries.last().copied().unwrap_or(now).max(now);
        self.entries.push(start + self.drain_latency);
        self.total_stores += 1;
        true
    }

    /// Number of stores currently buffered at `now`.
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.drain(now);
        self.entries.len()
    }

    /// Total stores accepted.
    pub fn total_stores(&self) -> u64 {
        self.total_stores
    }

    /// Number of times a push was rejected because the buffer was full.
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// Empties the buffer.
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_blocks() {
        let mut wb = WriteBuffer::new(2, 100);
        assert!(wb.try_push(0));
        assert!(wb.try_push(0));
        assert!(!wb.try_push(50));
        assert_eq!(wb.full_rejections(), 1);
        assert_eq!(wb.occupancy(50), 2);
    }

    #[test]
    fn drains_over_time() {
        let mut wb = WriteBuffer::new(2, 100);
        wb.try_push(0); // done at 100
        wb.try_push(0); // done at 200 (serialized)
        assert_eq!(wb.occupancy(150), 1);
        assert!(wb.try_push(150));
        assert_eq!(wb.occupancy(201), 1); // the 150 push drains at 300
        assert_eq!(wb.occupancy(301), 0);
        assert_eq!(wb.total_stores(), 3);
    }

    #[test]
    fn reset_empties() {
        let mut wb = WriteBuffer::new(4, 10);
        wb.try_push(0);
        wb.try_push(0);
        wb.reset();
        assert_eq!(wb.occupancy(0), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = WriteBuffer::new(0, 10);
    }
}
