//! The memory hierarchy queried by the pipeline, split into per-core private
//! levels ([`CoreMemory`]) and the chip-shared bottom level
//! ([`crate::shared::SharedLlc`]).
//!
//! [`CoreMemory`] owns everything private to one SMT core: L1I/L1D, the
//! private L2, both TLBs, the stream-buffer prefetcher, and the per-thread
//! long-latency serialization state. Every access that misses the private
//! levels is presented to a [`SharedLlc`] borrowed from the caller — the
//! single-core machine owns one exclusively (via the [`MemoryHierarchy`]
//! facade, which preserves the pre-split API bit-for-bit), while a chip
//! passes the same shared level to all of its cores each cycle.

use serde::{Deserialize, Serialize};
use smt_types::{SmtConfig, ThreadId};

use crate::cache::{CacheState, SetAssocCache};
use crate::mshr::MshrOutcome;
use crate::prefetch::{PrefetcherState, StreamBufferPrefetcher};
use crate::shared::{SharedLevel, SharedLlc};
use crate::tlb::{TlbFile, TlbFileState};

/// Deepest level that had to service a data access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessLevel {
    /// L1 data cache hit.
    L1,
    /// Satisfied by an in-flight or completed stream-buffer prefetch.
    Prefetch,
    /// Unified (core-private) L2 hit.
    L2,
    /// Shared last-level cache hit (the single-core machine's L3).
    L3,
    /// Off-chip main memory access (an LLC miss).
    Memory,
}

/// Timing and classification of one load access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadAccessResult {
    /// Cycle at which the access started (issue time of the load).
    pub start_cycle: u64,
    /// Total latency in cycles until the data is available.
    pub latency: u64,
    /// Deepest level that serviced the access.
    pub level: AccessLevel,
    /// Whether the access missed in the D-TLB.
    pub dtlb_miss: bool,
    /// Whether the access missed in the L1 data cache.
    pub l1_miss: bool,
    /// Whether the access missed in the L2.
    pub l2_miss: bool,
    /// Whether the access was (fully or partially) covered by the prefetcher.
    pub prefetch_hit: bool,
    /// The paper's long-latency load definition: an LLC load miss or a D-TLB miss.
    pub long_latency: bool,
}

impl LoadAccessResult {
    /// Cycle at which the loaded value becomes available.
    pub fn completion_cycle(&self) -> u64 {
        self.start_cycle + self.latency
    }
}

/// Serializable snapshot of a [`CoreMemory`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CoreMemoryState {
    /// L1 instruction cache contents.
    pub l1i: CacheState,
    /// L1 data cache contents.
    pub l1d: CacheState,
    /// Private L2 contents.
    pub l2: CacheState,
    /// Instruction TLB contents.
    pub itlb: TlbFileState,
    /// Data TLB contents.
    pub dtlb: TlbFileState,
    /// Prefetcher stride table and stream buffers.
    pub prefetcher: PrefetcherState,
    /// Per-thread completion cycle of the last long-latency load.
    pub last_lll_completion: Vec<u64>,
}

/// The core-private memory levels of Table IV: L1 caches, private L2, TLBs,
/// prefetcher, and per-thread long-latency serialization state.
///
/// L1/L2 capacity is shared between the SMT threads of the core (threads
/// compete), while TLBs, MSHR slots and stream buffers are effectively per
/// thread. Thread (and core) address spaces are kept disjoint by folding the
/// chip-wide requester id into the physical address.
#[derive(Clone, Debug)]
pub struct CoreMemory {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    itlb: TlbFile,
    dtlb: TlbFile,
    prefetcher: StreamBufferPrefetcher,
    memory_latency: u64,
    serialize_long_latency: bool,
    last_lll_completion: Vec<u64>,
    line_bytes: u64,
    /// First chip-wide requester id of this core (`core_id * num_threads`).
    requester_base: usize,
}

impl CoreMemory {
    /// Builds the private levels of core `core_id` described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(config: &SmtConfig, core_id: usize) -> Self {
        config.validate().expect("invalid SMT configuration");
        CoreMemory {
            l1i: SetAssocCache::new(&config.l1i),
            l1d: SetAssocCache::new(&config.l1d),
            l2: SetAssocCache::new(&config.l2),
            itlb: TlbFile::new(&config.itlb, config.num_threads),
            dtlb: TlbFile::new(&config.dtlb, config.num_threads),
            prefetcher: StreamBufferPrefetcher::new(
                config.prefetcher,
                config.l1d.line_bytes as u64,
                config.memory_latency,
            ),
            memory_latency: config.memory_latency,
            serialize_long_latency: config.serialize_long_latency_loads,
            last_lll_completion: vec![0; config.num_threads],
            line_bytes: config.l1d.line_bytes as u64,
            requester_base: core_id * config.num_threads,
        }
    }

    /// Chip-wide requester id of `thread` on this core (MSHR slot index).
    fn requester(&self, thread: ThreadId) -> usize {
        self.requester_base + thread.index()
    }

    /// Folds the requester id into the address so that thread (and core)
    /// address spaces never alias (each synthetic benchmark has its own
    /// virtual address space).
    fn physical(&self, thread: ThreadId, addr: u64) -> u64 {
        addr ^ ((self.requester(thread) as u64) << 44)
    }

    /// Performs a data load issued by the static load at `pc` at `cycle` and
    /// returns its timing/classification. Misses below the private L2 are
    /// serviced by `shared`.
    pub fn load_access<S: SharedLevel>(
        &mut self,
        shared: &mut S,
        thread: ThreadId,
        pc: u64,
        addr: u64,
        cycle: u64,
    ) -> LoadAccessResult {
        let paddr = self.physical(thread, addr);
        let mut latency = 0u64;
        let dtlb_hit = self.dtlb.access(thread.index(), paddr);
        let dtlb_miss = !dtlb_hit;
        if dtlb_miss {
            latency += self.dtlb.miss_penalty();
        }

        // Train the stride predictor on every load, hit or miss.
        self.prefetcher.train(thread, pc, paddr);

        let mut result = LoadAccessResult {
            start_cycle: cycle,
            latency: 0,
            level: AccessLevel::L1,
            dtlb_miss,
            l1_miss: false,
            l2_miss: false,
            prefetch_hit: false,
            long_latency: dtlb_miss,
        };

        if self.l1d.access(paddr) {
            result.latency = latency + self.l1d.latency();
            return self.finish_serialized(thread, result);
        }
        result.l1_miss = true;

        if let Some(hit) = self.prefetcher.probe(thread, paddr, cycle) {
            // Line is (or will shortly be) in a stream buffer: pay the larger of the
            // L2 latency and the remaining prefetch in-flight time.
            let remaining = hit.available_at.saturating_sub(cycle);
            result.latency = latency + self.l2.latency().max(remaining);
            result.level = AccessLevel::Prefetch;
            result.prefetch_hit = true;
            self.l1d.fill(paddr);
            return self.finish_serialized(thread, result);
        }

        if self.l2.access(paddr) {
            result.latency = latency + self.l2.latency();
            result.level = AccessLevel::L2;
            self.l1d.fill(paddr);
            return self.finish_serialized(thread, result);
        }
        result.l2_miss = true;

        if shared.access(paddr) {
            result.latency = latency + shared.latency();
            result.level = AccessLevel::L3;
            self.l2.fill(paddr);
            self.l1d.fill(paddr);
            return self.finish_serialized(thread, result);
        }

        // Off-chip access: a long-latency load by the paper's definition. The
        // transfer contends for the shared memory bus (free on the
        // single-core machine's unlimited bus).
        result.level = AccessLevel::Memory;
        result.long_latency = true;
        let line = paddr / self.line_bytes;
        let congestion = shared.queue_delay();
        let nominal_completion = cycle + latency + self.memory_latency + congestion;
        let completion =
            match shared.mshr_request(self.requester(thread), line, cycle, nominal_completion) {
                MshrOutcome::Allocated => {
                    shared.register_transfer(nominal_completion);
                    nominal_completion
                }
                MshrOutcome::Merged(done) => done.max(cycle + self.l2.latency()),
                MshrOutcome::Full(soonest) => {
                    let serialized = soonest.max(cycle) + self.memory_latency + congestion;
                    shared.register_transfer(serialized);
                    serialized
                }
            };
        result.latency = completion.saturating_sub(cycle).max(1);
        self.prefetcher.on_demand_miss(thread, pc, paddr, cycle);
        shared.fill(paddr);
        self.l2.fill(paddr);
        self.l1d.fill(paddr);
        self.finish_serialized(thread, result)
    }

    /// Applies the artificial long-latency-load serialization used by the Table I
    /// "MLP impact" characterization: when enabled, a long-latency load cannot begin
    /// its memory access before the previous long-latency load of the same thread
    /// has completed.
    fn finish_serialized(
        &mut self,
        thread: ThreadId,
        mut result: LoadAccessResult,
    ) -> LoadAccessResult {
        if result.long_latency {
            if self.serialize_long_latency {
                let prev = self.last_lll_completion[thread.index()];
                let serialized_completion =
                    prev.max(result.start_cycle) + result.latency.max(self.memory_latency);
                if serialized_completion > result.completion_cycle() {
                    result.latency = serialized_completion - result.start_cycle;
                }
            }
            self.last_lll_completion[thread.index()] =
                self.last_lll_completion[thread.index()].max(result.completion_cycle());
        }
        result
    }

    /// Performs a store for cache-content purposes (write-allocate, no timing: store
    /// latency is hidden behind the write buffer at commit).
    pub fn store_access<S: SharedLevel>(
        &mut self,
        shared: &mut S,
        thread: ThreadId,
        addr: u64,
        _cycle: u64,
    ) {
        let paddr = self.physical(thread, addr);
        let _ = self.dtlb.access(thread.index(), paddr);
        if !self.l1d.access(paddr) {
            self.l1d.fill(paddr);
            self.l2.fill(paddr);
            shared.fill(paddr);
        }
    }

    /// Instruction fetch of the line containing `pc`; returns the fetch latency in
    /// cycles (1 on an L1 I-cache hit).
    pub fn fetch_access<S: SharedLevel>(
        &mut self,
        shared: &mut S,
        thread: ThreadId,
        pc: u64,
        cycle: u64,
    ) -> u64 {
        let paddr = self.physical(thread, pc);
        let _ = self.itlb.access(thread.index(), paddr);
        if self.l1i.access(paddr) {
            return self.l1i.latency();
        }
        if self.l2.access(paddr) {
            self.l1i.fill(paddr);
            return self.l2.latency();
        }
        if shared.access(paddr) {
            self.l2.fill(paddr);
            self.l1i.fill(paddr);
            return shared.latency();
        }
        shared.fill(paddr);
        self.l2.fill(paddr);
        self.l1i.fill(paddr);
        let latency = self.memory_latency + shared.queue_delay();
        shared.register_transfer(cycle + latency);
        latency
    }

    /// Functional (fast-forward) data load: performs exactly the warm-state
    /// transitions of [`CoreMemory::load_access`] — TLB installs, stride
    /// training, fills down the hierarchy, stream-buffer consumption — but no
    /// timing: no MSHR allocation, no bus transfers, no long-latency-load
    /// serialization. Returns the paper's long-latency classification (LLC
    /// load miss or D-TLB miss), which fast-forward mode uses to keep the
    /// LLL/MLP predictors trained.
    ///
    /// `now` stamps stream-buffer availability times; fast-forward callers
    /// pass their frozen cycle.
    pub fn warm_load<S: SharedLevel>(
        &mut self,
        shared: &mut S,
        thread: ThreadId,
        pc: u64,
        addr: u64,
        now: u64,
    ) -> bool {
        let paddr = self.physical(thread, addr);
        let dtlb_miss = !self.dtlb.access(thread.index(), paddr);
        self.prefetcher.train(thread, pc, paddr);
        if self.l1d.access(paddr) {
            return dtlb_miss;
        }
        if self.prefetcher.probe(thread, paddr, now).is_some() {
            self.l1d.fill(paddr);
            return dtlb_miss;
        }
        if self.l2.access(paddr) {
            self.l1d.fill(paddr);
            return dtlb_miss;
        }
        if shared.access(paddr) {
            self.l2.fill(paddr);
            self.l1d.fill(paddr);
            return dtlb_miss;
        }
        self.prefetcher.on_demand_miss(thread, pc, paddr, now);
        shared.fill(paddr);
        self.l2.fill(paddr);
        self.l1d.fill(paddr);
        true
    }

    /// Functional (fast-forward) store: identical to
    /// [`CoreMemory::store_access`], which is already timing-free.
    pub fn warm_store<S: SharedLevel>(&mut self, shared: &mut S, thread: ThreadId, addr: u64) {
        self.store_access(shared, thread, addr, 0);
    }

    /// Captures the private-level warm state for a checkpoint.
    pub fn state(&self) -> CoreMemoryState {
        CoreMemoryState {
            l1i: self.l1i.state(),
            l1d: self.l1d.state(),
            l2: self.l2.state(),
            itlb: self.itlb.state(),
            dtlb: self.dtlb.state(),
            prefetcher: self.prefetcher.state(),
            last_lll_completion: self.last_lll_completion.clone(),
        }
    }

    /// Restores a state captured with [`CoreMemory::state`]. Fails when any
    /// structure's geometry differs.
    pub fn restore_state(&mut self, state: &CoreMemoryState) -> Result<(), String> {
        if state.last_lll_completion.len() != self.last_lll_completion.len() {
            return Err(format!(
                "thread count mismatch: state has {}, core has {}",
                state.last_lll_completion.len(),
                self.last_lll_completion.len()
            ));
        }
        self.l1i.restore_state(&state.l1i)?;
        self.l1d.restore_state(&state.l1d)?;
        self.l2.restore_state(&state.l2)?;
        self.itlb.restore_state(&state.itlb)?;
        self.dtlb.restore_state(&state.dtlb)?;
        self.prefetcher.restore_state(&state.prefetcher)?;
        self.last_lll_completion
            .copy_from_slice(&state.last_lll_completion);
        Ok(())
    }

    /// Number of data prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetcher.prefetches_issued()
    }

    /// Number of demand misses covered by the prefetcher so far.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetcher.prefetch_hits()
    }

    /// L1 data-cache hit rate so far.
    pub fn l1d_hit_rate(&self) -> f64 {
        self.l1d.hit_rate()
    }

    /// Clears all private cache, TLB and prefetcher state.
    pub fn reset(&mut self) {
        self.l1i.flush_all();
        self.l1d.flush_all();
        self.l2.flush_all();
        self.itlb.flush_all();
        self.dtlb.flush_all();
        self.prefetcher.reset();
        for c in &mut self.last_lll_completion {
            *c = 0;
        }
    }
}

/// The fused single-core memory hierarchy of Table IV: one core's private
/// levels plus an exclusively owned shared level. This facade preserves the
/// pre-split API (and behaviour, bit for bit) for the single-core machine
/// and for tests; the chip simulator composes [`CoreMemory`] and
/// [`SharedLlc`] directly instead.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    core: CoreMemory,
    shared: SharedLlc,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(config: &SmtConfig) -> Self {
        MemoryHierarchy {
            core: CoreMemory::new(config, 0),
            shared: SharedLlc::single_core(config),
        }
    }

    /// Performs a data load issued by the static load at `pc` at `cycle` and
    /// returns its timing/classification.
    pub fn load_access(
        &mut self,
        thread: ThreadId,
        pc: u64,
        addr: u64,
        cycle: u64,
    ) -> LoadAccessResult {
        self.core
            .load_access(&mut self.shared, thread, pc, addr, cycle)
    }

    /// Performs a store for cache-content purposes.
    pub fn store_access(&mut self, thread: ThreadId, addr: u64, cycle: u64) {
        self.core
            .store_access(&mut self.shared, thread, addr, cycle);
    }

    /// Instruction fetch of the line containing `pc`; returns the fetch latency.
    pub fn fetch_access(&mut self, thread: ThreadId, pc: u64, cycle: u64) -> u64 {
        self.core.fetch_access(&mut self.shared, thread, pc, cycle)
    }

    /// Number of data prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.core.prefetches_issued()
    }

    /// Number of demand misses covered by the prefetcher so far.
    pub fn prefetch_hits(&self) -> u64 {
        self.core.prefetch_hits()
    }

    /// L1 data-cache hit rate so far.
    pub fn l1d_hit_rate(&self) -> f64 {
        self.core.l1d_hit_rate()
    }

    /// Clears all cache, TLB, MSHR and prefetcher state.
    pub fn reset(&mut self) {
        self.core.reset();
        self.shared.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_types::SmtConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&SmtConfig::baseline(2))
    }

    #[test]
    fn cold_miss_is_long_latency_then_hits() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        let first = m.load_access(t, 0x40, 0x100000, 0);
        assert!(first.long_latency);
        assert_eq!(first.level, AccessLevel::Memory);
        assert!(first.latency >= 350);
        let again = m.load_access(t, 0x40, 0x100000, first.completion_cycle() + 1);
        assert_eq!(again.level, AccessLevel::L1);
        assert!(!again.long_latency);
        assert!(again.latency <= 3);
    }

    #[test]
    fn independent_misses_overlap_via_mshrs() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        // Warm the two pages so the later misses are pure LLC misses (no TLB walk).
        let w0 = m.load_access(t, 0x40, 0x1_000_000, 0);
        let w1 = m.load_access(t, 0x48, 0x2_000_000, 1);
        let start = w0.completion_cycle().max(w1.completion_cycle()) + 1;
        let a = m.load_access(t, 0x50, 0x1_000_100, start);
        let b = m.load_access(t, 0x58, 0x2_000_100, start + 1);
        // Both complete roughly one memory latency after issue: they overlap.
        assert!(a.completion_cycle() <= start + 400);
        assert!(b.completion_cycle() <= start + 1 + 400);
        assert!(b.completion_cycle() < a.completion_cycle() + 350 / 2);
    }

    #[test]
    fn serialization_knob_serializes_misses() {
        let mut cfg = SmtConfig::baseline(1);
        cfg.serialize_long_latency_loads = true;
        let mut m = MemoryHierarchy::new(&cfg);
        let t = ThreadId::new(0);
        let a = m.load_access(t, 0x40, 0x1_000_000, 0);
        let b = m.load_access(t, 0x48, 0x2_000_000, 1);
        assert!(b.completion_cycle() >= a.completion_cycle() + 350);
    }

    #[test]
    fn dtlb_miss_is_long_latency_even_on_cache_hit() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        // Touch a line so it is in the caches.
        let first = m.load_access(t, 0x40, 0x42_0000, 0);
        // Fill the D-TLB with 512 other pages to evict the translation.
        for i in 0..600u64 {
            let _ = m.load_access(t, 0x60, 0x100_0000 + i * 8192, 1000 + i);
        }
        let again = m.load_access(t, 0x40, 0x42_0000, 1_000_000);
        assert!(again.dtlb_miss);
        assert!(again.long_latency);
        assert!(again.latency >= 350);
        let _ = first;
    }

    #[test]
    fn same_line_misses_merge_in_mshr() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        let a = m.load_access(t, 0x40, 0x3_000_000, 0);
        // Second access to the same line before the first returns: the line has
        // already been filled by the model, so it hits; access a different word of a
        // line that is still outstanding in MSHR terms is covered by fill+hit.
        let b = m.load_access(t, 0x48, 0x3_000_008, 5);
        assert!(b.completion_cycle() <= a.completion_cycle() + 5);
    }

    #[test]
    fn threads_have_disjoint_address_spaces() {
        let mut m = hierarchy();
        let a = m.load_access(ThreadId::new(0), 0x40, 0x500_000, 0);
        // Thread 1 touching the "same" virtual address must still be a cold miss.
        let b = m.load_access(ThreadId::new(1), 0x40, 0x500_000, a.completion_cycle() + 1);
        assert_eq!(b.level, AccessLevel::Memory);
    }

    #[test]
    fn cores_have_disjoint_address_spaces() {
        // Two cores sharing one LLC: the same virtual address on different
        // cores maps to different physical lines.
        let chip = smt_types::ChipConfig::baseline(2, 2);
        let mut shared = SharedLlc::for_chip(&chip);
        let mut core0 = CoreMemory::new(&chip.core, 0);
        let mut core1 = CoreMemory::new(&chip.core, 1);
        let t = ThreadId::new(0);
        shared.begin_cycle(0);
        let a = core0.load_access(&mut shared, t, 0x40, 0x500_000, 0);
        shared.end_cycle();
        assert_eq!(a.level, AccessLevel::Memory);
        let start = a.completion_cycle() + 1;
        shared.begin_cycle(start);
        let b = core1.load_access(&mut shared, t, 0x40, 0x500_000, start);
        shared.end_cycle();
        assert_eq!(b.level, AccessLevel::Memory);
    }

    #[test]
    fn bus_contention_slows_cross_core_misses() {
        // With a contended bus, a second core's off-chip miss issued the
        // cycle after another transfer went in flight pays queueing delay.
        let chip = smt_types::ChipConfig::baseline(2, 2).with_bus_bytes_per_cycle(8);
        let mut shared = SharedLlc::for_chip(&chip);
        let mut core0 = CoreMemory::new(&chip.core, 0);
        let mut core1 = CoreMemory::new(&chip.core, 1);
        let t = ThreadId::new(0);
        // Warm both pages so the timed misses below have no TLB component.
        shared.begin_cycle(0);
        let w0 = core0.load_access(&mut shared, t, 0x40, 0x1_000_000, 0);
        let w1 = core1.load_access(&mut shared, t, 0x40, 0x2_000_000, 0);
        shared.end_cycle();
        let start = w0.completion_cycle().max(w1.completion_cycle()) + 1;
        shared.begin_cycle(start);
        let a = core0.load_access(&mut shared, t, 0x50, 0x1_000_100, start);
        shared.end_cycle();
        shared.begin_cycle(start + 1);
        let b = core1.load_access(&mut shared, t, 0x50, 0x2_000_100, start + 1);
        shared.end_cycle();
        assert_eq!(a.latency, chip.core.memory_latency);
        assert_eq!(
            b.latency,
            chip.core.memory_latency + chip.bus.transfer_cycles(64),
            "second transfer should queue behind the first"
        );
    }

    #[test]
    fn strided_stream_gets_prefetched() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        let base = 0x4_000_000u64;
        let mut now = 0u64;
        let mut prefetch_hits = 0;
        for i in 0..64u64 {
            let r = m.load_access(t, 0x40, base + i * 64, now);
            now = r.completion_cycle() + 1;
            if r.prefetch_hit {
                prefetch_hits += 1;
            }
        }
        assert!(
            prefetch_hits > 10,
            "stream should be prefetched, got {prefetch_hits}"
        );
    }

    #[test]
    fn fetch_access_uses_icache() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        let cold = m.fetch_access(t, 0x8000, 0);
        assert!(cold >= 11);
        let warm = m.fetch_access(t, 0x8004, 1);
        assert_eq!(warm, 1);
    }

    #[test]
    fn store_allocates_line() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        m.store_access(t, 0x9_000_000, 0);
        let r = m.load_access(t, 0x40, 0x9_000_000, 10);
        assert_eq!(r.level, AccessLevel::L1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = hierarchy();
        let t = ThreadId::new(0);
        let _ = m.load_access(t, 0x40, 0xabc000, 0);
        m.reset();
        let r = m.load_access(t, 0x40, 0xabc000, 1000);
        assert_eq!(r.level, AccessLevel::Memory);
    }
}
