//! Property-based tests for the memory-hierarchy data structures.

use proptest::prelude::*;

use smt_mem::{MemoryHierarchy, MshrFile, SetAssocCache, Tlb};
use smt_types::config::{CacheConfig, TlbConfig};
use smt_types::{SmtConfig, ThreadId};

fn small_cache_config() -> impl Strategy<Value = CacheConfig> {
    (1u32..5, 0u32..4).prop_map(|(assoc_pow, sets_pow)| {
        let associativity = 1 << assoc_pow;
        let sets = 1u64 << (sets_pow + 2);
        CacheConfig {
            size_bytes: sets * associativity as u64 * 64,
            associativity,
            line_bytes: 64,
            latency: 2,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After filling a line it is always present until at least `associativity`
    /// distinct conflicting lines have been filled into the same set.
    #[test]
    fn cache_fill_then_probe_holds(config in small_cache_config(), addr in any::<u64>()) {
        let mut cache = SetAssocCache::new(&config);
        cache.fill(addr);
        prop_assert!(cache.probe(addr));
        prop_assert!(cache.access(addr));
    }

    /// Hits plus misses equals the number of lookups, and the hit rate is in [0,1].
    #[test]
    fn cache_counter_consistency(
        config in small_cache_config(),
        addrs in prop::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut cache = SetAssocCache::new(&config);
        for &a in &addrs {
            if !cache.access(a) {
                cache.fill(a);
            }
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert!(cache.hit_rate() >= 0.0 && cache.hit_rate() <= 1.0);
    }

    /// A TLB with N entries retains the N most recently used distinct pages.
    #[test]
    fn tlb_keeps_recent_pages(entries in 1u32..32, pages in prop::collection::vec(0u64..64, 1..200)) {
        let mut tlb = Tlb::new(&TlbConfig { entries, page_bytes: 8192, miss_penalty: 350 });
        for &p in &pages {
            tlb.access(p * 8192);
        }
        // The most recently accessed page is always resident.
        if let Some(&last) = pages.last() {
            prop_assert!(tlb.probe(last * 8192));
        }
    }

    /// The MSHR file never tracks more than its capacity of outstanding misses per
    /// thread, and merged requests never finish before `now`.
    #[test]
    fn mshr_capacity_respected(
        capacity in 1usize..16,
        lines in prop::collection::vec(0u64..32, 1..100),
    ) {
        let mut mshrs = MshrFile::new(1, capacity);
        for (i, &line) in lines.iter().enumerate() {
            let now = i as u64 * 3;
            let _ = mshrs.request(0, line, now, now + 350);
            prop_assert!(mshrs.outstanding_count(0, now) <= capacity);
        }
    }

    /// Loads of the same address become faster (or equal) on the second access and
    /// a completed access never reports zero latency.
    #[test]
    fn hierarchy_reaccess_is_never_slower(addr in 0u64..0x10_000_000u64) {
        let cfg = SmtConfig::baseline(1);
        let mut mem = MemoryHierarchy::new(&cfg);
        let t = ThreadId::new(0);
        let first = mem.load_access(t, 0x40, addr, 0);
        let second = mem.load_access(t, 0x40, addr, first.completion_cycle() + 1);
        prop_assert!(first.latency >= 1);
        prop_assert!(second.latency >= 1);
        prop_assert!(second.latency <= first.latency);
        prop_assert!(!second.long_latency);
    }
}
