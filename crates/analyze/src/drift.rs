//! The **registry-drift** rule: names cited in the docs and the benchmark
//! trajectory must exist in the source they claim to describe.
//!
//! Three sub-checks:
//!
//! 1. every experiment name cited in `README.md` / `EXPERIMENTS.md` (on an
//!    `smt-cli … run|describe <name>` invocation line, or as a backticked
//!    token shaped like an experiment name) exists in the registry source;
//! 2. every registered experiment name is documented in `EXPERIMENTS.md`;
//! 3. every bench scenario name recorded in `BENCH_throughput.json` exists
//!    as a string literal in the throughput matrix source.

use crate::rules::Finding;
use crate::scan::ScannedFile;

/// Cross-file inputs the rule reads. All optional: a missing input skips its
/// sub-checks (fixture tests exercise them in isolation).
#[derive(Default)]
pub struct DriftInputs<'a> {
    /// `crates/core/src/experiments/registry.rs`, scanned.
    pub registry: Option<&'a ScannedFile>,
    /// `crates/core/src/throughput.rs`, scanned.
    pub throughput: Option<&'a ScannedFile>,
    /// `(path, text)` of `README.md` and `EXPERIMENTS.md`.
    pub docs: Vec<(&'a str, &'a str)>,
    /// `(path, text)` of `BENCH_throughput.json`.
    pub bench_json: Option<(&'a str, &'a str)>,
}

/// Runs the rule.
pub(crate) fn check_drift(inputs: &DriftInputs<'_>, out: &mut Vec<Finding>) {
    let registry_names: Vec<(usize, String)> = inputs
        .registry
        .map(|f| {
            f.non_test_strings()
                .filter(|(_, s)| is_experiment_name(s))
                .map(|(l, s)| (l, s.to_string()))
                .collect()
        })
        .unwrap_or_default();

    if let Some(registry) = inputs.registry {
        for (path, text) in &inputs.docs {
            for (line_no, line) in text.lines().enumerate() {
                for cited in cited_experiment_names(line) {
                    if !registry_names.iter().any(|(_, n)| *n == cited) {
                        out.push(doc_finding(
                            path,
                            line_no + 1,
                            line,
                            format!("experiment `{cited}` is cited here but not registered in the experiment registry"),
                        ));
                    }
                }
            }
        }
        if let Some((_, experiments_text)) = inputs
            .docs
            .iter()
            .find(|(p, _)| p.ends_with("EXPERIMENTS.md"))
        {
            for (line, name) in &registry_names {
                if !experiments_text.contains(name.as_str()) {
                    out.push(Finding {
                        file: registry.path.clone(),
                        line: *line,
                        rule: "registry-drift",
                        message: format!(
                            "registered experiment `{name}` is not documented in EXPERIMENTS.md"
                        ),
                        excerpt: format!("\"{name}\""),
                    });
                }
            }
        }
    }

    if let (Some(throughput), Some((json_path, json_text))) = (inputs.throughput, inputs.bench_json)
    {
        let literals: Vec<&str> = throughput.non_test_strings().map(|(_, s)| s).collect();
        let mut seen: Vec<String> = Vec::new();
        for (line, name) in json_name_values(json_text) {
            if seen.contains(&name) {
                continue;
            }
            seen.push(name.clone());
            if !literals.contains(&name.as_str()) {
                out.push(doc_finding(
                    json_path,
                    line,
                    json_text.lines().nth(line - 1).unwrap_or_default(),
                    format!(
                        "bench scenario `{name}` is recorded in the trajectory but absent \
                         from the throughput matrix source"
                    ),
                ));
            }
        }
    }
}

fn doc_finding(path: &str, line: usize, raw: &str, message: String) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        rule: "registry-drift",
        message,
        excerpt: raw.trim().chars().take(120).collect(),
    }
}

/// The registry-name grammar: lowercase alphanumeric segments joined by
/// underscores, at least two segments, starting with a letter.
fn is_experiment_name(s: &str) -> bool {
    let mut segments = 0usize;
    if !s.starts_with(|c: char| c.is_ascii_lowercase()) {
        return false;
    }
    for seg in s.split('_') {
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Experiment names cited on one doc line: tokens after `run` / `describe`
/// on `smt-cli` invocation lines, plus backticked tokens matching the
/// experiment-name shapes used by the registry (`fig<digits>_…`,
/// `table<digits>_…`, `chip_<digit>…`, `adaptive_<digit>…`).
fn cited_experiment_names(line: &str) -> Vec<String> {
    let mut cited = Vec::new();
    if line.contains("smt-cli") {
        let tokens: Vec<&str> = line
            .split([' ', '\t', '`', '|'])
            .filter(|t| !t.is_empty())
            .collect();
        for pair in tokens.windows(2) {
            if (pair[0] == "run" || pair[0] == "describe") && is_experiment_name(pair[1]) {
                cited.push(pair[1].to_string());
            }
        }
    }
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let Some(len) = rest[open + 1..].find('`') else {
            break;
        };
        let token = &rest[open + 1..open + 1 + len];
        if is_shaped_citation(token) && !cited.contains(&token.to_string()) {
            cited.push(token.to_string());
        }
        rest = &rest[open + len + 2..];
    }
    cited
}

/// Backticked tokens checked even off invocation lines. Deliberately narrow:
/// underscore required after the `fig`/`table` ordinal, digit required after
/// `chip_`/`adaptive_`/`trace_`, so kind names (`chip_grid`, `adaptive_grid`)
/// and API names (`table1`) stay out of scope.
fn is_shaped_citation(token: &str) -> bool {
    if !is_experiment_name(token) {
        return false;
    }
    for prefix in ["fig", "table"] {
        if let Some(rest) = token.strip_prefix(prefix) {
            if rest.starts_with(|c: char| c.is_ascii_digit()) {
                let after: &str = rest.trim_start_matches(|c: char| c.is_ascii_digit());
                return after.starts_with('_');
            }
        }
    }
    for prefix in ["chip_", "adaptive_", "trace_"] {
        if let Some(rest) = token.strip_prefix(prefix) {
            return rest.starts_with(|c: char| c.is_ascii_digit());
        }
    }
    false
}

/// `(line, value)` of every `"name": "<value>"` pair in a JSON text,
/// extracted with a scanner rather than a JSON parser (vendored-deps-only).
fn json_name_values(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("\"name\"") {
            let tail = rest[at + 6..].trim_start();
            let Some(tail) = tail.strip_prefix(':') else {
                rest = &rest[at + 6..];
                continue;
            };
            let tail = tail.trim_start();
            if let Some(tail) = tail.strip_prefix('"') {
                if let Some(end) = tail.find('"') {
                    out.push((idx + 1, tail[..end].to_string()));
                }
            }
            rest = &rest[at + 6..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_name_grammar() {
        assert!(is_experiment_name("fig09_two_thread_policies"));
        assert!(is_experiment_name("table1_characterization"));
        assert!(is_experiment_name("fig06_08_predictor_accuracy"));
        assert!(!is_experiment_name("mcf"));
        assert!(!is_experiment_name("4t_mix_icount"));
        assert!(!is_experiment_name("Fig09_x"));
        assert!(!is_experiment_name("a__b"));
    }

    #[test]
    fn shaped_citations_exclude_kind_and_api_names() {
        assert!(is_shaped_citation("fig09_two_thread_policies"));
        assert!(is_shaped_citation("chip_2c2t_adaptive"));
        assert!(is_shaped_citation("adaptive_4t"));
        assert!(is_shaped_citation("trace_2t_replay"));
        assert!(!is_shaped_citation("trace_replay_ingest"));
        assert!(!is_shaped_citation("chip_grid"));
        assert!(!is_shaped_citation("adaptive_grid"));
        assert!(!is_shaped_citation("table1"));
        assert!(!is_shaped_citation("memory_latency_sweep"));
    }

    #[test]
    fn invocation_lines_cite_names() {
        let cited =
            cited_experiment_names("cargo run -p smt-cli -- run fig09_two_thread_policies --scale");
        assert_eq!(cited, vec!["fig09_two_thread_policies".to_string()]);
        assert!(cited_experiment_names("`smt-cli run my.toml`").is_empty());
        assert!(cited_experiment_names("plain prose with `policy_comparison` tokens").is_empty());
    }

    #[test]
    fn json_names_extracted_with_lines() {
        let json =
            "{\n  \"scenarios\": [\n    { \"name\": \"4t_mix_icount\", \"cores\": 1 }\n  ]\n}";
        assert_eq!(
            json_name_values(json),
            vec![(3, "4t_mix_icount".to_string())]
        );
    }
}
