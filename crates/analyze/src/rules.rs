//! The named invariant rules.
//!
//! Each rule is a purely lexical check over [`crate::scan::ScannedFile`]s
//! (plus, for `registry-drift`, the docs and the benchmark trajectory file).
//! Rules deliberately over-approximate: a construct that *might* violate the
//! invariant is reported and must be either rewritten or explicitly
//! sanctioned with `// analyze: allow(<rule>) reason="..."`.

use crate::scan::{contains_word, find_word, ScannedFile};

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (one of [`RULE_IDS`], or `unused-allow` / `bad-annotation`).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// The enforced rule ids, i.e. the valid arguments to `analyze: allow(...)`.
pub const RULE_IDS: [&str; 8] = [
    "hot-path-alloc",
    "determinism",
    "swap-point",
    "config-hygiene",
    "registry-drift",
    "panic-policy",
    "sampling-discipline",
    "sync-discipline",
];

/// Crates whose sources must stay deterministic: everything that executes
/// *inside* a simulation, as opposed to the CLI / bench-harness shells.
const SIM_CRATES: [&str; 9] = [
    "types",
    "core",
    "fetch",
    "mem",
    "branch",
    "predictors",
    "sched",
    "adapt",
    "trace",
];

/// Paths holding per-cycle pipeline code, where the zero-allocation steady
/// state (PR 2) is enforced. The `.smtt` replay decoder is in scope too: its
/// `refill` feeds the fetch stage every ~64 instructions, so an allocation
/// there is paid on the same per-cycle cadence as one in the pipeline.
fn in_hot_path_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/pipeline/")
        || path.starts_with("crates/fetch/src/")
        || path.starts_with("crates/mem/src/")
        || path == "crates/trace/src/reader.rs"
}

fn in_sim_scope(path: &str) -> bool {
    SIM_CRATES.iter().any(|c| {
        path.strip_prefix("crates/")
            .and_then(|p| p.strip_prefix(c))
            .is_some_and(|p| p.starts_with("/src/"))
    })
}

/// The one file allowed to call `swap_policy`: the end-of-cycle adaptive
/// tick, the sanctioned swap point.
const SWAP_POINT_FILE: &str = "crates/core/src/pipeline/adaptive.rs";

/// The functional fast-forward file, where `sampling-discipline` pins that
/// warm-state code never reaches a statistics counter or moves simulated
/// time. If it did, sampled and exact runs would silently disagree about
/// what was measured.
const FAST_FORWARD_FILE: &str = "crates/core/src/pipeline/fast_forward.rs";

/// Statistics and cycle-accounting constructs forbidden in functional
/// fast-forward code. `(needle, needs_word_boundary_before)`. Assignment
/// patterns keep their trailing space so `cycle ==` comparisons and plain
/// `self.cycle` reads (both legal) do not match.
const SAMPLING_PATTERNS: [(&str, bool); 7] = [
    ("MachineStats", true),
    (".stats", false),
    ("measured_cycles", true),
    ("reset_stats", true),
    ("cycle = ", true),
    ("cycle += ", true),
    ("cycle -= ", true),
];

/// Allocation constructs forbidden in steady-state pipeline code. `(needle,
/// needs_word_boundary_before)`.
const ALLOC_PATTERNS: [(&str, bool); 14] = [
    (".collect::<", false),
    ("Vec::new(", true),
    ("VecDeque::new(", true),
    ("BinaryHeap::new(", true),
    ("HashMap::new(", true),
    ("HashSet::new(", true),
    ("String::new(", true),
    ("Box::new(", true),
    ("vec!", true),
    ("format!", true),
    (".collect(", false),
    (".to_vec(", false),
    (".to_owned(", false),
    (".to_string(", false),
];

/// `.clone(` is reported separately: the message explains the heap-type
/// qualifier (a `Copy`-type clone should simply be dereferenced instead).
const CLONE_PATTERN: &str = ".clone(";

/// Wall-clock, randomness and environment reads forbidden in simulation
/// crates.
const NONDETERMINISM_PATTERNS: [(&str, bool); 5] = [
    ("Instant", true),
    ("SystemTime", true),
    ("thread_rng", true),
    ("from_entropy", true),
    ("env::var", false),
];

/// The one module of the simulation crates sanctioned to hold threads,
/// locks and atomics: the chip-stepping worker pool.
const SYNC_MODULE: &str = "crates/core/src/chip/parallel.rs";

/// Host-harness files inside `smt-core` that orchestrate simulations from
/// the *outside* (experiment thread pools, panic quarantine, bench timing)
/// and therefore legitimately use synchronization primitives. Nothing in
/// them executes within a simulated cycle.
fn in_sync_harness(path: &str) -> bool {
    path.starts_with("crates/core/src/experiments/")
        || path == "crates/core/src/runner.rs"
        || path == "crates/core/src/throughput.rs"
}

/// Synchronization and escape-hatch constructs forbidden in simulation code
/// outside [`SYNC_MODULE`]. `(needle, needs_word_boundary_before)`;
/// `Atomic` prefix-matches the whole `AtomicU8`/`AtomicU64`/`AtomicBool`
/// family.
const SYNC_PATTERNS: [(&str, bool); 5] = [
    ("Mutex", true),
    ("RwLock", true),
    ("RefCell", true),
    ("Atomic", true),
    ("unsafe", true),
];

/// Method calls that observe hash-iteration order.
const HASH_ITER_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Runs the per-file rules over one scanned file.
pub(crate) fn check_file(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    if in_hot_path_scope(&file.path) {
        hot_path_alloc(file, raw, out);
    }
    if in_sim_scope(&file.path) {
        determinism(file, raw, out);
    }
    if file.path != SWAP_POINT_FILE {
        swap_point(file, raw, out);
    }
    if file.path.starts_with("crates/types/src/") {
        config_hygiene(file, raw, out);
    }
    if file.path.starts_with("crates/core/src/experiments/") {
        panic_policy(file, raw, out);
    }
    if file.path == FAST_FORWARD_FILE {
        sampling_discipline(file, raw, out);
    }
    if in_sim_scope(&file.path) && file.path != SYNC_MODULE && !in_sync_harness(&file.path) {
        sync_discipline(file, raw, out);
    }
}

fn finding(
    file: &ScannedFile,
    raw: &[&str],
    line: usize,
    rule: &'static str,
    message: String,
) -> Finding {
    let excerpt = raw
        .get(line - 1)
        .map(|l| {
            let t = l.trim();
            if t.len() > 120 {
                let mut end = 119;
                while !t.is_char_boundary(end) {
                    end -= 1;
                }
                format!("{}…", &t[..end])
            } else {
                t.to_string()
            }
        })
        .unwrap_or_default();
    Finding {
        file: file.path.clone(),
        line,
        rule,
        message,
        excerpt,
    }
}

/// **hot-path-alloc** — no heap allocation in per-cycle pipeline code outside
/// constructors and test regions.
fn hot_path_alloc(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.in_constructor {
            continue;
        }
        let code = line.code.as_str();
        for (pat, word_start) in ALLOC_PATTERNS {
            if matches_pattern(code, pat, word_start) {
                out.push(finding(
                    file,
                    raw,
                    idx + 1,
                    "hot-path-alloc",
                    format!("`{pat}` allocates on the heap in per-cycle pipeline code"),
                ));
            }
        }
        if matches_pattern(code, CLONE_PATTERN, false) {
            out.push(finding(
                file,
                raw,
                idx + 1,
                "hot-path-alloc",
                "`.clone()` in per-cycle pipeline code: heap-type clones allocate \
                 (for `Copy` types, dereference instead)"
                    .to_string(),
            ));
        }
    }
}

/// **determinism** — no wall-clock, randomness, environment reads or
/// hash-iteration-order dependence in simulation crates.
fn determinism(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    let hash_idents = collect_hash_idents(file);
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        for (pat, word) in NONDETERMINISM_PATTERNS {
            if matches_pattern(code, pat, word) {
                out.push(finding(
                    file,
                    raw,
                    idx + 1,
                    "determinism",
                    format!("`{pat}` is nondeterministic input to a simulation crate"),
                ));
            }
        }
        for m in hash_iteration_sites(code, &hash_idents) {
            out.push(finding(
                file,
                raw,
                idx + 1,
                "determinism",
                format!(
                    "iteration over hash-ordered container `{m}`: visit order is \
                     nondeterministic across std versions"
                ),
            ));
        }
    }
}

/// How a hash container is reached from an identifier.
#[derive(Clone, Copy, PartialEq)]
enum HashClass {
    /// The identifier *is* a `HashMap`/`HashSet`.
    Direct,
    /// The identifier is a collection *containing* hash containers
    /// (`Vec<HashMap<..>>`); indexing it yields one.
    Nested,
}

/// Scans declarations (`let` bindings, struct fields, parameters) for
/// identifiers bound to hash-container types.
fn collect_hash_idents(file: &ScannedFile) -> Vec<(String, HashClass)> {
    let mut idents: Vec<(String, HashClass)> = Vec::new();
    for line in &file.lines {
        let code = line.code.as_str();
        let hash_pos = match find_word(code, "HashMap", 0).or_else(|| find_word(code, "HashSet", 0))
        {
            Some(p) => p,
            None => continue,
        };
        // `let [mut] name ... = ...` or `name: Type` — find the binder to the
        // left of the hash token.
        let before = &code[..hash_pos];
        let (name, type_start) = if let Some(colon) = before.rfind(':') {
            // Skip paths (`std::collections::HashMap`): a `::` is not a type
            // ascription.
            if before.as_bytes().get(colon.wrapping_sub(1)) == Some(&b':')
                || before.as_bytes().get(colon + 1) == Some(&b':')
            {
                match let_binder(before) {
                    Some(name) => (name, before.len()),
                    None => continue,
                }
            } else {
                match trailing_ident(&before[..colon]) {
                    Some(name) => (name, colon + 1),
                    None => continue,
                }
            }
        } else {
            match let_binder(before) {
                Some(name) => (name, before.len()),
                None => continue,
            }
        };
        let ty = code[type_start..].trim_start();
        let ty = ty
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim_start_matches("std::collections::")
            .trim_start();
        let class = if ty.starts_with("HashMap") || ty.starts_with("HashSet") {
            HashClass::Direct
        } else {
            HashClass::Nested
        };
        if !idents.iter().any(|(n, c)| *n == name && *c == class) {
            idents.push((name, class));
        }
    }
    idents
}

/// The `let [mut] NAME` binder of a line, if it is a let statement.
fn let_binder(before: &str) -> Option<String> {
    let at = find_word(before, "let", 0)?;
    let rest = before[at + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// The identifier ending `text`, if any.
fn trailing_ident(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let name = &trimmed[start..];
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then(|| name.to_string())
}

/// Finds hash-container iteration on one line: `x.iter()` where `x` is a
/// hash container, `xs[i].retain(..)` where `xs` contains hash containers,
/// and `for .. in &x` over a hash container.
fn hash_iteration_sites(code: &str, idents: &[(String, HashClass)]) -> Vec<String> {
    let mut hits = Vec::new();
    for method in HASH_ITER_METHODS {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(method) {
            let at = from + pos;
            if let Some((name, indexed)) = receiver_ident(&code[..at]) {
                let flagged = idents.iter().any(|(n, class)| {
                    *n == name
                        && match class {
                            HashClass::Direct => !indexed,
                            HashClass::Nested => indexed,
                        }
                });
                if flagged && !hits.contains(&name) {
                    hits.push(name);
                }
            }
            from = at + method.len();
        }
    }
    // `for x in &container` / `for x in container`
    if let Some(for_at) = find_word(code, "for", 0) {
        if let Some(in_rel) = find_word(code, "in", for_at) {
            let expr = code[in_rel + 2..].trim_start().trim_end_matches('{').trim();
            let expr = expr.trim_start_matches('&').trim_start_matches("mut ");
            if !expr.contains('(') && !expr.contains('[') {
                if let Some(name) = trailing_ident(expr) {
                    if idents
                        .iter()
                        .any(|(n, c)| *n == name && *c == HashClass::Direct)
                        && !hits.contains(&name)
                    {
                        hits.push(name);
                    }
                }
            }
        }
    }
    hits
}

/// Walks backwards from a method call to its receiver identifier, skipping
/// one balanced `[..]` / `(..)` suffix group. Returns `(ident, was_indexed)`.
fn receiver_ident(before: &str) -> Option<(String, bool)> {
    let chars: Vec<char> = before.chars().collect();
    let mut i = chars.len();
    let mut indexed = false;
    loop {
        if i == 0 {
            return None;
        }
        match chars[i - 1] {
            ']' | ')' => {
                let open = if chars[i - 1] == ']' { '[' } else { '(' };
                let close = chars[i - 1];
                indexed = close == ']';
                let mut depth = 0i32;
                while i > 0 {
                    let c = chars[i - 1];
                    if c == close {
                        depth += 1;
                    } else if c == open {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    i -= 1;
                }
                if !indexed {
                    // A call suffix (`foo().iter()`): unknown result type.
                    return None;
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let end = i;
                while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
                    i -= 1;
                }
                let name: String = chars[i..end].iter().collect();
                return Some((name, indexed));
            }
            _ => return None,
        }
    }
}

/// **swap-point** — `swap_policy` may only be called from the adaptive
/// end-of-cycle tick.
fn swap_point(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        if code.contains("fn swap_policy") {
            continue;
        }
        if let Some(at) = find_word(code, "swap_policy", 0) {
            let rest = code[at + "swap_policy".len()..].trim_start();
            if rest.starts_with('(') {
                out.push(finding(
                    file,
                    raw,
                    idx + 1,
                    "swap-point",
                    "`swap_policy` called outside the sanctioned end-of-cycle swap \
                     point (crates/core/src/pipeline/adaptive.rs)"
                        .to_string(),
                ));
            }
        }
    }
}

/// **config-hygiene** — every `Deserialize` struct in `smt-types` must carry
/// `#[serde(deny_unknown_fields)]` so config typos fail loudly.
fn config_hygiene(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        if !(code.contains("derive(") && contains_word(code, "Deserialize")) {
            continue;
        }
        // Walk the attribute block down to the item; only structs need the
        // guard (enum variants are closed sets already).
        let mut has_deny = code.contains("deny_unknown_fields");
        let mut is_struct = false;
        for follow in file.lines.iter().skip(idx + 1).take(16) {
            let t = follow.code.trim();
            if t.starts_with("#[") || t.starts_with("#![") || t.is_empty() {
                has_deny |= t.contains("deny_unknown_fields");
                continue;
            }
            let t = t
                .strip_prefix("pub")
                .map(|r| {
                    r.trim_start_matches(|c: char| c == '(' || c == ')' || c.is_alphanumeric())
                })
                .unwrap_or(t)
                .trim_start();
            is_struct = t.starts_with("struct ");
            break;
        }
        if is_struct && !has_deny {
            out.push(finding(
                file,
                raw,
                idx + 1,
                "config-hygiene",
                "`Deserialize` struct without `#[serde(deny_unknown_fields)]`: \
                 config typos would be silently ignored"
                    .to_string(),
            ));
        }
    }
}

/// **panic-policy** — no bare `unwrap()` / `expect(` in the resilient
/// experiment engine. The engine's whole contract is that cell failures are
/// caught, classified and reported as [`CellOutcome`]s rather than crashing
/// the run, so non-test engine code must surface errors as `Result`s (or
/// carry an `analyze: allow(panic-policy)` explaining why the panic is
/// unreachable).
///
/// [`CellOutcome`]: https://docs.rs/smt-types
fn panic_policy(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        for pat in [".unwrap()", ".expect("] {
            if code.contains(pat) {
                out.push(finding(
                    file,
                    raw,
                    idx + 1,
                    "panic-policy",
                    format!(
                        "`{pat}` can panic inside the resilient experiment engine; \
                         propagate a `SimError` instead"
                    ),
                ));
            }
        }
    }
}

/// **sampling-discipline** — functional fast-forward code must not touch
/// statistics or cycle accounting. The sampled/exact equivalence of the
/// SMARTS-style engine rests on fast-forward advancing *only* warm state
/// (caches, TLBs, predictors, LLSR): a statistics update here would count
/// unmeasured instructions, and a cycle mutation would move simulated time
/// during a phase that is by definition timeless. Reading the frozen cycle
/// counter (e.g. to stamp stream-buffer availability) stays legal.
fn sampling_discipline(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        for (pat, word_start) in SAMPLING_PATTERNS {
            if matches_pattern(code, pat, word_start) {
                out.push(finding(
                    file,
                    raw,
                    idx + 1,
                    "sampling-discipline",
                    format!(
                        "`{}` in functional fast-forward code: warm-state \
                         warming must not touch statistics or cycle accounting",
                        pat.trim_end()
                    ),
                ));
            }
        }
    }
}

/// **sync-discipline** — simulation state is single-owner and stepped
/// deterministically; threads, locks, interior mutability and `unsafe` live
/// only in the sanctioned chip worker-pool module ([`SYNC_MODULE`]) and the
/// host-side harness files. Additionally, frozen read views (types named
/// `*View*`) must expose only `&self` methods: a `&mut self` method on a
/// view would let a worker mutate what the staged chip discipline promises
/// is frozen for the duration of the cycle.
fn sync_discipline(file: &ScannedFile, raw: &[&str], out: &mut Vec<Finding>) {
    // Brace depth of the body of the innermost `impl ... View ...` block, if
    // any; while inside one, `fn` signatures taking `&mut self` are flagged.
    let mut depth = 0usize;
    let mut view_impl_depth: Option<usize> = None;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        if !line.in_test {
            for (pat, word) in SYNC_PATTERNS {
                if matches_pattern(code, pat, word) {
                    out.push(finding(
                        file,
                        raw,
                        idx + 1,
                        "sync-discipline",
                        format!(
                            "`{pat}` in simulation code: synchronization primitives and \
                             escape hatches live only in the chip worker pool ({SYNC_MODULE})"
                        ),
                    ));
                }
            }
            if view_impl_depth.is_some()
                && find_word(code, "fn", 0).is_some()
                && code.contains("&mut self")
            {
                out.push(finding(
                    file,
                    raw,
                    idx + 1,
                    "sync-discipline",
                    "`&mut self` method on a frozen view: intra-cycle view queries \
                     must be read-only (`&self`)"
                        .to_string(),
                ));
            }
        }
        if view_impl_depth.is_none()
            && find_word(code, "impl", 0).is_some()
            && code.contains("View")
        {
            // The impl body opens at the next brace depth (the `{` may sit
            // on a later line when a `where` clause intervenes).
            view_impl_depth = Some(depth + 1);
        }
        for b in code.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if view_impl_depth.is_some_and(|d| depth < d) {
                        view_impl_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
}

fn matches_pattern(code: &str, pat: &str, word_boundary_before: bool) -> bool {
    let mut from = 0usize;
    while let Some(pos) = code.get(from..).and_then(|c| c.find(pat)) {
        let at = from + pos;
        if !word_boundary_before {
            return true;
        }
        let before_ok = at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
        if before_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let file = scan(path, src);
        let raw: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        check_file(&file, &raw, &mut out);
        out
    }

    #[test]
    fn alloc_flagged_outside_constructors_only() {
        let src = "impl X {\n    fn new() -> Self {\n        let v = Vec::new();\n    }\n    fn step(&mut self) {\n        let v = Vec::new();\n    }\n}\n";
        let out = run("crates/fetch/src/lib.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 6);
        assert_eq!(out[0].rule, "hot-path-alloc");
    }

    #[test]
    fn alloc_scope_is_pipeline_fetch_mem_only() {
        let src = "fn step() { let v = Vec::new(); }\n";
        assert!(run("crates/core/src/runner.rs", src).is_empty());
        assert_eq!(run("crates/core/src/pipeline/x.rs", src).len(), 1);
    }

    #[test]
    fn hash_iteration_direct_and_indexed() {
        let src = "struct S {\n    pending: HashSet<u64>,\n    per_thread: Vec<HashSet<u64>>,\n}\nimpl S {\n    fn a(&mut self) {\n        self.pending.retain(|&s| s > 0);\n    }\n    fn b(&mut self) {\n        self.per_thread[0].retain(|&s| s > 0);\n    }\n    fn c(&self) {\n        for t in &self.per_thread {\n            let _ = t;\n        }\n    }\n}\n";
        let out = run("crates/fetch/src/x.rs", src);
        let lines: Vec<usize> = out
            .iter()
            .filter(|f| f.rule == "determinism")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![7, 10], "{out:?}");
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let src = "struct S { xs: Vec<u64> }\nimpl S {\n    fn a(&self) {\n        for x in &self.xs {\n            let _ = x;\n        }\n        self.xs.iter().count();\n    }\n}\n";
        assert!(run("crates/mem/src/x.rs", src).is_empty());
    }

    #[test]
    fn swap_policy_only_from_adaptive_submodule() {
        let src = "fn tick(&mut self) {\n    self.swap_policy(kind);\n}\n";
        assert_eq!(run("crates/core/src/pipeline/mod.rs", src).len(), 1);
        assert!(run("crates/core/src/pipeline/adaptive.rs", src).is_empty());
    }

    #[test]
    fn panic_policy_scoped_to_the_experiment_engine() {
        let src =
            "fn go() {\n    let x = compute().unwrap();\n    let y = other().expect(\"y\");\n}\n";
        let out = run("crates/core/src/experiments/engine.rs", src);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.rule == "panic-policy"));
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].line, 3);
        // Out of scope: the rest of smt-core, and engine test code.
        assert!(run("crates/core/src/runner.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        compute().unwrap();\n    }\n}\n";
        assert!(run("crates/core/src/experiments/engine.rs", test_src).is_empty());
    }

    #[test]
    fn sampling_discipline_pins_fast_forward_purity() {
        let src = "impl Core {\n    fn fast_forward(&mut self) {\n        let now = self.cycle;\n        self.stats.commits += 1;\n        self.cycle += 4;\n        if self.cycle == now {}\n    }\n}\n";
        let out = run("crates/core/src/pipeline/fast_forward.rs", src);
        let lines: Vec<usize> = out
            .iter()
            .filter(|f| f.rule == "sampling-discipline")
            .map(|f| f.line)
            .collect();
        // Reading the frozen counter (line 3) and comparing it (line 6) are
        // legal; the statistics update and the cycle mutation are not.
        assert_eq!(lines, vec![4, 5], "{out:?}");
        // Out of scope: every other pipeline file.
        assert!(run("crates/core/src/pipeline/mod.rs", src)
            .iter()
            .all(|f| f.rule != "sampling-discipline"));
    }

    #[test]
    fn sync_discipline_flags_primitives_outside_the_pool_module() {
        let src = "use std::sync::{Mutex, RwLock};\nfn f() {\n    let c = RefCell::new(0u64);\n    let n = AtomicU64::new(0);\n    unsafe { hint::unreachable_unchecked() };\n}\n";
        let out = run("crates/adapt/src/x.rs", src);
        let lines: Vec<usize> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 1, 3, 4, 5], "{out:?}");
        assert!(out.iter().all(|f| f.rule == "sync-discipline"));
        // Sanctioned: the pool module itself, the host-side harness files,
        // non-simulation crates, and test regions.
        assert!(run("crates/core/src/chip/parallel.rs", src).is_empty());
        assert!(run("crates/core/src/runner.rs", src).is_empty());
        assert!(run("crates/core/src/throughput.rs", src).is_empty());
        assert!(run("crates/core/src/experiments/engine.rs", src).is_empty());
        assert!(run("crates/cli/src/main.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let m = std::sync::Mutex::new(0);\n        let _ = m;\n    }\n}\n";
        assert!(run("crates/adapt/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn sync_discipline_pins_frozen_views_to_shared_refs() {
        let src = "pub struct LlcView;\nimpl LlcView {\n    pub fn probe(&self, a: u64) -> bool {\n        a == 0\n    }\n    pub fn touch(&mut self, a: u64) {\n        let _ = a;\n    }\n}\nimpl Stage {\n    pub fn apply(&mut self) {}\n}\n";
        let out = run("crates/mem/src/x.rs", src);
        let lines: Vec<usize> = out
            .iter()
            .filter(|f| f.rule == "sync-discipline")
            .map(|f| f.line)
            .collect();
        // `&self` queries on the view (line 3) and `&mut self` methods on
        // non-view impls (line 11) are legal; a mutating view method is not.
        assert_eq!(lines, vec![6], "{out:?}");
    }

    #[test]
    fn deserialize_struct_needs_deny_unknown_fields() {
        let with = "#[derive(Serialize, Deserialize)]\n#[serde(deny_unknown_fields)]\npub struct A { pub x: u64 }\n";
        assert!(run("crates/types/src/a.rs", with).is_empty());
        let without = "#[derive(Serialize, Deserialize)]\npub struct A { pub x: u64 }\n";
        assert_eq!(run("crates/types/src/a.rs", without).len(), 1);
        let enumeration = "#[derive(Serialize, Deserialize)]\npub enum E { A, B }\n";
        assert!(run("crates/types/src/a.rs", enumeration).is_empty());
    }
}
