//! `smt-analyze` — command-line front end for the workspace invariant
//! checker.
//!
//! ```text
//! cargo run -p smt-analyze -- check [--root <dir>] [--format text|json]
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("smt-analyze: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: smt-analyze check [--root <dir>] [--format text|json]";

fn run(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut command = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a value".to_string())?,
                );
            }
            "--format" => {
                format = match it
                    .next()
                    .ok_or_else(|| "--format requires a value".to_string())?
                    .as_str()
                {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if command.is_none() {
        return Err("missing command".to_string());
    }

    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "`{}` does not look like the workspace root (no Cargo.toml); pass --root",
            root.display()
        ));
    }
    let report = smt_analyze::analyze_root(&root).map_err(|e| e.to_string())?;
    match format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
    }
    Ok(report.is_clean())
}

enum Format {
    Text,
    Json,
}
