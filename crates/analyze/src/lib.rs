//! `smt-analyze` — the workspace invariant checker.
//!
//! A self-contained, dependency-free static analysis pass over the
//! simulator's Rust sources enforcing the conventions three PRs of tribal
//! knowledge rest on:
//!
//! * **hot-path-alloc** — the zero-allocation steady state of the cycle loop
//!   (PR 2): no heap-allocating constructs in `crates/core/src/pipeline`,
//!   `crates/fetch` or `crates/mem` outside constructors, checkpoint
//!   serialization functions and test code;
//! * **determinism** — simulation crates take no nondeterministic inputs:
//!   no wall-clock (`Instant`/`SystemTime`), no `thread_rng`, no environment
//!   reads, no iteration over hash-ordered containers;
//! * **swap-point** — runtime fetch-policy swaps happen only at the
//!   sanctioned end-of-cycle point (`crates/core/src/pipeline/adaptive.rs`);
//! * **config-hygiene** — every `Deserialize` struct in `smt-types` carries
//!   `#[serde(deny_unknown_fields)]`;
//! * **registry-drift** — experiment names cited in the docs exist in the
//!   registry; bench scenario names in `BENCH_throughput.json` exist in the
//!   throughput matrix;
//! * **panic-policy** — no bare `unwrap()`/`expect(` in the resilient
//!   experiment engine (`crates/core/src/experiments/`): cell failures must
//!   surface as `Result`s so the engine can quarantine and report them;
//! * **sampling-discipline** — functional fast-forward code
//!   (`crates/core/src/pipeline/fast_forward.rs`) never touches statistics
//!   counters or cycle accounting: warming must be invisible to everything
//!   the measure windows report;
//! * **sync-discipline** — simulation state is single-owner: locks, atomics,
//!   interior mutability and `unsafe` live only in the sanctioned chip
//!   worker-pool module (`crates/core/src/chip/parallel.rs`) and the
//!   host-side harness files, and frozen read views expose only `&self`
//!   methods.
//!
//! A finding is suppressed with a justified annotation on (or directly
//! above) the offending line:
//!
//! ```text
//! // analyze: allow(determinism) reason="retain predicate is order-independent"
//! ```
//!
//! Unused annotations are themselves findings (`unused-allow`), so stale
//! suppressions cannot accumulate.

#![deny(missing_docs)]

use std::path::Path;

mod drift;
pub mod lexer;
mod rules;
pub mod scan;

pub use drift::DriftInputs;
pub use rules::{Finding, RULE_IDS};

use scan::{scan, ScannedFile};

/// One file handed to the analyzer: a workspace-relative path (forward
/// slashes) and its contents.
pub struct Input {
    /// Workspace-relative path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// The outcome of an analysis run.
pub struct Report {
    /// Unsuppressed findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Findings silenced by a matching `analyze: allow` annotation.
    pub suppressed: Vec<(Finding, String)>,
    /// Number of `.rs` files scanned.
    pub scanned_files: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.excerpt
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} finding(s), {} suppressed by allow annotations\n",
            self.scanned_files,
            self.findings.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Renders the report as stable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"excerpt\": {}}}",
                json_string(&f.file),
                f.line,
                json_string(f.rule),
                json_string(&f.message),
                json_string(&f.excerpt)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"scanned_files\": {},\n  \"suppressed\": {}\n}}\n",
            self.scanned_files,
            self.suppressed.len()
        ));
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Analyzes a set of in-memory inputs. `.rs` files are scanned and run
/// through the per-file rules; `README.md`, `EXPERIMENTS.md` and
/// `BENCH_throughput.json` feed the registry-drift rule.
pub fn analyze_inputs(inputs: &[Input]) -> Report {
    let mut scanned: Vec<(ScannedFile, &Input)> = inputs
        .iter()
        .filter(|i| i.path.ends_with(".rs"))
        .map(|i| (scan(&i.path, &i.text), i))
        .collect();
    scanned.sort_by(|a, b| a.0.path.cmp(&b.0.path));

    let mut raw_findings: Vec<Finding> = Vec::new();
    for (file, input) in &scanned {
        let raw: Vec<&str> = input.text.lines().collect();
        rules::check_file(file, &raw, &mut raw_findings);
    }

    let find_scanned = |path: &str| -> Option<&ScannedFile> {
        scanned.iter().map(|(f, _)| f).find(|f| f.path == path)
    };
    let drift_inputs = DriftInputs {
        registry: find_scanned("crates/core/src/experiments/registry.rs"),
        throughput: find_scanned("crates/core/src/throughput.rs"),
        docs: inputs
            .iter()
            .filter(|i| i.path.ends_with("README.md") || i.path.ends_with("EXPERIMENTS.md"))
            .map(|i| (i.path.as_str(), i.text.as_str()))
            .collect(),
        bench_json: inputs
            .iter()
            .find(|i| i.path.ends_with("BENCH_throughput.json"))
            .map(|i| (i.path.as_str(), i.text.as_str())),
    };
    drift::check_drift(&drift_inputs, &mut raw_findings);

    // Apply suppressions and flag unused or malformed annotations.
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut used: Vec<(String, usize, String)> = Vec::new();
    for f in raw_findings {
        let allow = scanned.iter().map(|(s, _)| s).find_map(|s| {
            (s.path == f.file).then(|| {
                s.allows
                    .iter()
                    .find(|a| a.target == f.line && a.rule == f.rule)
            })?
        });
        match allow {
            Some(a) => {
                used.push((f.file.clone(), a.line, a.rule.clone()));
                suppressed.push((f, a.reason.clone()));
            }
            None => findings.push(f),
        }
    }
    for (file, _) in &scanned {
        for a in &file.allows {
            if !RULE_IDS.contains(&a.rule.as_str()) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: a.line,
                    rule: "bad-annotation",
                    message: format!(
                        "unknown rule `{}` in analyze annotation (known: {})",
                        a.rule,
                        RULE_IDS.join(", ")
                    ),
                    excerpt: String::new(),
                });
            } else if !used
                .iter()
                .any(|(f, l, r)| *f == file.path && *l == a.line && *r == a.rule)
            {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: a.line,
                    rule: "unused-allow",
                    message: format!(
                        "allow({}) suppresses nothing — the violation it covered is gone; remove the annotation",
                        a.rule
                    ),
                    excerpt: String::new(),
                });
            }
        }
        for (line, msg) in &file.bad_annotations {
            findings.push(Finding {
                file: file.path.clone(),
                line: *line,
                rule: "bad-annotation",
                message: msg.clone(),
                excerpt: String::new(),
            });
        }
    }

    findings.sort();
    Report {
        findings,
        suppressed,
        scanned_files: scanned.len(),
    }
}

/// Walks a workspace root, reads every relevant file and analyzes it.
///
/// Skipped subtrees: `target`, `.git`, `crates/vendor` (third-party API
/// stand-ins) and `crates/analyze` (this tool and its deliberately
/// violating fixtures).
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading.
pub fn analyze_root(root: &Path) -> std::io::Result<Report> {
    let mut inputs = Vec::new();
    walk(root, root, &mut inputs)?;
    for doc in ["README.md", "EXPERIMENTS.md", "BENCH_throughput.json"] {
        let path = root.join(doc);
        if path.is_file() {
            inputs.push(Input {
                path: doc.to_string(),
                text: std::fs::read_to_string(path)?,
            });
        }
    }
    Ok(analyze_inputs(&inputs))
}

fn walk(root: &Path, dir: &Path, inputs: &mut Vec<Input>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let rel = relative(root, &path);
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            if rel == "crates/vendor" || rel == "crates/analyze" {
                continue;
            }
            walk(root, &path, inputs)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            inputs.push(Input {
                path: rel,
                text: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(path: &str, text: &str) -> Input {
        Input {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn allow_suppresses_and_unused_allow_fires() {
        let used = input(
            "crates/fetch/src/a.rs",
            "fn step() {\n    let v = Vec::new(); // analyze: allow(hot-path-alloc) reason=\"scratch grown once\"\n}\n",
        );
        let report = analyze_inputs(&[used]);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);

        let unused = input(
            "crates/fetch/src/a.rs",
            "fn step() {\n    // analyze: allow(hot-path-alloc) reason=\"nothing here\"\n    let x = 1;\n}\n",
        );
        let report = analyze_inputs(&[unused]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "unused-allow");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let report = analyze_inputs(&[input(
            "crates/fetch/src/a.rs",
            "// analyze: allow(no-such-rule) reason=\"x\"\nfn f() {}\n",
        )]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "bad-annotation");
    }

    #[test]
    fn json_output_is_escaped() {
        let report = analyze_inputs(&[input(
            "crates/fetch/src/a.rs",
            "fn step() { let s = format!(\"x\"); }\n",
        )]);
        assert!(!report.is_clean());
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"hot-path-alloc\""));
        assert!(json.contains("\\\"x\\\""));
    }
}
