//! Region and context tracking over lexed source.
//!
//! Walks the comment-and-string-free lines once, tracking brace depth to
//! answer, for every line: is it inside a test region (`#[cfg(test)]` /
//! `mod tests` / a `tests/`, `examples/` or `benches/` path), and is it inside
//! a constructor (a function named `new`/`default`, prefixed
//! `new_`/`with_`/`from_`/`build`, or returning `Self`) or a checkpoint
//! serialization function (`state`/`save_state`/`restore_state`/
//! `checkpoint`/`restore_checkpoint`)? It also resolves
//! `// analyze: allow(<rule>) reason="..."` annotations to the line they
//! cover.

use crate::lexer::{lex, LexedFile};

/// One scanned source line plus the region facts the rules need.
pub struct ScanLine {
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// Inside `#[cfg(test)]` / `mod tests` / a test-only file.
    pub in_test: bool,
    /// Inside a constructor-shaped or checkpoint-serialization function
    /// (allocation is sanctioned there).
    pub in_constructor: bool,
}

/// A parsed `// analyze: allow(<rule>) reason="..."` annotation.
pub struct Allow {
    /// The rule id being suppressed.
    pub rule: String,
    /// The mandatory human-readable justification.
    pub reason: String,
    /// Line the annotation comment sits on (1-based).
    pub line: usize,
    /// Line the annotation covers: its own line for trailing comments, the
    /// next code line for standalone ones.
    pub target: usize,
}

/// A whole scanned file: per-line facts, string literals, allow annotations,
/// and any malformed annotations encountered.
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// `lines[i]` describes source line `i + 1`.
    pub lines: Vec<ScanLine>,
    /// `(line, content)` of every string literal.
    pub strings: Vec<(usize, String)>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// `(line, message)` for annotations that look like `analyze:` but do not
    /// parse.
    pub bad_annotations: Vec<(usize, String)>,
}

impl ScannedFile {
    /// String-literal contents on non-test lines.
    pub fn non_test_strings(&self) -> impl Iterator<Item = (usize, &str)> {
        self.strings.iter().filter_map(|(line, text)| {
            let in_test = self.lines.get(line - 1).is_none_or(|l| l.in_test);
            (!in_test).then_some((*line, text.as_str()))
        })
    }
}

/// Scans one file. `path` decides file-level test status and, later, which
/// rules apply.
pub fn scan(path: &str, source: &str) -> ScannedFile {
    let LexedFile {
        code_lines,
        comments,
        strings,
    } = lex(source);
    let file_is_test = is_test_path(path);

    let mut lines: Vec<ScanLine> = Vec::with_capacity(code_lines.len());
    let mut depth = 0i64;
    // Depths (post-increment) at which test regions / functions opened.
    let mut test_stack: Vec<i64> = Vec::new();
    let mut fn_stack: Vec<(i64, bool)> = Vec::new();
    let mut pending_test_attr = false;
    // Signature text accumulated from `fn` to its `{` or `;`.
    let mut pending_sig: Option<String> = None;

    for code in code_lines {
        let start_test = !test_stack.is_empty();
        let start_ctor = fn_stack.iter().any(|&(_, c)| c);

        if has_cfg_test_attr(&code) || declares_tests_mod(&code) {
            pending_test_attr = true;
        }

        // Regions that open and close within this very line (a one-line
        // `fn helper() { ... }` under `#[cfg(test)]`) are invisible to the
        // start/end snapshots; record membership as braces are processed.
        let mut mid_test = false;
        let mut mid_ctor = false;

        let bytes: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            if pending_sig.is_none() && c == 'f' && is_fn_keyword(&bytes, i) {
                pending_sig = Some(String::new());
                i += 2;
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    if let Some(sig) = pending_sig.take() {
                        fn_stack.push((depth, is_constructor_signature(&sig)));
                    }
                    if pending_test_attr {
                        test_stack.push(depth);
                        pending_test_attr = false;
                    }
                    mid_test |= !test_stack.is_empty();
                    mid_ctor |= fn_stack.iter().any(|&(_, c)| c);
                }
                '}' => {
                    while fn_stack.last().is_some_and(|&(d, _)| d >= depth) {
                        fn_stack.pop();
                    }
                    while test_stack.last().is_some_and(|&d| d >= depth) {
                        test_stack.pop();
                    }
                    depth -= 1;
                }
                ';' => {
                    // `fn f();` (trait method without body) or
                    // `#[cfg(test)] use ...;`: the pending context never
                    // opens a block.
                    if pending_sig.take().is_none() {
                        pending_test_attr = false;
                    }
                }
                _ => {
                    if let Some(sig) = pending_sig.as_mut() {
                        sig.push(c);
                    }
                }
            }
            i += 1;
        }
        if let Some(sig) = pending_sig.as_mut() {
            sig.push(' ');
        }

        let end_test = !test_stack.is_empty();
        let end_ctor = fn_stack.iter().any(|&(_, c)| c);
        lines.push(ScanLine {
            code,
            in_test: file_is_test || start_test || mid_test || end_test,
            in_constructor: start_ctor || mid_ctor || end_ctor,
        });
    }

    let (allows, bad_annotations) = resolve_annotations(&comments, &lines);
    ScannedFile {
        path: path.to_string(),
        lines,
        strings,
        allows,
        bad_annotations,
    }
}

/// Paths whose every line counts as test code: integration tests, examples,
/// benches.
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|c| c == "tests" || c == "examples" || c == "benches")
}

/// Does this (comment-free) line carry a `#[cfg(...)]` whose predicate can
/// enable `test`? `not(test)` spans are removed first so `#[cfg(not(test))]`
/// does not count.
fn has_cfg_test_attr(code: &str) -> bool {
    let trimmed = code.trim_start();
    if !(trimmed.starts_with("#[") || trimmed.starts_with("#![")) || !trimmed.contains("cfg") {
        return false;
    }
    contains_word(&strip_not_groups(trimmed), "test")
}

fn declares_tests_mod(code: &str) -> bool {
    let mut words = code.split_whitespace();
    while let Some(w) = words.next() {
        if w == "mod" {
            return matches!(words.next(), Some(name) if name.trim_end_matches('{') == "tests");
        }
    }
    false
}

/// Removes every balanced `not(...)` group from `text`.
fn strip_not_groups(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == 'n' && matches_at(&chars, i, "not(") && !is_ident_char_before(&chars, i) {
            let mut depth = 0i32;
            let mut j = i + 3;
            loop {
                match chars.get(j) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Some(_) => {}
                    None => break,
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

fn matches_at(chars: &[char], i: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, p)| chars.get(i + k) == Some(&p))
}

fn is_ident_char_before(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// True if `text` contains `word` delimited by non-identifier characters.
pub fn contains_word(text: &str, word: &str) -> bool {
    find_word(text, word, 0).is_some()
}

/// Finds the next word-boundary occurrence of `word` at or after byte `from`.
pub fn find_word(text: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut start = from;
    while let Some(pos) = text.get(start..).and_then(|t| t.find(word)) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is `fn` at `i` a keyword occurrence (not part of an identifier)?
fn is_fn_keyword(bytes: &[char], i: usize) -> bool {
    if bytes.get(i + 1) != Some(&'n') {
        return false;
    }
    let before_ok = i == 0 || !(bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_');
    let after_ok = bytes
        .get(i + 2)
        .is_none_or(|c| !(c.is_alphanumeric() || *c == '_'));
    before_ok && after_ok
}

/// Constructors may allocate: `new`/`default` and the `new_`/`with_`/`from_`/
/// `build` families, plus anything returning `Self`.
fn is_constructor_signature(sig: &str) -> bool {
    let sig = sig.trim_start();
    let name: String = sig
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name == "new"
        || name == "default"
        || ["new_", "with_", "from_", "build"]
            .iter()
            .any(|p| name.starts_with(p))
    {
        return true;
    }
    // Checkpoint serialization runs once per warm-prefix capture or restore,
    // never inside the cycle loop; allocation is sanctioned there like in
    // constructors.
    if matches!(
        name.as_str(),
        "state" | "save_state" | "restore_state" | "checkpoint" | "restore_checkpoint"
    ) {
        return true;
    }
    match sig.rfind("->") {
        Some(arrow) => contains_word(&sig[arrow..], "Self"),
        None => false,
    }
}

/// Resolves annotation comments to target lines. A trailing comment covers
/// its own line; a standalone comment (nothing but whitespace before it)
/// covers the next line that has code, with stacking.
fn resolve_annotations(
    comments: &[(usize, String)],
    lines: &[ScanLine],
) -> (Vec<Allow>, Vec<(usize, String)>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (line, text) in comments {
        let trimmed = text.trim();
        let Some(rest) = trimmed.strip_prefix("analyze:") else {
            continue;
        };
        let target = if line_has_code(lines, *line) {
            *line
        } else {
            next_code_line(lines, *line)
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => allows.push(Allow {
                rule,
                reason,
                line: *line,
                target,
            }),
            Err(msg) => bad.push((*line, msg)),
        }
    }
    (allows, bad)
}

fn line_has_code(lines: &[ScanLine], line: usize) -> bool {
    lines
        .get(line - 1)
        .is_some_and(|l| !l.code.trim().is_empty())
}

fn next_code_line(lines: &[ScanLine], line: usize) -> usize {
    (line + 1..=lines.len())
        .find(|&n| line_has_code(lines, n))
        .unwrap_or(line)
}

/// Parses `allow(<rule>) reason="..."`.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let rest = text
        .strip_prefix("allow(")
        .ok_or("expected `allow(<rule>) reason=\"...\"` after `analyze:`")?;
    let close = rest
        .find(')')
        .ok_or("unclosed `allow(` in analyze annotation")?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
        return Err(format!("invalid rule id `{rule}` in analyze annotation"));
    }
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("reason=\"")
        .and_then(|r| r.strip_suffix('"'))
        .ok_or("missing `reason=\"...\"` in analyze annotation")?;
    if reason.trim().is_empty() {
        return Err("empty reason in analyze annotation".to_string());
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_cfg_test_and_mod_tests_regions() {
        let src = "fn live() { x(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y(); }\n}\nfn live2() {}\n";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_any_test_feature_counts_cfg_not_test_does_not() {
        let any = "#[cfg(any(test, feature = \"test-util\"))]\nfn helper() { body(); }\n";
        let f = scan("crates/x/src/lib.rs", any);
        assert!(f.lines[1].in_test);
        let not = "#[cfg(not(test))]\nfn helper() { body(); }\n";
        let f = scan("crates/x/src/lib.rs", not);
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn cfg_test_on_statement_does_not_open_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x(); }\n";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn constructor_detection_by_name_and_return_type() {
        let src = "impl X {\n    pub fn new() -> X {\n        alloc();\n    }\n    pub fn detected(n: usize) -> Self {\n        alloc();\n    }\n    pub fn step(&mut self) {\n        alloc();\n    }\n}\n";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(f.lines[2].in_constructor, "fn new");
        assert!(f.lines[5].in_constructor, "-> Self");
        assert!(!f.lines[8].in_constructor, "fn step");
    }

    #[test]
    fn checkpoint_serialization_counts_as_constructor() {
        let src = "impl X {\n    pub fn state(&self) -> XState {\n        alloc();\n    }\n    pub fn restore_state(&mut self, s: &XState) -> Result<(), String> {\n        alloc();\n    }\n    pub fn statement(&mut self) {\n        alloc();\n    }\n}\n";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(f.lines[2].in_constructor, "fn state");
        assert!(f.lines[5].in_constructor, "fn restore_state");
        assert!(!f.lines[8].in_constructor, "fn statement");
    }

    #[test]
    fn multiline_signature_constructor() {
        let src = "pub fn with_policy(\n    config: C,\n) -> Result<Self, E> {\n    alloc();\n}\n";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(f.lines[3].in_constructor);
    }

    #[test]
    fn trailing_and_standalone_allows_resolve_targets() {
        let src = "bad(); // analyze: allow(determinism) reason=\"r\"\n// analyze: allow(hot-path-alloc) reason=\"s\"\n\nother();\n";
        let f = scan("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!((f.allows[0].line, f.allows[0].target), (1, 1));
        assert_eq!((f.allows[1].line, f.allows[1].target), (2, 4));
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let src = "// analyze: allow(determinism)\nx();\n";
        let f = scan("crates/x/src/lib.rs", src);
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_annotations.len(), 1);
    }

    #[test]
    fn test_paths_are_test_regions_wholesale() {
        let f = scan("tests/golden_stats.rs", "fn x() { y(); }\n");
        assert!(f.lines[0].in_test);
    }
}
