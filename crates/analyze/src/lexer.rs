//! A minimal Rust lexer for line-oriented scanning.
//!
//! The analyzer never parses Rust properly (no `syn`, no dependency on the
//! compiler); it only needs source lines with comments and string-literal
//! *contents* blanked out, so that rule patterns cannot match inside prose,
//! plus the comment text itself (for `analyze: allow(...)` annotations) and
//! the string-literal contents (for the registry-drift rule).

/// One file, split into scannable pieces with line fidelity preserved:
/// `code_lines[i]` corresponds exactly to source line `i + 1`.
pub struct LexedFile {
    /// Source lines with comments removed and string/char-literal contents
    /// replaced by spaces (the delimiting quotes are kept).
    pub code_lines: Vec<String>,
    /// `(line, text)` for every line comment (`//...`, text excludes the
    /// slashes) — the carrier for `analyze: allow(...)` annotations.
    pub comments: Vec<(usize, String)>,
    /// `(line, content)` for every string literal, keyed by the line the
    /// literal *starts* on.
    pub strings: Vec<(usize, String)>,
}

#[derive(PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lexes `source` into [`LexedFile`]. Unterminated literals or comments simply
/// run to end-of-file; the lexer never fails.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut code_lines = Vec::new();
    let mut comments = Vec::new();
    let mut strings = Vec::new();

    let mut line = String::new();
    let mut line_no = 1usize;
    let mut comment = String::new();
    let mut literal = String::new();
    let mut literal_line = 0usize;
    let mut mode = Mode::Code;

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match mode {
                Mode::LineComment => {
                    comments.push((line_no, std::mem::take(&mut comment)));
                    mode = Mode::Code;
                }
                Mode::Str | Mode::RawStr(_) => literal.push('\n'),
                _ => {}
            }
            code_lines.push(std::mem::take(&mut line));
            line_no += 1;
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                '"' => {
                    // A byte-string prefix (`b"`) is just an identifier char
                    // already emitted; the quote itself starts the literal.
                    line.push('"');
                    literal_line = line_no;
                    literal.clear();
                    mode = Mode::Str;
                }
                'r' if is_raw_string_start(&chars, i) => {
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    line.push('"');
                    literal_line = line_no;
                    literal.clear();
                    mode = Mode::RawStr(hashes);
                    i = j + 1; // skip past `r##...#"`
                    continue;
                }
                '\'' if is_char_literal_start(&chars, i) => {
                    line.push('\'');
                    line.push(' ');
                    mode = Mode::Char;
                }
                _ => line.push(c),
            },
            Mode::LineComment => comment.push(c),
            Mode::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
            }
            Mode::Str => match c {
                '\\' => {
                    literal.push(c);
                    if let Some(&next) = chars.get(i + 1) {
                        literal.push(next);
                        if next == '\n' {
                            code_lines.push(std::mem::take(&mut line));
                            line_no += 1;
                        }
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    line.push('"');
                    strings.push((literal_line, std::mem::take(&mut literal)));
                    mode = Mode::Code;
                }
                _ => literal.push(c),
            },
            Mode::RawStr(hashes) => {
                if c == '"' && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    line.push('"');
                    strings.push((literal_line, std::mem::take(&mut literal)));
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                    continue;
                }
                literal.push(c);
            }
            Mode::Char => {
                if c == '\\' {
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    line.push('\'');
                    mode = Mode::Code;
                }
            }
        }
        i += 1;
    }
    match mode {
        Mode::LineComment => comments.push((line_no, comment)),
        Mode::Str | Mode::RawStr(_) => strings.push((literal_line, literal)),
        _ => {}
    }
    code_lines.push(line);
    LexedFile {
        code_lines,
        comments,
        strings,
    }
}

/// `r"` / `r#"` start a raw string; `r#ident` is a raw identifier and plain
/// `r` is an identifier character. Also require that `r` is not itself the
/// tail of an identifier (`for"x"` cannot occur; `var"` can after macros —
/// being conservative costs nothing).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Distinguishes a char literal (`'x'`, `'\n'`) from a lifetime (`'a`,
/// `'static`): a backslash or a closing quote two characters on means a char
/// literal.
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_preserving_lines() {
        let src = "let a = \"Vec::new()\"; // thread_rng\nlet b = 1; /* Instant */ let c = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.code_lines.len(), 3);
        assert_eq!(lexed.code_lines[0], "let a = \"\"; ");
        assert_eq!(lexed.code_lines[1], "let b = 1;  let c = 2;");
        assert_eq!(lexed.comments, vec![(1, " thread_rng".to_string())]);
        assert_eq!(lexed.strings, vec![(1, "Vec::new()".to_string())]);
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let s = r#\"a \"quoted\" {\"#; let c = '{'; let lt: &'static str = \"x\";";
        let lexed = lex(src);
        assert!(
            !lexed.code_lines[0].contains('{'),
            "{}",
            lexed.code_lines[0]
        );
        assert_eq!(lexed.strings[0].1, "a \"quoted\" {");
        assert!(lexed.code_lines[0].contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* y */ z */ b";
        assert_eq!(lex(src).code_lines[0], "a  b");
    }

    #[test]
    fn multiline_strings_key_on_start_line() {
        let src = "let s = \"one\ntwo\";\nlet t = 3;";
        let lexed = lex(src);
        assert_eq!(lexed.strings, vec![(1, "one\ntwo".to_string())]);
        assert_eq!(lexed.code_lines[2], "let t = 3;");
    }
}
