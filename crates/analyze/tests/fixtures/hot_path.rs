//! Fixture: hot-path-alloc. Fed to the analyzer under a synthetic
//! `crates/core/src/pipeline/` path; never compiled into the simulator.

pub struct Unit {
    scratch: Vec<u64>,
}

impl Unit {
    pub fn new() -> Self {
        Unit {
            scratch: Vec::with_capacity(64), // constructors may allocate
        }
    }

    pub fn with_capacity(n: usize) -> Self {
        Unit {
            scratch: vec![0; n], // constructor family prefix: exempt
        }
    }

    pub fn step(&mut self) {
        let spill = Vec::new(); // line 22: violation
        let tags: Vec<u64> = self.scratch.iter().copied().collect(); // line 23: violation
        let label = format!("cycle"); // line 24: violation
        drop((spill, tags, label));
        self.scratch.clear(); // in-place reuse: clean
    }

    pub fn snapshot(&self) -> Vec<u64> {
        self.scratch.to_vec() // line 30: violation
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocating_in_tests_is_fine() {
        let v = vec![1, 2, 3];
        assert_eq!(v.len(), 3);
    }
}
