//! Fixture: sampling-discipline. Fed to the analyzer under the functional
//! fast-forward path; never compiled. A comment naming MachineStats or
//! writing `self.cycle = 0` is stripped before matching, so this header is
//! not a violation.

impl Core {
    pub fn fast_forward(&mut self, budget: u64) {
        let now = self.cycle; // line 8: plain cycle read, legal
        if self.cycle == now {
            return; // line 10: `cycle ==` comparison above is legal
        }
        self.stats.committed += budget; // line 12: statistics touch
        self.cycle += budget; // line 13: moves simulated time
        let snapshot = MachineStats::default(); // line 14: stats type
        self.reset_stats(); // line 15: resets counters mid-warming
        drop(snapshot);
    }

    pub fn sanctioned(&mut self) {
        // analyze: allow(sampling-discipline) reason="fixture: sanctioned counter touch"
        self.stats.committed += 1; // line 21: suppressed by the allow above
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn stats_and_cycles_in_tests_are_fine() {
        let mut core = Core::default();
        core.stats.committed = 0;
        core.cycle = 7;
        assert_eq!(core.measured_cycles, 0);
    }
}
