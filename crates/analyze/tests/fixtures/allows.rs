//! Fixture: allow-annotation handling. Fed to the analyzer under a synthetic
//! simulation crate path; never compiled into the simulator.

pub struct Unit {
    scratch: Vec<u64>,
}

impl Unit {
    pub fn step(&mut self) {
        // analyze: allow(hot-path-alloc) reason="grown once at first step, then reused"
        let spill = Vec::new();
        drop(spill);
        self.scratch.clear(); // analyze: allow(hot-path-alloc) reason="stale: clear does not allocate"
        let noise = vec![0u8; 4]; // line 14: unsuppressed violation
        drop(noise);
    }
}
