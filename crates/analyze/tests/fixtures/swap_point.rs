//! Fixture: swap-point. Fed to the analyzer under synthetic pipeline paths;
//! never compiled into the simulator.

pub struct Core;

impl Core {
    pub fn swap_policy(&mut self, kind: u32) -> bool {
        let _ = kind;
        true
    }

    pub fn sneaky_mid_cycle(&mut self) {
        self.swap_policy(1); // line 13: violation outside the sanctioned file
    }
}
