//! Fixture: sync-discipline. Fed to the analyzer under a simulation-crate
//! path; never compiled. Synchronization primitives, interior mutability
//! and `unsafe` are forbidden outside the chip worker-pool module, and
//! frozen read views must stay `&self`.

use std::sync::Mutex; // line 6: lock type
use std::sync::atomic::AtomicU64; // line 7: the Atomic* family

pub struct LlcView {
    lines: u64,
}

impl LlcView {
    pub fn probe(&self, addr: u64) -> bool { // line 14: &self query, legal
        self.lines == addr
    }

    pub fn touch(&mut self, addr: u64) { // line 18: mutating view method
        self.lines = addr;
    }
}

impl Stage {
    pub fn apply(&mut self) { // line 24: &mut self off a non-view impl, legal
        let _ = self;
    }
}

pub fn step() {
    let cell = RefCell::new(0u64); // line 30: interior mutability
    let count = AtomicU64::new(0); // line 31: atomic
    let zero = unsafe { core::mem::zeroed::<u64>() }; // line 32: escape hatch
    drop((cell, count, zero));
}

pub fn sanctioned() {
    // analyze: allow(sync-discipline) reason="fixture: sanctioned hand-off"
    let gate = Mutex::new(()); // line 38: suppressed by the allow above
    drop(gate);
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn sync_in_tests_is_fine() {
        let m = Mutex::new(0);
        assert_eq!(*m.lock().unwrap(), 0);
    }
}
