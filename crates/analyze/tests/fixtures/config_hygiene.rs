//! Fixture: config-hygiene. Fed to the analyzer under a synthetic
//! `crates/types/` path; never compiled into the simulator.

use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Loose {
    pub threads: usize,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Strict {
    pub threads: usize,
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Kind {
    A,
    B,
}

#[derive(Clone, Debug, Serialize)]
pub struct SerializeOnly {
    pub cycles: u64,
}
