//! Fixture: determinism. Fed to the analyzer under a synthetic simulation
//! crate path; never compiled into the simulator.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

pub struct Tracker {
    pending: HashSet<u64>,
    done: HashMap<u64, u64>,
    lanes: Vec<HashSet<u64>>,
}

impl Tracker {
    pub fn observe(&mut self, now: u64) -> u64 {
        let started = Instant::now(); // line 15: violation (wall clock)
        let budget = std::env::var("SIM_BUDGET"); // line 16: violation (env)
        drop((started, budget));
        self.pending.retain(|&s| s <= now); // line 18: violation (hash order)
        self.lanes[0].retain(|&s| s <= now); // line 19: violation (indexed)
        for lane in &mut self.lanes {
            lane.clear(); // whole-Vec walk over nested sets: clean
        }
        self.done.values().copied().max().unwrap_or(0) // line 23: violation
    }

    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.done.get(&key).copied() // keyed access: clean
    }
}
