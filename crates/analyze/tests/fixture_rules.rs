//! End-to-end fixture tests: each rule fires exactly where the fixture
//! plants a violation, clean constructs stay clean, allow annotations
//! suppress, and stale annotations are reported.
//!
//! Fixture sources live in `tests/fixtures/` and are fed to the analyzer
//! under synthetic workspace paths; they are never compiled.

use smt_analyze::{analyze_inputs, Input};

fn input(path: &str, text: &str) -> Input {
    Input {
        path: path.to_string(),
        text: text.to_string(),
    }
}

/// `(line, rule)` of every finding, in report order.
fn hits(report: &smt_analyze::Report) -> Vec<(usize, &'static str)> {
    report.findings.iter().map(|f| (f.line, f.rule)).collect()
}

#[test]
fn hot_path_alloc_fires_outside_constructors_and_tests() {
    let report = analyze_inputs(&[input(
        "crates/core/src/pipeline/fake.rs",
        include_str!("fixtures/hot_path.rs"),
    )]);
    assert_eq!(
        hits(&report),
        vec![
            (22, "hot-path-alloc"),
            (23, "hot-path-alloc"),
            (24, "hot-path-alloc"),
            (30, "hot-path-alloc"),
        ]
    );
}

#[test]
fn hot_path_alloc_is_scoped_to_hot_crates() {
    let report = analyze_inputs(&[input(
        "crates/cli/src/fake.rs",
        include_str!("fixtures/hot_path.rs"),
    )]);
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn determinism_fires_on_clock_env_and_hash_iteration() {
    let report = analyze_inputs(&[input(
        "crates/fetch/src/fake.rs",
        include_str!("fixtures/determinism.rs"),
    )]);
    assert_eq!(
        hits(&report),
        vec![
            (5, "determinism"),
            (15, "determinism"),
            (16, "determinism"),
            (18, "determinism"),
            (19, "determinism"),
            (23, "determinism"),
        ]
    );
}

#[test]
fn determinism_is_scoped_to_simulation_crates() {
    let report = analyze_inputs(&[input(
        "crates/bench/src/fake.rs",
        include_str!("fixtures/determinism.rs"),
    )]);
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn swap_point_fires_everywhere_but_the_sanctioned_file() {
    let outside = analyze_inputs(&[input(
        "crates/core/src/pipeline/fake.rs",
        include_str!("fixtures/swap_point.rs"),
    )]);
    assert_eq!(hits(&outside), vec![(13, "swap-point")]);

    let sanctioned = analyze_inputs(&[input(
        "crates/core/src/pipeline/adaptive.rs",
        include_str!("fixtures/swap_point.rs"),
    )]);
    assert!(sanctioned.is_clean(), "{:?}", sanctioned.findings);
}

#[test]
fn sampling_discipline_fires_only_in_the_fast_forward_file() {
    let report = analyze_inputs(&[input(
        "crates/core/src/pipeline/fast_forward.rs",
        include_str!("fixtures/sampling_discipline.rs"),
    )]);
    // Plain `self.cycle` reads and `cycle ==` comparisons are legal; the
    // allowed counter touch on line 21 is suppressed, not reported.
    assert_eq!(
        hits(&report),
        vec![
            (12, "sampling-discipline"),
            (13, "sampling-discipline"),
            (14, "sampling-discipline"),
            (15, "sampling-discipline"),
        ]
    );
    assert_eq!(report.suppressed.len(), 1);

    let elsewhere = analyze_inputs(&[input(
        "crates/core/src/pipeline/fake.rs",
        include_str!("fixtures/sampling_discipline.rs"),
    )]);
    // Outside the fast-forward file the rule does not apply, so the allow
    // annotation has nothing to suppress and is itself reported as stale.
    assert_eq!(hits(&elsewhere), vec![(20, "unused-allow")]);
}

#[test]
fn sync_discipline_fires_in_sim_crates_outside_the_pool_module() {
    let report = analyze_inputs(&[input(
        "crates/adapt/src/fake.rs",
        include_str!("fixtures/sync_discipline.rs"),
    )]);
    // `&self` view queries (line 14) and `&mut self` methods on non-view
    // impls (line 24) are legal; the allowed Mutex on line 38 is suppressed,
    // not reported.
    assert_eq!(
        hits(&report),
        vec![
            (6, "sync-discipline"),
            (7, "sync-discipline"),
            (18, "sync-discipline"),
            (30, "sync-discipline"),
            (31, "sync-discipline"),
            (32, "sync-discipline"),
        ]
    );
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn sync_discipline_spares_the_pool_module_and_the_harness() {
    for path in [
        "crates/core/src/chip/parallel.rs",
        "crates/core/src/runner.rs",
        "crates/core/src/throughput.rs",
        "crates/core/src/experiments/engine.rs",
        "crates/cli/src/fake.rs",
    ] {
        let report = analyze_inputs(&[input(path, include_str!("fixtures/sync_discipline.rs"))]);
        // Out of scope the rule never fires, so the allow annotation has
        // nothing to suppress and is itself reported as stale.
        assert_eq!(hits(&report), vec![(37, "unused-allow")], "{path}");
    }
}

#[test]
fn config_hygiene_flags_only_underivative_deserialize_structs() {
    let report = analyze_inputs(&[input(
        "crates/types/src/fake.rs",
        include_str!("fixtures/config_hygiene.rs"),
    )]);
    // `Loose` is flagged; `Strict` (denying), `Kind` (enum) and
    // `SerializeOnly` (no Deserialize) are not.
    assert_eq!(hits(&report), vec![(6, "config-hygiene")]);
}

#[test]
fn allows_suppress_and_stale_allows_are_reported() {
    let report = analyze_inputs(&[input(
        "crates/fetch/src/fake.rs",
        include_str!("fixtures/allows.rs"),
    )]);
    assert_eq!(
        hits(&report),
        vec![(13, "unused-allow"), (14, "hot-path-alloc")]
    );
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn registry_drift_catches_phantom_citations_and_undocumented_names() {
    let registry = input(
        "crates/core/src/experiments/registry.rs",
        r#"
fn builtin() {
    single_thread("fig09_two_thread_policies", "...");
    single_thread("fig99_forgotten", "...");
}
"#,
    );
    let readme = input(
        "README.md",
        "Run `cargo run -p smt-cli -- run fig09_two_thread_policies` or cite `fig12_phantom`.\n",
    );
    let experiments = input(
        "EXPERIMENTS.md",
        "## fig09_two_thread_policies\n\nDocumented.\n",
    );
    let report = analyze_inputs(&[registry, readme, experiments]);
    let drift: Vec<(&str, usize)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    // `fig12_phantom` cited but unregistered; `fig99_forgotten` registered
    // but undocumented.
    assert_eq!(
        drift,
        vec![
            ("README.md", 1),
            ("crates/core/src/experiments/registry.rs", 4),
        ]
    );
    assert!(report.findings.iter().all(|f| f.rule == "registry-drift"));
}

#[test]
fn registry_drift_checks_bench_scenarios_against_throughput_matrix() {
    let throughput = input(
        "crates/core/src/throughput.rs",
        "fn matrix() { scenario(\"4t_mix_icount\"); }\n",
    );
    let bench = input(
        "BENCH_throughput.json",
        "{\n  \"entries\": [\n    { \"name\": \"4t_mix_icount\" },\n    { \"name\": \"9t_legacy\" }\n  ]\n}\n",
    );
    let report = analyze_inputs(&[throughput, bench]);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(
        (f.file.as_str(), f.line, f.rule),
        ("BENCH_throughput.json", 4, "registry-drift")
    );
}

#[test]
fn json_report_shape_is_stable() {
    let report = analyze_inputs(&[input(
        "crates/fetch/src/fake.rs",
        "fn step() { let v = Vec::new(); }\n",
    )]);
    let json = report.to_json();
    assert!(json.contains("\"file\": \"crates/fetch/src/fake.rs\""));
    assert!(json.contains("\"line\": 1"));
    assert!(json.contains("\"scanned_files\": 1"));
    assert!(json.ends_with("}\n"));
}
