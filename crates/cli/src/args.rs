//! Hand-rolled argument parsing for `smt-cli` (no external CLI crate in this
//! offline workspace).

use smt_core::runner::RunScale;
use smt_types::SelectorKind;

/// Output format for `run`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OutputFormat {
    /// Aligned human-readable text (default for stdout).
    #[default]
    Text,
    /// Pretty-printed JSON.
    Json,
    /// TOML.
    Toml,
}

impl OutputFormat {
    /// Parses a `--format` value.
    pub fn from_name(name: &str) -> Option<OutputFormat> {
        match name {
            "text" => Some(OutputFormat::Text),
            "json" => Some(OutputFormat::Json),
            "toml" => Some(OutputFormat::Toml),
            _ => None,
        }
    }

    /// Infers a format from an output file extension.
    pub fn from_path(path: &str) -> Option<OutputFormat> {
        let ext = path.rsplit('.').next()?;
        match ext {
            "json" => Some(OutputFormat::Json),
            "toml" => Some(OutputFormat::Toml),
            "txt" | "text" => Some(OutputFormat::Text),
            _ => None,
        }
    }
}

/// Parsed command line.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// `smt-cli list`
    List,
    /// `smt-cli describe <name>`
    Describe {
        /// Registry entry to describe.
        name: String,
    },
    /// `smt-cli run <name|spec.toml> [flags]`
    Run(RunArgs),
    /// `smt-cli bench [flags]`
    Bench(BenchArgs),
    /// `smt-cli checkpoint <save|load> ...`
    Checkpoint(CheckpointCmd),
    /// `smt-cli trace <record|inspect|stats> ...`
    Trace(TraceCmd),
    /// `smt-cli help` / `--help`
    Help,
}

/// The `trace` subcommand: record, verify and summarize on-disk `.smtt`
/// trace files.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceCmd {
    /// `smt-cli trace record <benchmark> --out <path> [flags]`
    Record(TraceRecordArgs),
    /// `smt-cli trace inspect <path>`
    Inspect {
        /// Trace file to verify (header, every record, digest).
        path: String,
    },
    /// `smt-cli trace stats <path>`
    Stats {
        /// Trace file to summarize.
        path: String,
    },
}

/// Flags of `trace record`.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceRecordArgs {
    /// Synthetic benchmark to record (a Table I name).
    pub benchmark: String,
    /// `--out <path>`: where to write the `.smtt` file (required).
    pub out: String,
    /// `--ops <n>`: ops to record (default: twice the scale's per-thread
    /// instruction budget — enough that ICOUNT-style replay runs never wrap
    /// the file; flush policies and sampled runs consume more, so size it
    /// up for those).
    pub ops: Option<u64>,
    /// `--scale <name>`: scale whose seed (and default op count) to record
    /// under (default `standard`).
    pub scale: Option<RunScale>,
    /// `--seed <n>`: overrides the scale's base seed.
    pub seed: Option<u64>,
}

/// The `checkpoint` subcommand: capture or inspect serialized warm
/// checkpoints.
#[derive(Clone, PartialEq, Debug)]
pub enum CheckpointCmd {
    /// `smt-cli checkpoint save <bench1,bench2,...> --out <path> [flags]`
    Save(CheckpointSaveArgs),
    /// `smt-cli checkpoint load <path>`
    Load {
        /// Checkpoint JSON file to load and validate.
        path: String,
    },
}

/// Flags of `checkpoint save`.
#[derive(Clone, PartialEq, Debug)]
pub struct CheckpointSaveArgs {
    /// One benchmark per hardware thread (comma-separated on the command
    /// line).
    pub benchmarks: Vec<String>,
    /// `--out <path>`: where to write the checkpoint JSON (required).
    pub out: String,
    /// `--scale <name>`: scale whose warm-up prefix and seed are captured
    /// (default `standard`).
    pub scale: Option<RunScale>,
    /// `--instructions <n>`: overrides the warm-up prefix length.
    pub instructions: Option<u64>,
}

/// Flags of the `bench` subcommand.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BenchArgs {
    /// `--quick`: reduced-size smoke run (CI).
    pub quick: bool,
    /// `--instructions <n>`: overrides the per-thread instruction budget.
    pub instructions: Option<u64>,
    /// `--runs <n>`: timed repetitions per scenario (best one is kept).
    pub runs: Option<u32>,
    /// `--out <path>`: where to write the JSON report
    /// (default `BENCH_throughput.json`).
    pub out: Option<String>,
    /// `--baseline <path>`: earlier report (or trajectory) to compare against.
    pub baseline: Option<String>,
    /// `--cores <n>`: additionally run the chip scenario at n cores x 2 threads.
    pub cores: Option<usize>,
    /// `--chip-threads <n>`: worker threads stepping every chip row's cores
    /// (1 = serial; overrides each scenario's own setting).
    pub chip_threads: Option<usize>,
    /// `--selector <name>`: selector driving the adaptive matrix row.
    pub selector: Option<SelectorKind>,
    /// `--interval <cycles>`: interval length of the adaptive matrix row.
    pub interval: Option<u64>,
    /// `--quiet`: suppress the stdout table.
    pub quiet: bool,
}

/// Flags of the `run` subcommand.
#[derive(Clone, PartialEq, Debug)]
pub struct RunArgs {
    /// Registry name or path to a TOML spec file.
    pub target: String,
    /// `--scale <tiny|test|standard|full>`: overrides the spec's run scale.
    pub scale: Option<RunScale>,
    /// `--instructions <n>`: overrides the instruction budget per thread.
    pub instructions: Option<u64>,
    /// `--per-group <n>`: keeps at most n workloads per ILP/MLP/MIX group.
    pub per_group: Option<usize>,
    /// `--limit <n>`: keeps at most the first n workloads.
    pub limit: Option<usize>,
    /// `--cores <n>`: overrides a chip spec's core count.
    pub cores: Option<usize>,
    /// `--chip-threads <n>`: worker threads stepping a chip spec's cores
    /// within each cell (1 = serial; distinct from the engine's `--threads`).
    pub chip_threads: Option<usize>,
    /// `--selector <name>`: restricts an adaptive spec to one selector.
    pub selector: Option<SelectorKind>,
    /// `--interval <cycles>`: overrides an adaptive spec's interval length.
    pub interval: Option<u64>,
    /// `--threads <n>`: engine worker threads (default: machine parallelism).
    pub threads: Option<usize>,
    /// `--serial`: shorthand for `--threads 1`.
    pub serial: bool,
    /// `--out <path>`: also write the report to a file (format from the
    /// extension unless `--format` is given).
    pub out: Option<String>,
    /// `--format <text|json|toml>`: stdout (and `--out`) format.
    pub format: Option<OutputFormat>,
    /// `--quiet`: suppress the text report on stdout when `--out` is given.
    pub quiet: bool,
    /// `--max-retries <n>`: retries per failing cell beyond the first attempt.
    pub max_retries: Option<u64>,
    /// `--cell-timeout <ms>`: wall-clock budget per cell attempt.
    pub cell_timeout: Option<u64>,
    /// `--fail-fast`: skip remaining cells after the first permanent failure.
    pub fail_fast: bool,
    /// `--fault-plan <path>`: TOML fault plan injected into the engine.
    pub fault_plan: Option<String>,
    /// `--sampled`: run a policy grid in sampled mode (SMARTS-style
    /// fast-forward/measure interleaving) with the default cadence.
    pub sampled: bool,
}

impl RunArgs {
    fn new(target: String) -> Self {
        RunArgs {
            target,
            scale: None,
            instructions: None,
            per_group: None,
            limit: None,
            cores: None,
            chip_threads: None,
            selector: None,
            interval: None,
            threads: None,
            serial: false,
            out: None,
            format: None,
            quiet: false,
            max_retries: None,
            cell_timeout: None,
            fail_fast: false,
            fault_plan: None,
            sampled: false,
        }
    }
}

/// Parses the command line (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, unknown flags, or
/// malformed flag values.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut iter = args.iter();
    let command = match iter.next() {
        None => return Ok(Command::Help),
        Some(c) => c.as_str(),
    };
    match command {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => {
            if let Some(extra) = iter.next() {
                return Err(format!("`list` takes no arguments, got `{extra}`"));
            }
            Ok(Command::List)
        }
        "describe" => {
            let name = iter
                .next()
                .ok_or_else(|| "`describe` needs an experiment name".to_string())?
                .clone();
            if let Some(extra) = iter.next() {
                return Err(format!("`describe` takes one argument, got `{extra}`"));
            }
            Ok(Command::Describe { name })
        }
        "run" => {
            let target = iter
                .next()
                .ok_or_else(|| "`run` needs an experiment name or a spec.toml path".to_string())?
                .clone();
            let mut run = RunArgs::new(target);
            while let Some(flag) = iter.next() {
                let mut value_for = |flag: &str| {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| format!("`{flag}` needs a value"))
                };
                match flag.as_str() {
                    "--scale" => {
                        let value = value_for("--scale")?;
                        run.scale = Some(RunScale::named(&value).ok_or_else(|| {
                            format!(
                                "unknown scale `{value}`, expected one of: {}",
                                RunScale::NAMES.join(", ")
                            )
                        })?);
                    }
                    "--instructions" => {
                        let value = value_for("--instructions")?;
                        run.instructions = Some(
                            value
                                .parse()
                                .map_err(|_| format!("invalid instruction count `{value}`"))?,
                        );
                    }
                    "--per-group" => {
                        let value = value_for("--per-group")?;
                        run.per_group = Some(
                            value
                                .parse()
                                .map_err(|_| format!("invalid per-group limit `{value}`"))?,
                        );
                    }
                    "--limit" => {
                        let value = value_for("--limit")?;
                        run.limit = Some(
                            value
                                .parse()
                                .map_err(|_| format!("invalid workload limit `{value}`"))?,
                        );
                    }
                    "--cores" => {
                        let value = value_for("--cores")?;
                        let cores: usize = value
                            .parse()
                            .map_err(|_| format!("invalid core count `{value}`"))?;
                        if cores == 0 {
                            return Err("`--cores` must be at least 1".to_string());
                        }
                        run.cores = Some(cores);
                    }
                    "--chip-threads" => {
                        let value = value_for("--chip-threads")?;
                        let threads: usize = value
                            .parse()
                            .map_err(|_| format!("invalid chip thread count `{value}`"))?;
                        if threads == 0 {
                            return Err("`--chip-threads` must be at least 1".to_string());
                        }
                        run.chip_threads = Some(threads);
                    }
                    "--threads" => {
                        let value = value_for("--threads")?;
                        let threads: usize = value
                            .parse()
                            .map_err(|_| format!("invalid thread count `{value}`"))?;
                        if threads == 0 {
                            return Err("`--threads` must be at least 1".to_string());
                        }
                        run.threads = Some(threads);
                    }
                    "--selector" => {
                        run.selector = Some(parse_selector(&value_for("--selector")?)?);
                    }
                    "--interval" => {
                        run.interval = Some(parse_interval(&value_for("--interval")?)?);
                    }
                    "--serial" => run.serial = true,
                    "--out" => run.out = Some(value_for("--out")?),
                    "--format" => {
                        let value = value_for("--format")?;
                        run.format = Some(OutputFormat::from_name(&value).ok_or_else(|| {
                            format!("unknown format `{value}`, expected text, json or toml")
                        })?);
                    }
                    "--quiet" | "-q" => run.quiet = true,
                    "--max-retries" => {
                        let value = value_for("--max-retries")?;
                        run.max_retries = Some(
                            value
                                .parse()
                                .map_err(|_| format!("invalid retry count `{value}`"))?,
                        );
                    }
                    "--cell-timeout" => {
                        let value = value_for("--cell-timeout")?;
                        let timeout: u64 = value
                            .parse()
                            .map_err(|_| format!("invalid cell timeout `{value}`"))?;
                        if timeout == 0 {
                            return Err("`--cell-timeout` must be at least 1 ms".to_string());
                        }
                        run.cell_timeout = Some(timeout);
                    }
                    "--fail-fast" => run.fail_fast = true,
                    "--fault-plan" => run.fault_plan = Some(value_for("--fault-plan")?),
                    "--sampled" => run.sampled = true,
                    other => return Err(format!("unknown flag `{other}` for `run`")),
                }
            }
            Ok(Command::Run(run))
        }
        "bench" => {
            let mut bench = BenchArgs::default();
            while let Some(flag) = iter.next() {
                let mut value_for = |flag: &str| {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| format!("`{flag}` needs a value"))
                };
                match flag.as_str() {
                    "--quick" => bench.quick = true,
                    "--instructions" => {
                        let value = value_for("--instructions")?;
                        let instructions: u64 = value
                            .parse()
                            .map_err(|_| format!("invalid instruction count `{value}`"))?;
                        if instructions == 0 {
                            return Err("`--instructions` must be at least 1".to_string());
                        }
                        bench.instructions = Some(instructions);
                    }
                    "--runs" => {
                        let value = value_for("--runs")?;
                        let runs: u32 = value
                            .parse()
                            .map_err(|_| format!("invalid run count `{value}`"))?;
                        if runs == 0 {
                            return Err("`--runs` must be at least 1".to_string());
                        }
                        bench.runs = Some(runs);
                    }
                    "--cores" => {
                        let value = value_for("--cores")?;
                        let cores: usize = value
                            .parse()
                            .map_err(|_| format!("invalid core count `{value}`"))?;
                        if !(2..=8).contains(&cores) {
                            return Err("`--cores` must be between 2 and 8 for bench".to_string());
                        }
                        bench.cores = Some(cores);
                    }
                    "--chip-threads" => {
                        let value = value_for("--chip-threads")?;
                        let threads: usize = value
                            .parse()
                            .map_err(|_| format!("invalid chip thread count `{value}`"))?;
                        if threads == 0 {
                            return Err("`--chip-threads` must be at least 1".to_string());
                        }
                        bench.chip_threads = Some(threads);
                    }
                    "--selector" => {
                        bench.selector = Some(parse_selector(&value_for("--selector")?)?);
                    }
                    "--interval" => {
                        bench.interval = Some(parse_interval(&value_for("--interval")?)?);
                    }
                    "--out" => bench.out = Some(value_for("--out")?),
                    "--baseline" => bench.baseline = Some(value_for("--baseline")?),
                    "--quiet" | "-q" => bench.quiet = true,
                    other => return Err(format!("unknown flag `{other}` for `bench`")),
                }
            }
            Ok(Command::Bench(bench))
        }
        "checkpoint" => {
            let action = iter
                .next()
                .ok_or_else(|| "`checkpoint` needs an action: save or load".to_string())?;
            match action.as_str() {
                "save" => {
                    let list = iter.next().ok_or_else(|| {
                        "`checkpoint save` needs a comma-separated benchmark list".to_string()
                    })?;
                    let benchmarks: Vec<String> = list
                        .split(',')
                        .map(|b| b.trim().to_string())
                        .filter(|b| !b.is_empty())
                        .collect();
                    if benchmarks.is_empty() {
                        return Err(format!("no benchmarks in `{list}`"));
                    }
                    let mut save = CheckpointSaveArgs {
                        benchmarks,
                        out: String::new(),
                        scale: None,
                        instructions: None,
                    };
                    while let Some(flag) = iter.next() {
                        let mut value_for = |flag: &str| {
                            iter.next()
                                .cloned()
                                .ok_or_else(|| format!("`{flag}` needs a value"))
                        };
                        match flag.as_str() {
                            "--out" => save.out = value_for("--out")?,
                            "--scale" => {
                                let value = value_for("--scale")?;
                                save.scale = Some(RunScale::named(&value).ok_or_else(|| {
                                    format!(
                                        "unknown scale `{value}`, expected one of: {}",
                                        RunScale::NAMES.join(", ")
                                    )
                                })?);
                            }
                            "--instructions" => {
                                let value = value_for("--instructions")?;
                                let instructions: u64 = value
                                    .parse()
                                    .map_err(|_| format!("invalid instruction count `{value}`"))?;
                                if instructions == 0 {
                                    return Err("`--instructions` must be at least 1".to_string());
                                }
                                save.instructions = Some(instructions);
                            }
                            other => {
                                return Err(format!("unknown flag `{other}` for `checkpoint save`"))
                            }
                        }
                    }
                    if save.out.is_empty() {
                        return Err("`checkpoint save` needs `--out <path>`".to_string());
                    }
                    Ok(Command::Checkpoint(CheckpointCmd::Save(save)))
                }
                "load" => {
                    let path = iter
                        .next()
                        .ok_or_else(|| "`checkpoint load` needs a file path".to_string())?
                        .clone();
                    if let Some(extra) = iter.next() {
                        return Err(format!(
                            "`checkpoint load` takes one argument, got `{extra}`"
                        ));
                    }
                    Ok(Command::Checkpoint(CheckpointCmd::Load { path }))
                }
                other => Err(format!(
                    "unknown checkpoint action `{other}`, expected save or load"
                )),
            }
        }
        "trace" => {
            let action = iter
                .next()
                .ok_or_else(|| "`trace` needs an action: record, inspect or stats".to_string())?;
            match action.as_str() {
                "record" => {
                    let benchmark = iter
                        .next()
                        .ok_or_else(|| "`trace record` needs a benchmark name".to_string())?
                        .clone();
                    let mut record = TraceRecordArgs {
                        benchmark,
                        out: String::new(),
                        ops: None,
                        scale: None,
                        seed: None,
                    };
                    while let Some(flag) = iter.next() {
                        let mut value_for = |flag: &str| {
                            iter.next()
                                .cloned()
                                .ok_or_else(|| format!("`{flag}` needs a value"))
                        };
                        match flag.as_str() {
                            "--out" => record.out = value_for("--out")?,
                            "--ops" => {
                                let value = value_for("--ops")?;
                                let ops: u64 = value
                                    .parse()
                                    .map_err(|_| format!("invalid op count `{value}`"))?;
                                if ops == 0 {
                                    return Err("`--ops` must be at least 1".to_string());
                                }
                                record.ops = Some(ops);
                            }
                            "--scale" => {
                                let value = value_for("--scale")?;
                                record.scale = Some(RunScale::named(&value).ok_or_else(|| {
                                    format!(
                                        "unknown scale `{value}`, expected one of: {}",
                                        RunScale::NAMES.join(", ")
                                    )
                                })?);
                            }
                            "--seed" => {
                                let value = value_for("--seed")?;
                                record.seed = Some(
                                    value
                                        .parse()
                                        .map_err(|_| format!("invalid seed `{value}`"))?,
                                );
                            }
                            other => {
                                return Err(format!("unknown flag `{other}` for `trace record`"))
                            }
                        }
                    }
                    if record.out.is_empty() {
                        return Err("`trace record` needs `--out <path>`".to_string());
                    }
                    Ok(Command::Trace(TraceCmd::Record(record)))
                }
                "inspect" | "stats" => {
                    let path = iter
                        .next()
                        .ok_or_else(|| format!("`trace {action}` needs a file path"))?
                        .clone();
                    if let Some(extra) = iter.next() {
                        return Err(format!(
                            "`trace {action}` takes one argument, got `{extra}`"
                        ));
                    }
                    Ok(Command::Trace(if action == "inspect" {
                        TraceCmd::Inspect { path }
                    } else {
                        TraceCmd::Stats { path }
                    }))
                }
                other => Err(format!(
                    "unknown trace action `{other}`, expected record, inspect or stats"
                )),
            }
        }
        other => Err(format!("unknown command `{other}`; try `smt-cli help`")),
    }
}

fn parse_selector(value: &str) -> Result<SelectorKind, String> {
    SelectorKind::from_name(value).ok_or_else(|| {
        let names: Vec<&str> = SelectorKind::ALL.iter().map(|s| s.name()).collect();
        format!(
            "unknown selector `{value}`, expected one of: {}",
            names.join(", ")
        )
    })
}

fn parse_interval(value: &str) -> Result<u64, String> {
    let interval: u64 = value
        .parse()
        .map_err(|_| format!("invalid interval `{value}`"))?;
    if interval == 0 {
        return Err("`--interval` must be at least 1 cycle".to_string());
    }
    Ok(interval)
}

/// The help text.
pub const HELP: &str = "\
smt-cli - run the paper's experiments (and your own) from the command line

USAGE:
    smt-cli list
        List every registered experiment with its paper reference.

    smt-cli describe <name>
        Print an experiment's full spec as TOML (copy, edit, and run it).

    smt-cli run <name|spec.toml> [flags]
        Run a registered experiment or a TOML spec file.

    smt-cli bench [flags]
        Time the fixed throughput scenario matrix (1T/2T/4T single-core cells
        plus a 2-core chip cell, ILP/MLP mixes, ICOUNT + MLP-aware flush) and
        append a dated entry to the BENCH_throughput.json trajectory.

    smt-cli checkpoint save <bench1,bench2,...> --out <path> [flags]
        Functionally fast-forward a workload's warm-up prefix and write the
        warm state (caches, TLBs, predictors, LLSR) as a checkpoint JSON.

    smt-cli checkpoint load <path>
        Load a checkpoint file, validate its schema, and print its summary.

    smt-cli trace record <benchmark> --out <path.smtt> [flags]
        Record a benchmark's op stream into an on-disk `.smtt` binary trace.
        The file can then be used anywhere a benchmark name is accepted via
        the `trace:<path>` workload scheme.

    smt-cli trace inspect <path.smtt>
        Validate a trace file end to end (header, every record, digest) and
        print its header summary.

    smt-cli trace stats <path.smtt>
        Print a trace file's op-kind mix, branch and dependency statistics.

BENCH FLAGS:
    --quick             Reduced-size smoke run (CI)
    --instructions <n>  Instructions per thread (default 30000; 3000 with --quick)
    --runs <n>          Timed repetitions per scenario (default 3; 1 with --quick)
    --cores <n>         Also run the chip scenario at n cores x 2 threads (2-8)
    --chip-threads <n>  Worker threads stepping every chip row's cores (1 = serial)
    --selector <s>      Selector for the adaptive row (static|sampling|mlp-threshold)
    --interval <n>      Interval cycles for the adaptive row (default 512)
    --out <path>        Trajectory path to append to (default BENCH_throughput.json)
    --baseline <path>   Compare against an earlier report/trajectory, print speedups
    --quiet             Suppress the stdout table

RUN FLAGS:
    --scale <tiny|test|standard|full>   Override the spec's run scale
    --instructions <n>                  Override instructions per thread
    --per-group <n>     Keep at most n workloads per ILP/MLP/MIX group
    --limit <n>         Keep at most the first n workloads
    --cores <n>         Override a chip spec's core count
    --chip-threads <n>  Worker threads stepping a chip spec's cores (1 = serial)
    --selector <s>      Restrict an adaptive spec to one selector
    --interval <n>      Override an adaptive spec's interval length (cycles)
    --threads <n>       Engine worker threads (default: all cores)
    --serial            Same as --threads 1
    --out <path>        Also write the report to a file (.json/.toml/.txt)
    --format <f>        Force text, json or toml output
    --quiet             With --out: suppress the stdout report
    --max-retries <n>   Retries per failing cell beyond the first attempt (default 1)
    --cell-timeout <ms> Wall-clock budget per cell attempt (default: none)
    --fail-fast         Skip remaining cells after the first permanent failure
    --fault-plan <path> Inject a deterministic TOML fault plan (chaos testing)
    --sampled           Sampled mode for policy grids: SMARTS-style
                        fast-forward/measure interleaving with shared warm
                        checkpoints and per-metric confidence intervals

CHECKPOINT SAVE FLAGS:
    --out <path>        Where to write the checkpoint JSON (required)
    --scale <name>      Scale whose warm-up prefix and seed to capture (default standard)
    --instructions <n>  Override the warm-up prefix length

TRACE RECORD FLAGS:
    --out <path>        Where to write the `.smtt` trace (required)
    --ops <n>           Ops to record (default: twice the scale's per-thread budget;
                        flush policies and sampled runs consume more - size it up)
    --scale <name>      Scale whose seed and budget to record under (default standard)
    --seed <n>          Override the scale's base seed

EXIT CODES (run):
    0   every cell completed
    3   degraded: some cells failed, partial report written
    1   total failure (no cells completed, or the run could not start)
    2   command-line or spec parse error

EXAMPLES:
    smt-cli run fig09_two_thread_policies --scale test --out /tmp/r.json
    smt-cli run chip_2c2t_allocation_matrix --scale tiny --limit 1
    smt-cli run chip_4c2t_allocation_matrix --scale test --chip-threads 4
    smt-cli run adaptive_4t --scale test --selector sampling --interval 256
    smt-cli describe fig09_two_thread_policies > my_experiment.toml
    smt-cli run my_experiment.toml --threads 8
    smt-cli bench --out BENCH_throughput.json
    smt-cli bench --quick --cores 4 --baseline BENCH_throughput.json --out /tmp/now.json
    smt-cli run sampled_4t_policies --scale standard
    smt-cli run fig09_two_thread_policies --sampled --scale test
    smt-cli checkpoint save mcf,gcc --scale test --out /tmp/warm.json
    smt-cli checkpoint load /tmp/warm.json
    smt-cli trace record mcf --scale test --out /tmp/mcf.smtt
    smt-cli trace inspect /tmp/mcf.smtt
    smt-cli trace stats /tmp/mcf.smtt
";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Command {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn parse_err(args: &[&str]) -> String {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
    }

    #[test]
    fn top_level_commands() {
        assert_eq!(parse_ok(&[]), Command::Help);
        assert_eq!(parse_ok(&["help"]), Command::Help);
        assert_eq!(parse_ok(&["list"]), Command::List);
        assert_eq!(
            parse_ok(&["describe", "fig09_two_thread_policies"]),
            Command::Describe {
                name: "fig09_two_thread_policies".to_string()
            }
        );
    }

    #[test]
    fn run_flags_parse() {
        let command = parse_ok(&[
            "run",
            "fig09_two_thread_policies",
            "--scale",
            "test",
            "--per-group",
            "2",
            "--threads",
            "4",
            "--out",
            "/tmp/r.json",
        ]);
        let Command::Run(run) = command else {
            panic!("expected run");
        };
        assert_eq!(run.target, "fig09_two_thread_policies");
        assert_eq!(run.scale, Some(RunScale::test()));
        assert_eq!(run.per_group, Some(2));
        assert_eq!(run.threads, Some(4));
        assert_eq!(run.cores, None);
        assert_eq!(run.out.as_deref(), Some("/tmp/r.json"));
        assert!(!run.serial && !run.quiet);
    }

    #[test]
    fn run_errors_are_helpful() {
        assert!(parse_err(&["run"]).contains("needs an experiment name"));
        assert!(parse_err(&["run", "x", "--scale", "huge"]).contains("tiny"));
        assert!(parse_err(&["run", "x", "--threads", "0"]).contains("at least 1"));
        assert!(parse_err(&["run", "x", "--warp"]).contains("--warp"));
        assert!(parse_err(&["frobnicate"]).contains("frobnicate"));
        assert!(parse_err(&["list", "extra"]).contains("takes no arguments"));
    }

    #[test]
    fn resilience_flags_parse_and_validate() {
        let Command::Run(run) = parse_ok(&[
            "run",
            "fig09_two_thread_policies",
            "--max-retries",
            "3",
            "--cell-timeout",
            "5000",
            "--fail-fast",
            "--fault-plan",
            "plans/chaos_transient.toml",
        ]) else {
            panic!("expected run");
        };
        assert_eq!(run.max_retries, Some(3));
        assert_eq!(run.cell_timeout, Some(5_000));
        assert!(run.fail_fast);
        assert_eq!(
            run.fault_plan.as_deref(),
            Some("plans/chaos_transient.toml")
        );
        assert!(parse_err(&["run", "x", "--cell-timeout", "0"]).contains("at least 1 ms"));
        assert!(parse_err(&["run", "x", "--max-retries", "many"]).contains("invalid retry count"));
        assert!(parse_err(&["run", "x", "--fault-plan"]).contains("needs a value"));
    }

    #[test]
    fn bench_flags_parse() {
        assert_eq!(parse_ok(&["bench"]), Command::Bench(BenchArgs::default()));
        let command = parse_ok(&[
            "bench",
            "--quick",
            "--instructions",
            "5000",
            "--runs",
            "2",
            "--cores",
            "4",
            "--out",
            "/tmp/b.json",
            "--baseline",
            "old.json",
            "--quiet",
        ]);
        let Command::Bench(bench) = command else {
            panic!("expected bench");
        };
        assert!(bench.quick && bench.quiet);
        assert_eq!(bench.instructions, Some(5_000));
        assert_eq!(bench.runs, Some(2));
        assert_eq!(bench.cores, Some(4));
        assert_eq!(bench.out.as_deref(), Some("/tmp/b.json"));
        assert_eq!(bench.baseline.as_deref(), Some("old.json"));
    }

    #[test]
    fn cores_flags_parse_and_validate() {
        let Command::Run(run) = parse_ok(&["run", "chip_2c2t_allocation_matrix", "--cores", "4"])
        else {
            panic!("expected run");
        };
        assert_eq!(run.cores, Some(4));
        assert!(parse_err(&["run", "x", "--cores", "0"]).contains("at least 1"));
        assert!(parse_err(&["bench", "--cores", "1"]).contains("between 2 and 8"));
        assert!(parse_err(&["bench", "--cores", "9"]).contains("between 2 and 8"));
    }

    #[test]
    fn chip_threads_flags_parse_and_validate() {
        let Command::Run(run) =
            parse_ok(&["run", "chip_2c2t_allocation_matrix", "--chip-threads", "2"])
        else {
            panic!("expected run");
        };
        assert_eq!(run.chip_threads, Some(2));
        let Command::Bench(bench) = parse_ok(&["bench", "--chip-threads", "4"]) else {
            panic!("expected bench");
        };
        assert_eq!(bench.chip_threads, Some(4));
        assert!(parse_err(&["run", "x", "--chip-threads", "0"]).contains("at least 1"));
        assert!(parse_err(&["bench", "--chip-threads", "zero"]).contains("invalid chip thread"));
        assert!(parse_err(&["bench", "--chip-threads"]).contains("--chip-threads"));
    }

    #[test]
    fn selector_and_interval_flags_parse_and_validate() {
        let Command::Run(run) = parse_ok(&[
            "run",
            "adaptive_2t",
            "--selector",
            "mlp-threshold",
            "--interval",
            "256",
        ]) else {
            panic!("expected run");
        };
        assert_eq!(run.selector, Some(SelectorKind::MlpThreshold));
        assert_eq!(run.interval, Some(256));
        let Command::Bench(bench) =
            parse_ok(&["bench", "--selector", "sampling", "--interval", "64"])
        else {
            panic!("expected bench");
        };
        assert_eq!(bench.selector, Some(SelectorKind::Sampling));
        assert_eq!(bench.interval, Some(64));
        assert!(parse_err(&["run", "x", "--selector", "oracle"]).contains("sampling"));
        assert!(parse_err(&["bench", "--interval", "0"]).contains("at least 1"));
        assert!(parse_err(&["run", "x", "--interval", "soon"]).contains("invalid interval"));
    }

    #[test]
    fn sampled_flag_parses() {
        let Command::Run(run) = parse_ok(&["run", "fig09_two_thread_policies", "--sampled"]) else {
            panic!("expected run");
        };
        assert!(run.sampled);
        let Command::Run(run) = parse_ok(&["run", "fig09_two_thread_policies"]) else {
            panic!("expected run");
        };
        assert!(!run.sampled);
    }

    #[test]
    fn checkpoint_save_parses_and_validates() {
        let command = parse_ok(&[
            "checkpoint",
            "save",
            "mcf,gcc",
            "--scale",
            "test",
            "--instructions",
            "5000",
            "--out",
            "/tmp/warm.json",
        ]);
        let Command::Checkpoint(CheckpointCmd::Save(save)) = command else {
            panic!("expected checkpoint save");
        };
        assert_eq!(save.benchmarks, vec!["mcf".to_string(), "gcc".to_string()]);
        assert_eq!(save.scale, Some(RunScale::test()));
        assert_eq!(save.instructions, Some(5_000));
        assert_eq!(save.out, "/tmp/warm.json");
        assert!(parse_err(&["checkpoint"]).contains("save or load"));
        assert!(parse_err(&["checkpoint", "save"]).contains("benchmark list"));
        assert!(parse_err(&["checkpoint", "save", ","]).contains("no benchmarks"));
        assert!(parse_err(&["checkpoint", "save", "mcf"]).contains("--out"));
        assert!(parse_err(&["checkpoint", "save", "mcf", "--warp"]).contains("--warp"));
        assert!(parse_err(&["checkpoint", "diff"]).contains("save or load"));
    }

    #[test]
    fn checkpoint_load_parses() {
        assert_eq!(
            parse_ok(&["checkpoint", "load", "/tmp/warm.json"]),
            Command::Checkpoint(CheckpointCmd::Load {
                path: "/tmp/warm.json".to_string()
            })
        );
        assert!(parse_err(&["checkpoint", "load"]).contains("file path"));
        assert!(parse_err(&["checkpoint", "load", "a", "b"]).contains("one argument"));
    }

    #[test]
    fn trace_record_parses_and_validates() {
        let command = parse_ok(&[
            "trace",
            "record",
            "mcf",
            "--scale",
            "test",
            "--ops",
            "4096",
            "--seed",
            "7",
            "--out",
            "/tmp/mcf.smtt",
        ]);
        let Command::Trace(TraceCmd::Record(record)) = command else {
            panic!("expected trace record");
        };
        assert_eq!(record.benchmark, "mcf");
        assert_eq!(record.scale, Some(RunScale::test()));
        assert_eq!(record.ops, Some(4_096));
        assert_eq!(record.seed, Some(7));
        assert_eq!(record.out, "/tmp/mcf.smtt");
        assert!(parse_err(&["trace"]).contains("record, inspect or stats"));
        assert!(parse_err(&["trace", "record"]).contains("benchmark name"));
        assert!(parse_err(&["trace", "record", "mcf"]).contains("--out"));
        assert!(parse_err(&["trace", "record", "mcf", "--ops", "0"]).contains("at least 1"));
        assert!(parse_err(&["trace", "record", "mcf", "--warp"]).contains("--warp"));
        assert!(parse_err(&["trace", "verify"]).contains("record, inspect or stats"));
    }

    #[test]
    fn trace_inspect_and_stats_parse() {
        assert_eq!(
            parse_ok(&["trace", "inspect", "/tmp/mcf.smtt"]),
            Command::Trace(TraceCmd::Inspect {
                path: "/tmp/mcf.smtt".to_string()
            })
        );
        assert_eq!(
            parse_ok(&["trace", "stats", "/tmp/mcf.smtt"]),
            Command::Trace(TraceCmd::Stats {
                path: "/tmp/mcf.smtt".to_string()
            })
        );
        assert!(parse_err(&["trace", "inspect"]).contains("file path"));
        assert!(parse_err(&["trace", "stats", "a", "b"]).contains("one argument"));
    }

    #[test]
    fn bench_errors_are_helpful() {
        assert!(parse_err(&["bench", "--instructions", "0"]).contains("at least 1"));
        assert!(parse_err(&["bench", "--runs", "zero"]).contains("invalid run count"));
        assert!(parse_err(&["bench", "--warp"]).contains("--warp"));
        assert!(parse_err(&["bench", "--out"]).contains("needs a value"));
    }

    #[test]
    fn formats_from_name_and_path() {
        assert_eq!(OutputFormat::from_name("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::from_name("yaml"), None);
        assert_eq!(OutputFormat::from_path("r.json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::from_path("r.toml"), Some(OutputFormat::Toml));
        assert_eq!(
            OutputFormat::from_path("report.txt"),
            Some(OutputFormat::Text)
        );
        assert_eq!(OutputFormat::from_path("noext"), None);
    }
}
