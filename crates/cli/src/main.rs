//! `smt-cli`: list, describe and run experiments from the command line.
//!
//! Every scenario the experiment registry knows — and any user-authored TOML
//! spec — is runnable and diffable without writing Rust:
//!
//! ```text
//! smt-cli list
//! smt-cli describe fig09_two_thread_policies
//! smt-cli run fig09_two_thread_policies --scale test --out /tmp/r.json
//! smt-cli run my_experiment.toml --threads 8
//! ```
//!
//! `run` reports partial results instead of dying with the first cell: exit
//! code 0 means every cell completed, 3 means a degraded (partial) report,
//! and 1 means total failure. Parse errors stay on exit code 2.

mod args;

use std::process::ExitCode;

use smt_core::experiments::{engine, ExperimentRegistry, ExperimentSpec, SamplingSpec};
use smt_core::runner::{CheckpointCache, RunScale};
use smt_core::throughput::{
    self, BenchOptions, ThroughputReport, ThroughputTrajectory, BASELINE_SCENARIO,
};
use smt_core::SimCheckpoint;
use smt_types::{RunHealthStatus, SimError, SmtConfig};

use args::{
    BenchArgs, CheckpointCmd, CheckpointSaveArgs, Command, OutputFormat, RunArgs, TraceCmd,
    TraceRecordArgs,
};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&raw) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    match dispatch(command) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(command: Command) -> Result<ExitCode, String> {
    match command {
        Command::Help => {
            print!("{}", args::HELP);
            Ok(ExitCode::SUCCESS)
        }
        Command::List => list().map(|()| ExitCode::SUCCESS),
        Command::Describe { name } => describe(&name).map(|()| ExitCode::SUCCESS),
        Command::Run(run) => execute(run),
        Command::Bench(bench) => execute_bench(bench).map(|()| ExitCode::SUCCESS),
        Command::Checkpoint(checkpoint) => {
            execute_checkpoint(checkpoint).map(|()| ExitCode::SUCCESS)
        }
        Command::Trace(trace) => execute_trace(trace).map(|()| ExitCode::SUCCESS),
    }
}

/// `trace record`: stream a benchmark's op stream into an on-disk `.smtt`
/// file; `trace inspect`: validate a trace end to end; `trace stats`: print a
/// trace's op mix.
fn execute_trace(command: TraceCmd) -> Result<(), String> {
    match command {
        TraceCmd::Record(record) => execute_trace_record(record),
        TraceCmd::Inspect { path } => {
            let scan = smt_trace::inspect::scan_file(&path).map_err(|e| e.to_string())?;
            let header = &scan.header;
            println!(
                "trace {path}\n  format version: {}\n  benchmark: {}\n  mlp-intensive: {}\n  \
                 ops: {}\n  digest: {:#018x} (verified)",
                header.version,
                header.benchmark,
                header.mlp_intensive,
                header.op_count,
                header.digest,
            );
            Ok(())
        }
        TraceCmd::Stats { path } => {
            let scan = smt_trace::inspect::scan_file(&path).map_err(|e| e.to_string())?;
            let total = scan.total_ops();
            println!("trace {path}: {} ({} ops)", scan.header.benchmark, total);
            for kind in smt_types::OpKind::ALL {
                let count = scan.count(kind);
                println!(
                    "  {:<10} {:>12}  ({:.1}%)",
                    format!("{kind:?}"),
                    count,
                    100.0 * count as f64 / total.max(1) as f64
                );
            }
            println!(
                "  taken branches: {}\n  ops with dependencies: {}",
                scan.taken_branches, scan.ops_with_deps
            );
            Ok(())
        }
    }
}

fn execute_trace_record(record: TraceRecordArgs) -> Result<(), String> {
    let mut scale = record.scale.unwrap_or_else(RunScale::standard);
    if let Some(seed) = record.seed {
        scale.seed = seed;
    }
    // Default op count: twice the scale's full per-thread budget (warm-up plus
    // measurement), so an ICOUNT-style replay under the same scale never wraps
    // the file. Flush policies permanently discard wrong-path fetches on every
    // flush and sampled runs cover the whole sampled horizon; both consume far
    // more ops than the budget, so recordings for them need explicit --ops.
    let ops = record
        .ops
        .unwrap_or_else(|| 2 * (scale.warmup_instructions + scale.instructions_per_thread).max(1));
    let mlp_intensive = smt_core::workloads::benchmark_is_mlp_intensive(&record.benchmark)
        .map_err(|e| e.to_string())?;
    let mut source =
        smt_core::runner::build_trace(&record.benchmark, scale).map_err(|e| e.to_string())?;
    eprintln!(
        "recording {} ops of `{}` (seed {})...",
        ops, record.benchmark, scale.seed
    );
    let summary = smt_trace::record_source(source.as_mut(), ops, &record.out, mlp_intensive)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "trace written to {}: {} ops, {} bytes, digest {:#018x}",
        record.out, summary.op_count, summary.bytes, summary.digest
    );
    Ok(())
}

/// `checkpoint save`: functionally fast-forward the workload's warm-up prefix
/// and serialize the warm state; `checkpoint load`: parse, validate and
/// summarize an existing checkpoint file.
fn execute_checkpoint(command: CheckpointCmd) -> Result<(), String> {
    match command {
        CheckpointCmd::Save(save) => execute_checkpoint_save(save),
        CheckpointCmd::Load { path } => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read checkpoint `{path}`: {e}"))?;
            let checkpoint: SimCheckpoint =
                serde_json::from_str(&text).map_err(|e| format!("checkpoint `{path}`: {e}"))?;
            checkpoint
                .validate()
                .map_err(|e| format!("checkpoint `{path}`: {e}"))?;
            let meta = &checkpoint.meta;
            println!(
                "checkpoint {path}\n  schema version: {}\n  benchmarks: {}\n  threads: {}\n  \
                 warmed instructions/thread: {}\n  seed: {}",
                meta.schema_version,
                meta.benchmarks.join(", "),
                meta.num_threads,
                meta.warmed_instructions,
                meta.seed,
            );
            Ok(())
        }
    }
}

fn execute_checkpoint_save(save: CheckpointSaveArgs) -> Result<(), String> {
    let mut scale = save.scale.unwrap_or_else(RunScale::standard);
    if let Some(instructions) = save.instructions {
        scale.warmup_instructions = instructions;
    }
    if scale.warmup_instructions == 0 {
        return Err("nothing to capture: the warm-up prefix is 0 instructions".to_string());
    }
    let benchmarks: Vec<&str> = save.benchmarks.iter().map(String::as_str).collect();
    let config = SmtConfig::baseline(benchmarks.len());
    eprintln!(
        "fast-forwarding {} for {} instructions/thread...",
        save.benchmarks.join("-"),
        scale.warmup_instructions
    );
    let checkpoint = CheckpointCache::new()
        .warmed(&benchmarks, &config, scale)
        .map_err(|e| e.to_string())?;
    let payload = serde_json::to_string_pretty(&checkpoint).map_err(|e| e.to_string())?;
    smt_core::artifacts::write_atomic(&save.out, payload + "\n")
        .map_err(|e| format!("cannot write `{}`: {e}", save.out))?;
    eprintln!("checkpoint written to {}", save.out);
    Ok(())
}

/// Best-effort git revision of the working tree, recorded in bench reports.
/// A dirty tree is marked `-dirty`: the measured binary then differs from the
/// named commit, and the report must not be mistaken for that commit's
/// trajectory point.
fn current_commit() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let mut rev = String::from_utf8(output.stdout).ok()?.trim().to_string();
    if rev.is_empty() {
        return None;
    }
    let status = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()?;
    if status.status.success() && !status.stdout.is_empty() {
        rev.push_str("-dirty");
    }
    Some(rev)
}

/// Today's UTC date as `YYYY-MM-DD` (Howard Hinnant's `civil_from_days`),
/// recorded with every appended trajectory entry.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn execute_bench(bench: BenchArgs) -> Result<(), String> {
    let mut opts = if bench.quick {
        BenchOptions::quick()
    } else {
        BenchOptions::standard()
    };
    if let Some(instructions) = bench.instructions {
        opts.instructions_per_thread = instructions;
    }
    if let Some(runs) = bench.runs {
        opts.runs = runs;
    }
    opts.extra_chip_cores = bench.cores;
    opts.adaptive_selector = bench.selector;
    opts.adaptive_interval = bench.interval;
    opts.chip_threads = bench.chip_threads;
    // Load the baseline up front: a missing or malformed file must fail before
    // the (minutes-long) measurement, not after it. Both the trajectory schema
    // and the legacy single-report schema are accepted; the latest entry is
    // what we compare against.
    let baseline = bench
        .baseline
        .as_deref()
        .map(|path| -> Result<(String, ThroughputReport), String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline `{path}`: {e}"))?;
            let trajectory = ThroughputTrajectory::from_json(&text).map_err(|e| e.to_string())?;
            let report = trajectory
                .latest()
                .ok_or_else(|| format!("baseline `{path}` has no entries"))?
                .clone();
            // The matrix is static, so comparability is known now: the
            // baseline must share at least one scenario with a usable rate.
            let comparable = report.scenarios.iter().any(|s| {
                s.cycles_per_second > 0.0
                    && throughput::scenario_matrix()
                        .iter()
                        .any(|m| m.name == s.name)
            });
            if !comparable {
                return Err(format!(
                    "baseline `{path}` shares no comparable scenarios with the current matrix"
                ));
            }
            Ok((path.to_string(), report))
        })
        .transpose()?;

    let scenario_count = throughput::scenarios_for(&opts)
        .map_err(|e| e.to_string())?
        .len();
    eprintln!(
        "benchmarking {scenario_count} scenarios at {} instructions/thread, best of {} run(s)...",
        opts.instructions_per_thread, opts.runs
    );
    let report = throughput::run_matrix(&opts, current_commit()).map_err(|e| e.to_string())?;

    // Append to the trajectory instead of overwriting it: the file keeps one
    // dated entry per recorded run, so the perf history of earlier commits
    // stays recoverable from the working tree.
    let out = bench.out.as_deref().unwrap_or("BENCH_throughput.json");
    let mut trajectory = match std::fs::read_to_string(out) {
        Ok(text) => ThroughputTrajectory::from_json(&text)
            .map_err(|e| format!("cannot append to `{out}`: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => ThroughputTrajectory::new(),
        Err(e) => return Err(format!("cannot read `{out}`: {e}")),
    };
    trajectory.push(today_utc(), report.clone());
    let payload = trajectory.to_json().map_err(|e| e.to_string())?;
    // Atomic write: a crash mid-append must not truncate the perf history.
    smt_core::artifacts::write_atomic(out, payload)
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!(
        "trajectory entry appended to {out} ({} entries)",
        trajectory.entries.len()
    );

    if !bench.quiet {
        print!("{}", report.format_text());
    }
    if let Some((path, baseline)) = &baseline {
        // Matrix drift (a freshly added or retired scenario) is a warning,
        // not an error: the comparison simply skips unshared scenarios.
        for warning in report.scenario_set_warnings(baseline) {
            eprintln!("warning: {warning}");
        }
        let rows = report.compare(baseline);
        println!("\nspeedup vs {path}:");
        for row in &rows {
            println!(
                "{:<18} {:>10.0} -> {:>10.0} cycles/s  ({:.2}x)",
                row.name, row.baseline_cycles_per_second, row.cycles_per_second, row.speedup
            );
        }
        match report.headline_speedup(baseline) {
            Some(headline) => println!("headline ({BASELINE_SCENARIO}): {headline:.2}x"),
            None => eprintln!(
                "warning: headline scenario `{BASELINE_SCENARIO}` is missing from this run \
                 or the baseline; no headline speedup to report"
            ),
        }
    }
    Ok(())
}

fn list() -> Result<(), String> {
    let registry = ExperimentRegistry::builtin();
    println!(
        "{:<32} {:<16} {:<18} {:>8} {:>9}",
        "name", "paper", "kind", "policies", "workloads"
    );
    for spec in registry.specs() {
        println!(
            "{:<32} {:<16} {:<18} {:>8} {:>9}",
            spec.name,
            spec.paper_ref,
            spec.kind.name(),
            spec.policies.len(),
            spec.workloads.len()
        );
    }
    println!("\nrun one with: smt-cli run <name> --scale test");
    Ok(())
}

fn describe(name: &str) -> Result<(), String> {
    let registry = ExperimentRegistry::builtin();
    let spec = registry
        .get(name)
        .ok_or_else(|| unknown_experiment(&registry, name))?;
    let text = toml::to_string(spec).map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

fn unknown_experiment(registry: &ExperimentRegistry, name: &str) -> String {
    format!(
        "unknown experiment `{name}`; registered experiments:\n  {}",
        registry.names().join("\n  ")
    )
}

/// Resolves the run target: a registry name, or a path to a TOML spec file.
fn load_spec(target: &str) -> Result<ExperimentSpec, String> {
    let registry = ExperimentRegistry::builtin();
    if let Some(spec) = registry.get(target) {
        return Ok(spec.clone());
    }
    let looks_like_path =
        target.ends_with(".toml") || target.contains('/') || target.contains('\\');
    if !looks_like_path {
        return Err(unknown_experiment(&registry, target));
    }
    let text = std::fs::read_to_string(target)
        .map_err(|e| format!("cannot read spec file `{target}`: {e}"))?;
    let spec: ExperimentSpec = toml::from_str(&text)
        .map_err(|e| SimError::invalid_config(format!("spec file `{target}`: {e}")).to_string())?;
    Ok(spec)
}

/// Loads and validates a fault plan from a TOML file (`--fault-plan`).
fn load_fault_plan(path: &str) -> Result<smt_resil::FaultPlan, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fault plan `{path}`: {e}"))?;
    let plan: smt_resil::FaultPlan =
        toml::from_str(&text).map_err(|e| format!("fault plan `{path}`: {e}"))?;
    plan.validate()
        .map_err(|e| format!("fault plan `{path}`: {e}"))?;
    Ok(plan)
}

fn execute(run: RunArgs) -> Result<ExitCode, String> {
    let mut spec = load_spec(&run.target)?;
    if let Some(scale) = run.scale {
        spec = spec.with_scale(scale);
    }
    if let Some(instructions) = run.instructions {
        spec.scale = spec.scale.with_instructions(instructions);
    }
    if let Some(per_group) = run.per_group {
        spec = spec
            .with_workload_limit_per_group(per_group)
            .map_err(|e| e.to_string())?;
    }
    if let Some(limit) = run.limit {
        spec = spec.with_workload_limit(limit);
    }
    if let Some(cores) = run.cores {
        match spec.chip.as_mut() {
            Some(chip) => chip.num_cores = cores,
            None => {
                return Err(format!(
                    "`--cores` only applies to chip_grid specs; `{}` is a `{}` experiment",
                    spec.name,
                    spec.kind.name()
                ))
            }
        }
    }
    if let Some(chip_threads) = run.chip_threads {
        match spec.chip.as_mut() {
            Some(chip) => chip.chip_threads = Some(chip_threads),
            None => {
                return Err(format!(
                    "`--chip-threads` only applies to chip_grid specs; `{}` is a `{}` experiment",
                    spec.name,
                    spec.kind.name()
                ))
            }
        }
    }
    if run.selector.is_some() || run.interval.is_some() {
        let Some(adaptive) = spec.adaptive.as_mut() else {
            return Err(format!(
                "`--selector`/`--interval` only apply to adaptive_grid specs; `{}` is a `{}` \
                 experiment",
                spec.name,
                spec.kind.name()
            ));
        };
        if let Some(selector) = run.selector {
            adaptive.selectors = vec![selector];
        }
        if let Some(interval) = run.interval {
            adaptive.interval_cycles = Some(interval);
        }
    }
    if run.sampled && spec.sampling.is_none() {
        spec.sampling = Some(SamplingSpec::default());
    }
    spec.validate().map_err(|e| e.to_string())?;
    let threads = if run.serial {
        1
    } else {
        run.threads.unwrap_or_else(engine::default_parallelism)
    };

    // Resilience policy: spec-level `[resilience]` settings first, command-line
    // flags on top.
    let mut policy = engine::RunPolicy::from_spec(&spec);
    if let Some(retries) = run.max_retries {
        policy.max_retries = retries;
    }
    if let Some(timeout) = run.cell_timeout {
        policy.cell_timeout_ms = Some(timeout);
    }
    if run.fail_fast {
        policy.fail_fast = true;
    }
    if let Some(path) = &run.fault_plan {
        policy.fault_plan = Some(load_fault_plan(path)?);
    }

    // The first banner axis is whatever the grid actually fans out over:
    // selector x candidate-set for adaptive grids, policies otherwise.
    let cell_axis = match &spec.adaptive {
        Some(adaptive) => format!(
            "{} selectors x {} candidate sets",
            adaptive.selectors.len(),
            adaptive.candidate_sets.len()
        ),
        None => format!("{} policies", spec.policies.len().max(1)),
    };
    let mode = if spec.sampling.is_some() {
        " (sampled)"
    } else {
        ""
    };
    eprintln!(
        "running `{}`{mode}: {cell_axis} x {} workloads x {} sweep points at {} \
         instructions/thread on {} threads...",
        spec.name,
        spec.workloads.len(),
        spec.sweep_points().len(),
        spec.scale.instructions_per_thread,
        threads
    );
    let report =
        engine::run_spec_with_policy(&spec, threads, &policy).map_err(|e| e.to_string())?;

    let stdout_format = run.format.unwrap_or(OutputFormat::Text);
    if let Some(path) = &run.out {
        let file_format = run
            .format
            .or_else(|| OutputFormat::from_path(path))
            .unwrap_or(OutputFormat::Json);
        let payload = render(&report, file_format)?;
        smt_core::artifacts::write_atomic(path, payload)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("report written to {path}");
        if !run.quiet {
            print!("{}", render(&report, stdout_format)?);
        }
    } else {
        print!("{}", render(&report, stdout_format)?);
    }

    // Exit-code contract: 0 = every cell completed, 3 = degraded (partial
    // report above is still valid), 1 = nothing completed. Reports without
    // health (pre-resilience engine) count as complete.
    Ok(match report.health.as_ref().map(|h| h.status) {
        None | Some(RunHealthStatus::Complete) => ExitCode::SUCCESS,
        Some(RunHealthStatus::Degraded) => {
            eprintln!(
                "warning: run degraded; partial report covers the completed cells (exit code 3)"
            );
            ExitCode::from(3)
        }
        Some(RunHealthStatus::Failed) => {
            eprintln!("error: every cell failed; see the health section of the report");
            ExitCode::FAILURE
        }
    })
}

fn render(
    report: &smt_core::experiments::ExperimentReport,
    format: OutputFormat,
) -> Result<String, String> {
    match format {
        OutputFormat::Text => Ok(report.format_text()),
        OutputFormat::Json => report
            .to_json()
            .map(|s| s + "\n")
            .map_err(|e| e.to_string()),
        OutputFormat::Toml => report.to_toml().map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_spec_resolves_registry_names() {
        let spec = load_spec("fig09_two_thread_policies").unwrap();
        assert_eq!(spec.name, "fig09_two_thread_policies");
    }

    #[test]
    fn load_spec_rejects_unknown_names_with_listing() {
        let err = load_spec("fig99_warp").unwrap_err();
        assert!(err.contains("fig99_warp"));
        assert!(err.contains("fig09_two_thread_policies"));
    }

    #[test]
    fn load_spec_reads_toml_files() {
        let dir = std::env::temp_dir();
        let path = dir.join("smt_cli_test_spec.toml");
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("fig04_mlp_distance_cdf").unwrap();
        std::fs::write(&path, toml::to_string(spec).unwrap()).unwrap();
        let loaded = load_spec(path.to_str().unwrap()).unwrap();
        assert_eq!(&loaded, spec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_spec_reports_malformed_files_as_invalid_config() {
        let dir = std::env::temp_dir();
        let path = dir.join("smt_cli_bad_spec.toml");
        std::fs::write(&path, "name = \"x\"\nbad_field = 1\n").unwrap();
        let err = load_spec(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("invalid configuration"), "{err}");
        assert!(err.contains("bad_field"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
