//! The paper's prediction structures.
//!
//! Three families of predictors are implemented, all per thread and all indexed by
//! the load program counter:
//!
//! * **Long-latency load predictors** (Section 4.1): decide in the front end
//!   whether a load is going to miss beyond the L3 / D-TLB. The paper's choice is
//!   the *miss pattern predictor* of Limousin et al. ([`MissPatternPredictor`]);
//!   a plain last-value predictor ([`LastValuePredictor`]) and the 2-bit
//!   saturating-counter predictor of El-Moursy & Albonesi ([`TwoBitMissPredictor`])
//!   are provided for the comparison the authors describe.
//! * **The long-latency shift register** (Section 4.2, [`Llsr`]): observes the
//!   commit stream and, whenever a long-latency load leaves the window, computes
//!   the *MLP distance* — how far down the dynamic instruction stream the last
//!   overlapping long-latency load was.
//! * **MLP predictors** (Section 4.2 / 6.5): the [`MlpDistancePredictor`] is a
//!   last-value predictor of the MLP distance; the [`BinaryMlpPredictor`] only
//!   remembers whether any MLP was observed (alternative (c)/(e) of Section 6.5).
//!
//! # Example
//!
//! ```
//! use smt_predictors::{Llsr, MlpDistancePredictor};
//!
//! let mut llsr = Llsr::new(8);
//! let mut predictor = MlpDistancePredictor::new(2048, 8);
//! // Commit a long-latency load at PC 0x40, then another 3 instructions later.
//! llsr.commit(0x40, true);
//! llsr.commit(0x44, false);
//! llsr.commit(0x48, false);
//! llsr.commit(0x4c, true);
//! // Fill the window so the first long-latency load falls out of the LLSR.
//! for i in 0..8u64 {
//!     if let Some(obs) = llsr.commit(0x100 + 4 * i, false) {
//!         predictor.update(obs.pc, obs.mlp_distance);
//!     }
//! }
//! assert_eq!(predictor.predict(0x40), 3);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod lll;
pub mod llsr;
pub mod mlp;

pub use lll::{
    LastValuePredictor, LongLatencyPredictor, MissPatternPredictor, MissPatternState,
    TwoBitMissPredictor,
};
pub use llsr::{Llsr, LlsrState, MlpObservation};
pub use mlp::{BinaryMlpPredictor, BinaryMlpState, MlpDistancePredictor, MlpDistanceState};
