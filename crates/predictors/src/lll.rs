//! Long-latency load predictors (Section 4.1).

/// Interface shared by all long-latency load predictors.
///
/// The predictor is consulted in the front-end pipeline ([`predict`]) and trained
/// when the load executes and its hit/miss status is known ([`update`]).
///
/// [`predict`]: LongLatencyPredictor::predict
/// [`update`]: LongLatencyPredictor::update
pub trait LongLatencyPredictor {
    /// Predicts whether the static load at `pc` will be a long-latency load
    /// (an L3 miss or D-TLB miss).
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the observed outcome of the load at `pc`.
    fn update(&mut self, pc: u64, was_long_latency: bool);

    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// The miss pattern predictor of Limousin et al. (Figure 2 of the paper).
///
/// Each entry, indexed by load PC, records (i) the number of hits by the same
/// static load between the two most recent long-latency misses and (ii) the number
/// of hits since the last long-latency miss. When (ii) reaches (i) the next
/// instance is predicted to be a long-latency load — a last-value predictor on the
/// *hit run length* between misses. The paper uses a 2K-entry table with 6-bit
/// counters (12 Kbit per thread).
#[derive(Clone, Debug)]
pub struct MissPatternPredictor {
    period: Vec<u8>,
    since_last: Vec<u8>,
    seen_miss: Vec<bool>,
    counter_max: u8,
}

/// Serializable snapshot of a [`MissPatternPredictor`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[serde(deny_unknown_fields)]
pub struct MissPatternState {
    /// Learned miss periods per table entry.
    pub period: Vec<u8>,
    /// Accesses since the last miss per table entry.
    pub since_last: Vec<u8>,
    /// Whether each entry has observed a miss yet.
    pub seen_miss: Vec<bool>,
}

impl MissPatternPredictor {
    /// Creates a predictor with `entries` table entries and 6-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u32) -> Self {
        Self::with_counter_bits(entries, 6)
    }

    /// Creates a predictor with an explicit counter width (used by sizing studies).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `counter_bits` is zero or greater than 8.
    pub fn with_counter_bits(entries: u32, counter_bits: u32) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        assert!(
            counter_bits > 0 && counter_bits <= 8,
            "counter bits must be in 1..=8"
        );
        MissPatternPredictor {
            period: vec![0; entries as usize],
            since_last: vec![0; entries as usize],
            seen_miss: vec![false; entries as usize],
            counter_max: ((1u16 << counter_bits) - 1) as u8,
        }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.period.len()
    }
}

impl MissPatternPredictor {
    /// Captures the predictor state for a warm checkpoint.
    pub fn state(&self) -> MissPatternState {
        MissPatternState {
            period: self.period.clone(),
            since_last: self.since_last.clone(),
            seen_miss: self.seen_miss.clone(),
        }
    }

    /// Restores a state captured with [`MissPatternPredictor::state`]. Fails
    /// when the table geometry differs.
    pub fn restore_state(&mut self, state: &MissPatternState) -> Result<(), String> {
        if state.period.len() != self.period.len() {
            return Err(format!(
                "miss-pattern table size mismatch: state has {}, predictor has {}",
                state.period.len(),
                self.period.len()
            ));
        }
        self.period.copy_from_slice(&state.period);
        self.since_last.copy_from_slice(&state.since_last);
        self.seen_miss.copy_from_slice(&state.seen_miss);
        Ok(())
    }
}

impl LongLatencyPredictor for MissPatternPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        // The paper's predictor fires only when the hit run-length since the last
        // miss *equals* the previously observed run-length — not ">=", which would
        // keep predicting "miss" forever after a single isolated miss.
        let s = self.slot(pc);
        self.seen_miss[s] && self.since_last[s] == self.period[s]
    }

    fn update(&mut self, pc: u64, was_long_latency: bool) {
        let s = self.slot(pc);
        if was_long_latency {
            self.period[s] = self.since_last[s];
            self.since_last[s] = 0;
            self.seen_miss[s] = true;
        } else {
            self.since_last[s] = (self.since_last[s] + 1).min(self.counter_max);
        }
    }

    fn name(&self) -> &'static str {
        "miss-pattern"
    }
}

/// A last-value hit/miss predictor: predicts whatever the previous dynamic
/// instance of the static load did.
#[derive(Clone, Debug)]
pub struct LastValuePredictor {
    last_was_miss: Vec<bool>,
}

impl LastValuePredictor {
    /// Creates a predictor with `entries` table entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u32) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        LastValuePredictor {
            last_was_miss: vec![false; entries as usize],
        }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.last_was_miss.len()
    }
}

impl LongLatencyPredictor for LastValuePredictor {
    fn predict(&mut self, pc: u64) -> bool {
        let s = self.slot(pc);
        self.last_was_miss[s]
    }

    fn update(&mut self, pc: u64, was_long_latency: bool) {
        let s = self.slot(pc);
        self.last_was_miss[s] = was_long_latency;
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// The 2-bit saturating-counter data-miss predictor of El-Moursy & Albonesi:
/// the counter counts towards "miss" on misses and towards "hit" on hits; a load
/// is predicted long latency when the counter is in one of the two upper states.
#[derive(Clone, Debug)]
pub struct TwoBitMissPredictor {
    counters: Vec<u8>,
}

impl TwoBitMissPredictor {
    /// Creates a predictor with `entries` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u32) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        TwoBitMissPredictor {
            counters: vec![0; entries as usize],
        }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.counters.len()
    }
}

impl LongLatencyPredictor for TwoBitMissPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        let s = self.slot(pc);
        self.counters[s] >= 2
    }

    fn update(&mut self, pc: u64, was_long_latency: bool) {
        let s = self.slot(pc);
        if was_long_latency {
            self.counters[s] = (self.counters[s] + 1).min(3);
        } else {
            self.counters[s] = self.counters[s].saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "two-bit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds a periodic hit/miss pattern (period `period`, one miss per period) and
    /// returns the prediction accuracy over the last `eval` references.
    fn run_periodic<P: LongLatencyPredictor>(
        p: &mut P,
        period: usize,
        total: usize,
        eval: usize,
    ) -> f64 {
        let mut correct = 0;
        for i in 0..total {
            let actual_miss = i % period == period - 1;
            let predicted = p.predict(0x400);
            if i >= total - eval && predicted == actual_miss {
                correct += 1;
            }
            p.update(0x400, actual_miss);
        }
        correct as f64 / eval as f64
    }

    #[test]
    fn miss_pattern_learns_periodic_misses() {
        let mut p = MissPatternPredictor::new(2048);
        let acc = run_periodic(&mut p, 10, 500, 300);
        assert!(
            acc > 0.95,
            "miss pattern predictor should nail periodic misses, got {acc}"
        );
    }

    #[test]
    fn miss_pattern_beats_last_value_on_periodic_pattern() {
        let mut mp = MissPatternPredictor::new(2048);
        let mut lv = LastValuePredictor::new(2048);
        let acc_mp = run_periodic(&mut mp, 8, 400, 300);
        let acc_lv = run_periodic(&mut lv, 8, 400, 300);
        assert!(
            acc_mp > acc_lv,
            "miss pattern {acc_mp} should beat last value {acc_lv}"
        );
    }

    #[test]
    fn last_value_predicts_streaks() {
        let mut p = LastValuePredictor::new(64);
        p.update(0x40, true);
        assert!(p.predict(0x40));
        p.update(0x40, false);
        assert!(!p.predict(0x40));
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut p = TwoBitMissPredictor::new(64);
        p.update(0x40, true);
        p.update(0x40, true);
        assert!(p.predict(0x40));
        p.update(0x40, true); // saturate at strongly-miss
                              // One hit does not flip a strongly-miss counter.
        p.update(0x40, false);
        assert!(p.predict(0x40));
        p.update(0x40, false);
        assert!(!p.predict(0x40));
    }

    #[test]
    fn always_hitting_load_never_predicted_miss() {
        let mut p = MissPatternPredictor::new(2048);
        for _ in 0..200 {
            assert!(!p.predict(0x800));
            p.update(0x800, false);
        }
    }

    #[test]
    fn one_isolated_miss_does_not_poison_the_entry() {
        let mut p = MissPatternPredictor::new(2048);
        // Warm the entry with hits, one miss, then hits forever.
        for _ in 0..5 {
            p.update(0x900, false);
        }
        p.update(0x900, true);
        let mut wrong = 0;
        for _ in 0..100 {
            if p.predict(0x900) {
                wrong += 1;
            }
            p.update(0x900, false);
        }
        // Exactly one stale "miss" prediction fires (at the learned run length);
        // after that the predictor returns to predicting hits.
        assert!(
            wrong <= 1,
            "isolated miss poisoned the entry: {wrong} wrong predictions"
        );
    }

    #[test]
    fn names_are_distinct() {
        let a = MissPatternPredictor::new(16);
        let b = LastValuePredictor::new(16);
        let c = TwoBitMissPredictor::new(16);
        assert_ne!(a.name(), b.name());
        assert_ne!(b.name(), c.name());
        assert_ne!(a.name(), c.name());
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        let _ = MissPatternPredictor::new(0);
    }
}
