//! The long-latency shift register (LLSR) of Section 4.2.
//!
//! The LLSR observes the commit stream of one thread. Every committed instruction
//! shifts one bit into the register ("1" for a long-latency load, "0" otherwise),
//! together with the instruction's PC. When a "1" reaches the head — i.e. a
//! long-latency load falls out of the window of the last `capacity` committed
//! instructions — the *MLP distance* for that load is computed: the position of
//! the last (youngest) "1" still in the register, read from head to tail. That
//! observation trains the MLP distance predictor.
//!
//! The register has `ROB size / number of threads` entries in the paper's setup
//! (128 for the two-thread baseline), because that is the farthest ahead a thread
//! can realistically expose MLP when sharing the ROB.

use std::collections::VecDeque;

/// Serializable snapshot of an [`Llsr`]'s contents (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LlsrState {
    /// `(pc, is_long_latency_load)` per in-flight committed instruction,
    /// oldest first.
    pub entries: Vec<(u64, bool)>,
}

/// One completed MLP-distance observation produced by the LLSR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MlpObservation {
    /// PC of the long-latency load that just left the window.
    pub pc: u64,
    /// Observed MLP distance: number of instructions after the load within which
    /// the youngest overlapping long-latency load appears; `0` means the load was
    /// isolated (no MLP).
    pub mlp_distance: u32,
}

/// The per-thread long-latency shift register.
///
/// # Example
///
/// ```
/// use smt_predictors::Llsr;
/// let mut llsr = Llsr::new(4);
/// assert!(llsr.commit(0x40, true).is_none());
/// llsr.commit(0x44, false);
/// llsr.commit(0x48, true);
/// llsr.commit(0x4c, false);
/// // The fifth commit pushes the first long-latency load out of the 4-entry window.
/// let obs = llsr.commit(0x50, false).expect("observation");
/// assert_eq!(obs.pc, 0x40);
/// assert_eq!(obs.mlp_distance, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Llsr {
    capacity: usize,
    entries: VecDeque<(u64, bool)>,
}

impl Llsr {
    /// Creates an LLSR holding `capacity` committed instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LLSR capacity must be non-zero");
        Llsr {
            capacity,
            entries: VecDeque::with_capacity(capacity + 1),
        }
    }

    /// Window length in instructions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of instructions currently tracked (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` while the register has not yet filled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the commit of the instruction at `pc`; `is_long_latency_load` marks
    /// committed loads that were L3 or D-TLB misses. Returns an MLP-distance
    /// observation whenever a long-latency load exits the window.
    pub fn commit(&mut self, pc: u64, is_long_latency_load: bool) -> Option<MlpObservation> {
        self.entries.push_back((pc, is_long_latency_load));
        if self.entries.len() <= self.capacity {
            return None;
        }
        let (head_pc, head_is_lll) = self.entries.pop_front().expect("non-empty LLSR");
        if !head_is_lll {
            return None;
        }
        let mlp_distance = self
            .entries
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &(_, lll))| lll)
            .map(|(i, _)| i as u32 + 1)
            .unwrap_or(0);
        Some(MlpObservation {
            pc: head_pc,
            mlp_distance,
        })
    }

    /// Clears all state (used when a thread is squashed past the commit point,
    /// which cannot happen in this simulator, and between experiment runs).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Captures the register contents for a warm checkpoint.
    pub fn state(&self) -> LlsrState {
        LlsrState {
            entries: self.entries.iter().copied().collect(),
        }
    }

    /// Restores a state captured with [`Llsr::state`]. Fails when the state
    /// holds more entries than this register's capacity.
    pub fn restore_state(&mut self, state: &LlsrState) -> Result<(), String> {
        if state.entries.len() > self.capacity {
            return Err(format!(
                "LLSR state has {} entries, register capacity is {}",
                state.entries.len(),
                self.capacity
            ));
        }
        self.entries.clear();
        self.entries.extend(state.entries.iter().copied());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_load_reports_zero_distance() {
        let mut llsr = Llsr::new(4);
        llsr.commit(0x40, true);
        for i in 0..3u64 {
            assert!(llsr.commit(0x100 + i, false).is_none());
        }
        let obs = llsr.commit(0x200, false).unwrap();
        assert_eq!(obs.pc, 0x40);
        assert_eq!(obs.mlp_distance, 0);
    }

    #[test]
    fn distance_is_position_of_youngest_lll() {
        let mut llsr = Llsr::new(8);
        llsr.commit(0xa0, true); // head
        llsr.commit(0xa4, false);
        llsr.commit(0xa8, true); // distance 2
        llsr.commit(0xac, false);
        llsr.commit(0xb0, false);
        llsr.commit(0xb4, true); // distance 5 — youngest
        llsr.commit(0xb8, false);
        llsr.commit(0xbc, false);
        let obs = llsr.commit(0xc0, false).unwrap();
        assert_eq!(obs.pc, 0xa0);
        assert_eq!(obs.mlp_distance, 5);
    }

    #[test]
    fn figure3_style_example() {
        // Mirror of the paper's Figure 3: an LLSR where the last appearing "1" sits
        // at position 6 from the head.
        let mut llsr = Llsr::new(8);
        let pattern = [true, false, true, false, false, true, false, false];
        for (i, &lll) in pattern.iter().enumerate() {
            llsr.commit(0x40 + 4 * i as u64, lll);
        }
        let obs = llsr.commit(0x100, false).unwrap();
        assert_eq!(obs.mlp_distance, 5); // positions: 2 and 5 after the head
                                         // Keep committing until the next long-latency load (position 2 originally)
                                         // reaches the head; its own distance is 3 (the load originally at pos 5).
        let mut next = None;
        for i in 0..2u64 {
            next = llsr.commit(0x200 + 4 * i, false);
        }
        let obs2 = next.unwrap();
        assert_eq!(obs2.pc, 0x48);
        assert_eq!(obs2.mlp_distance, 3);
    }

    #[test]
    fn non_lll_exits_produce_no_observation() {
        let mut llsr = Llsr::new(2);
        llsr.commit(0x1, false);
        llsr.commit(0x2, false);
        assert!(llsr.commit(0x3, true).is_none());
        assert!(llsr.commit(0x4, false).is_none());
        // Now the LLL at 0x3 is at the head; next commit pushes it out.
        let obs = llsr.commit(0x5, false).unwrap();
        assert_eq!(obs.pc, 0x3);
    }

    #[test]
    fn back_to_back_llls_overlap() {
        let mut llsr = Llsr::new(4);
        llsr.commit(0x10, true);
        llsr.commit(0x14, true);
        llsr.commit(0x18, false);
        llsr.commit(0x1c, false);
        let obs = llsr.commit(0x20, false).unwrap();
        assert_eq!(obs.pc, 0x10);
        assert_eq!(obs.mlp_distance, 1);
    }

    #[test]
    fn reset_and_len() {
        let mut llsr = Llsr::new(4);
        assert!(llsr.is_empty());
        llsr.commit(0x1, true);
        assert_eq!(llsr.len(), 1);
        llsr.reset();
        assert!(llsr.is_empty());
        assert_eq!(llsr.capacity(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Llsr::new(0);
    }
}
