//! MLP predictors (Section 4.2 and the Section 6.5 alternatives).

/// Last-value predictor of the MLP *distance* of a long-latency load.
///
/// A 2K-entry, load-PC indexed table; each entry holds the most recently observed
/// MLP distance (⌈log2(ROB/threads)⌉ bits, 7 in the paper's two-thread baseline —
/// 14 Kbit of storage in total). A predicted distance of zero means "no MLP":
/// the fetch policy should stall or flush the thread immediately.
///
/// # Example
///
/// ```
/// use smt_predictors::MlpDistancePredictor;
/// let mut p = MlpDistancePredictor::new(2048, 128);
/// assert_eq!(p.predict(0x40), 0);
/// p.update(0x40, 57);
/// assert_eq!(p.predict(0x40), 57);
/// p.update(0x40, 500); // clamped to the LLSR length
/// assert_eq!(p.predict(0x40), 128);
/// ```
#[derive(Clone, Debug)]
pub struct MlpDistancePredictor {
    table: Vec<u16>,
    max_distance: u32,
    updates: u64,
}

impl MlpDistancePredictor {
    /// Creates a predictor with `entries` entries whose stored distances saturate
    /// at `max_distance` (the LLSR length).
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `max_distance` is zero.
    pub fn new(entries: u32, max_distance: u32) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        assert!(max_distance > 0, "maximum MLP distance must be non-zero");
        MlpDistancePredictor {
            table: vec![0; entries as usize],
            max_distance,
            updates: 0,
        }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.table.len()
    }

    /// Predicts the MLP distance of the long-latency load at `pc` (0 = no MLP).
    pub fn predict(&self, pc: u64) -> u32 {
        self.table[self.slot(pc)] as u32
    }

    /// Trains the predictor with an observed MLP distance from the LLSR.
    pub fn update(&mut self, pc: u64, observed_distance: u32) {
        let slot = self.slot(pc);
        self.table[slot] = observed_distance.min(self.max_distance) as u16;
        self.updates += 1;
    }

    /// Maximum distance the predictor can represent.
    pub fn max_distance(&self) -> u32 {
        self.max_distance
    }

    /// Number of training updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Clears all learned state.
    pub fn reset(&mut self) {
        self.table.iter_mut().for_each(|e| *e = 0);
    }

    /// Captures the predictor state for a warm checkpoint.
    pub fn state(&self) -> MlpDistanceState {
        MlpDistanceState {
            table: self.table.clone(),
            updates: self.updates,
        }
    }

    /// Restores a state captured with [`MlpDistancePredictor::state`]. Fails
    /// when the table geometry differs.
    pub fn restore_state(&mut self, state: &MlpDistanceState) -> Result<(), String> {
        if state.table.len() != self.table.len() {
            return Err(format!(
                "MLP distance table size mismatch: state has {}, predictor has {}",
                state.table.len(),
                self.table.len()
            ));
        }
        self.table.copy_from_slice(&state.table);
        self.updates = state.updates;
        Ok(())
    }
}

/// Binary MLP predictor used by the Section 6.5 alternatives (c) and (e): a 1-bit,
/// load-PC indexed table remembering whether the previous dynamic instance of this
/// long-latency load exhibited any MLP at all.
#[derive(Clone, Debug)]
pub struct BinaryMlpPredictor {
    table: Vec<bool>,
}

/// Serializable snapshot of a [`MlpDistancePredictor`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[serde(deny_unknown_fields)]
pub struct MlpDistanceState {
    /// Last observed MLP distance per table entry.
    pub table: Vec<u16>,
    /// Updates applied so far.
    pub updates: u64,
}

/// Serializable snapshot of a [`BinaryMlpPredictor`] (for warm checkpoints).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BinaryMlpState {
    /// Whether MLP was last observed, per table entry.
    pub table: Vec<bool>,
}

impl BinaryMlpPredictor {
    /// Creates a predictor with `entries` one-bit entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u32) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        BinaryMlpPredictor {
            table: vec![false; entries as usize],
        }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.table.len()
    }

    /// Predicts whether the long-latency load at `pc` will expose MLP.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.slot(pc)]
    }

    /// Trains the predictor with whether MLP was observed for this load.
    pub fn update(&mut self, pc: u64, had_mlp: bool) {
        let slot = self.slot(pc);
        self.table[slot] = had_mlp;
    }

    /// Clears all learned state.
    pub fn reset(&mut self) {
        self.table.iter_mut().for_each(|e| *e = false);
    }

    /// Captures the predictor state for a warm checkpoint.
    pub fn state(&self) -> BinaryMlpState {
        BinaryMlpState {
            table: self.table.clone(),
        }
    }

    /// Restores a state captured with [`BinaryMlpPredictor::state`]. Fails
    /// when the table geometry differs.
    pub fn restore_state(&mut self, state: &BinaryMlpState) -> Result<(), String> {
        if state.table.len() != self.table.len() {
            return Err(format!(
                "binary MLP table size mismatch: state has {}, predictor has {}",
                state.table.len(),
                self.table.len()
            ));
        }
        self.table.copy_from_slice(&state.table);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_behaviour() {
        let mut p = MlpDistancePredictor::new(64, 128);
        p.update(0x40, 10);
        p.update(0x40, 20);
        assert_eq!(p.predict(0x40), 20);
        assert_eq!(p.updates(), 2);
    }

    #[test]
    fn distance_saturates_at_llsr_length() {
        let mut p = MlpDistancePredictor::new(64, 64);
        p.update(0x40, 1000);
        assert_eq!(p.predict(0x40), 64);
        assert_eq!(p.max_distance(), 64);
    }

    #[test]
    fn unknown_pc_predicts_no_mlp() {
        let p = MlpDistancePredictor::new(64, 64);
        assert_eq!(p.predict(0xdead), 0);
    }

    #[test]
    fn reset_forgets() {
        let mut p = MlpDistancePredictor::new(64, 64);
        p.update(0x40, 12);
        p.reset();
        assert_eq!(p.predict(0x40), 0);
    }

    #[test]
    fn binary_predictor_tracks_last_outcome() {
        let mut p = BinaryMlpPredictor::new(64);
        assert!(!p.predict(0x40));
        p.update(0x40, true);
        assert!(p.predict(0x40));
        p.update(0x40, false);
        assert!(!p.predict(0x40));
        p.update(0x40, true);
        p.reset();
        assert!(!p.predict(0x40));
    }

    #[test]
    fn aliasing_uses_modulo_indexing() {
        let mut p = MlpDistancePredictor::new(16, 64);
        // PCs 0x0 and 0x100 alias in a 16-entry table (0x100/4 = 64 ≡ 0 mod 16).
        p.update(0x0, 7);
        assert_eq!(p.predict(0x100), 7);
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        let _ = MlpDistancePredictor::new(0, 64);
    }
}
