//! Property-based tests for the predictor data structures.

use proptest::prelude::*;

use smt_predictors::{Llsr, LongLatencyPredictor, MissPatternPredictor, MlpDistancePredictor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LLSR produces exactly one observation per long-latency load once that
    /// load has fallen out of the window, and every reported distance is bounded
    /// by the window length.
    #[test]
    fn llsr_observation_count_and_bounds(
        capacity in 1usize..64,
        commits in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut llsr = Llsr::new(capacity);
        let mut observations = 0usize;
        for (i, &is_lll) in commits.iter().enumerate() {
            if let Some(obs) = llsr.commit(0x40 + 4 * i as u64, is_lll) {
                observations += 1;
                prop_assert!(obs.mlp_distance as usize <= capacity);
            }
        }
        // Only long-latency loads that have exited the window can have produced an
        // observation: the last `capacity` commits are still inside.
        let exited = commits.len().saturating_sub(capacity);
        let expected: usize = commits[..exited].iter().filter(|&&b| b).count();
        prop_assert_eq!(observations, expected);
    }

    /// The MLP distance predictor is a last-value predictor clamped to its maximum
    /// distance.
    #[test]
    fn mlp_distance_predictor_is_clamped_last_value(
        entries in 1u32..512,
        max_distance in 1u32..512,
        updates in prop::collection::vec((any::<u64>(), 0u32..2048), 1..200),
    ) {
        let mut predictor = MlpDistancePredictor::new(entries, max_distance);
        for (pc, distance) in &updates {
            predictor.update(*pc, *distance);
            prop_assert_eq!(predictor.predict(*pc), (*distance).min(max_distance));
        }
    }

    /// The miss pattern predictor perfectly captures strictly periodic miss
    /// behaviour once trained, for any period that fits in its counters.
    #[test]
    fn miss_pattern_predictor_learns_any_period(period in 1usize..50) {
        let mut predictor = MissPatternPredictor::new(2048);
        let total = period * 20;
        let mut wrong_late = 0;
        for i in 0..total {
            let is_miss = i % period == period - 1;
            let predicted = predictor.predict(0x1234);
            if i > period * 3 && predicted != is_miss {
                wrong_late += 1;
            }
            predictor.update(0x1234, is_miss);
        }
        prop_assert_eq!(wrong_late, 0, "period {} not learned", period);
    }

    /// Predictions never panic for arbitrary PCs (indexing is always in bounds).
    #[test]
    fn predictors_accept_arbitrary_pcs(pcs in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut miss = MissPatternPredictor::new(128);
        let mut distance = MlpDistancePredictor::new(128, 64);
        for pc in pcs {
            let _ = miss.predict(pc);
            miss.update(pc, pc % 3 == 0);
            let _ = distance.predict(pc);
            distance.update(pc, (pc % 100) as u32);
        }
    }
}
