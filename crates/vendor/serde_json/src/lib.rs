//! Offline, API-compatible subset of `serde_json` built on the vendored
//! [`serde::Value`] tree: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`] and [`from_value`].
//!
//! Non-finite floats serialize as `null` (real serde_json errors instead);
//! the reports produced by this workspace only contain finite values.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the `Result`
/// mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] if the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error or shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let mut s = format!("{f}");
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => write_items(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            '[',
            ']',
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Map(entries) => write_items(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            '{',
            '}',
            |out, (key, item), indent, depth| {
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_items<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {} at byte {} of JSON input",
                other.map_or("end of input".to_string(), |b| format!("`{}`", b as char)),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {} of JSON input",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid UTF-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            // Positive integers above i64::MAX become the UInt variant, so the
            // full u64 range round-trips.
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<u64>().map(Value::UInt))
                .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.parse_unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape in JSON string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain characters up to the next
                    // quote or backslash, validating UTF-8 once per run (both
                    // delimiters are ASCII, so a run never splits a multi-byte
                    // character).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?;
                    out.push_str(run);
                }
                None => return Err(Error::custom("unterminated JSON string")),
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        // Called with `u` under the cursor.
        self.pos += 1;
        let code = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&code) {
            // High surrogate: require a following `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let low = self.parse_hex4()?;
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| Error::custom("invalid surrogate pair"));
                }
            }
            return Err(Error::custom("unpaired surrogate in JSON string"));
        }
        char::from_u32(code).ok_or_else(|| Error::custom("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("fig09".to_string())),
            ("stp".to_string(), Value::Float(1.5)),
            ("count".to_string(), Value::Int(-3)),
            ("ok".to_string(), Value::Bool(true)),
            (
                "items".to_string(),
                Value::Seq(vec![Value::Int(1), Value::Null]),
            ),
        ]);
        for text in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn large_unsigned_integers_round_trip() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(text, u64::MAX.to_string());
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\tе".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let unicode: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(unicode, "A\u{1F600}");
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("true false").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(from_str::<Value>("[]").unwrap(), Value::Seq(vec![]));
        assert_eq!(from_str::<Value>("{}").unwrap(), Value::Map(vec![]));
        assert_eq!(to_string(&Value::Seq(vec![])).unwrap(), "[]");
    }
}
