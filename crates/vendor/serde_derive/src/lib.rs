//! `#[derive(Serialize, Deserialize)]` for the vendored offline serde subset.
//!
//! Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (any field type implementing the traits;
//!   `Option<...>` fields are skipped when `None` and default to `None` when
//!   missing),
//! * enums whose variants are all unit variants (serialized as the variant
//!   name string),
//! * the `#[serde(deny_unknown_fields)]` container attribute.
//!
//! Generics, tuple structs, and data-carrying enum variants are rejected with
//! a compile error. The implementation hand-parses the derive input token
//! stream (no `syn`/`quote` available offline) and emits the impl as source
//! text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    optional: bool,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<String>),
}

struct Item {
    name: String,
    deny_unknown_fields: bool,
    body: Body,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

/// Scans one outer attribute group (the `[...]` after `#`) for
/// `serde(deny_unknown_fields)`.
fn attr_denies_unknown_fields(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "deny_unknown_fields")),
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut deny_unknown_fields = false;
    let mut is_enum = false;

    // Outer attributes, visibility, then the `struct` / `enum` keyword.
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    deny_unknown_fields |= attr_denies_unknown_fields(&g);
                }
                _ => return Err("malformed attribute".into()),
            },
            Some(TokenTree::Ident(ident)) => match ident.to_string().as_str() {
                "pub" => {
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                }
                "struct" => break,
                "enum" => {
                    is_enum = true;
                    break;
                }
                other => return Err(format!("unexpected token `{other}` before struct/enum")),
            },
            Some(other) => return Err(format!("unexpected token `{other}` before struct/enum")),
            None => return Err("expected a struct or enum".into()),
        }
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected the type name".into()),
    };

    let body_group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("cannot derive for generic type `{name}`"))
        }
        _ => {
            return Err(format!(
                "cannot derive for `{name}`: only brace-bodied structs and enums are supported"
            ))
        }
    };

    let body = if is_enum {
        Body::Enum(parse_variants(body_group.stream(), &name)?)
    } else {
        Body::Struct(parse_fields(body_group.stream(), &name)?)
    };

    Ok(Item {
        name,
        deny_unknown_fields,
        body,
    })
}

fn parse_fields(stream: TokenStream, container: &str) -> Result<Vec<Field>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                        _ => return Err(format!("malformed field attribute in `{container}`")),
                    }
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    tokens.next();
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "expected a field name in `{container}`, found `{other}`"
                ))
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "expected `:` after field `{name}` in `{container}` (tuple structs unsupported)"
                ))
            }
        }
        // Consume the type tokens up to the next comma at angle-bracket depth 0.
        let mut first_type_token: Option<String> = None;
        let mut angle_depth: i32 = 0;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(tt) => {
                    if first_type_token.is_none() {
                        first_type_token = Some(tt.to_string());
                    }
                    tokens.next();
                }
                None => break,
            }
        }
        let optional = first_type_token.as_deref() == Some("Option");
        fields.push(Field { name, optional });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream, container: &str) -> Result<Vec<String>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        // Attributes before the variant name.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                _ => return Err(format!("malformed variant attribute in `{container}`")),
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "expected a variant name in `{container}`, found `{other}`"
                ))
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "cannot derive for `{container}`: variant `{name}` carries data \
                     (only unit variants are supported)"
                ))
            }
            Some(other) => {
                return Err(format!(
                    "unexpected token `{other}` after variant `{name}` in `{container}`"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n"
    ));
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(
                "        let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let fname = &f.name;
                out.push_str(&format!(
                    "        {{ let v = ::serde::Serialize::serialize(&self.{fname}); \
                     if !v.is_null() {{ fields.push((\"{fname}\".to_string(), v)); }} }}\n"
                ));
            }
            out.push_str("        ::serde::Value::Map(fields)\n");
        }
        Body::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                out.push_str(&format!(
                    "            {name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                ));
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n    fn deserialize(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n"
    ));
    match &item.body {
        Body::Struct(fields) => {
            let field_list = fields
                .iter()
                .map(|f| format!("\"{}\"", f.name))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "        const FIELDS: &[&str] = &[{field_list}];\n        let map = match value \
                 {{ ::serde::Value::Map(m) => m, other => return \
                 ::std::result::Result::Err(::serde::Error::custom(format!(\"invalid type: \
                 expected a map for `{name}`, found {{}}\", other.type_name()))) }};\n"
            ));
            if item.deny_unknown_fields {
                out.push_str(&format!(
                    "        for (k, _) in map.iter() {{\n            if \
                     !FIELDS.contains(&k.as_str()) {{\n                return \
                     ::std::result::Result::Err(::serde::Error::unknown_field(k, \"{name}\", \
                     FIELDS));\n            }}\n        }}\n"
                ));
            } else {
                out.push_str("        let _ = FIELDS;\n");
            }
            out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                let fname = &f.name;
                let missing = if f.optional {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(::serde::Error::missing_field(\
                         \"{fname}\", \"{name}\"))"
                    )
                };
                out.push_str(&format!(
                    "            {fname}: match ::serde::Value::map_get(map, \"{fname}\") {{\n    \
                     ::std::option::Option::Some(v) => \
                     ::serde::Deserialize::deserialize(v).map_err(|e| e.in_field(\"{fname}\"))?,\n \
                     ::std::option::Option::None => {missing},\n            }},\n"
                ));
            }
            out.push_str("        })\n");
        }
        Body::Enum(variants) => {
            let expected = variants.join(", ");
            out.push_str(&format!(
                "        let s = match value {{ ::serde::Value::Str(s) => s.as_str(), other => \
                 return ::std::result::Result::Err(::serde::Error::custom(format!(\"invalid \
                 type: expected a string for enum `{name}`, found {{}}\", \
                 other.type_name()))) }};\n        match s {{\n"
            ));
            for v in variants {
                out.push_str(&format!(
                    "            \"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            out.push_str(&format!(
                "            other => \
                 ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant \
                 `{{other}}` for `{name}`, expected one of: {expected}\"))),\n        }}\n"
            ));
        }
    }
    out.push_str("    }\n}\n");
    out
}
