//! Offline, API-compatible subset of `serde`.
//!
//! This workspace builds without network access, so instead of the real
//! `serde` a small self-describing data model is vendored: types serialize
//! into a [`Value`] tree and deserialize back out of one. The companion
//! `serde_derive` crate provides `#[derive(Serialize, Deserialize)]` for
//! structs with named fields and for enums with unit variants, including
//! support for the `#[serde(deny_unknown_fields)]` container attribute.
//! `serde_json` and `toml` (also vendored) turn [`Value`] trees into their
//! respective text formats.
//!
//! Differences from real serde that matter to users of this workspace:
//!
//! * `Option` fields serialize to nothing when `None` and default to `None`
//!   when missing (i.e. they behave as `skip_serializing_if = "Option::is_none"`
//!   plus `default`), which keeps TOML output valid.
//! * Unknown fields are only rejected for containers annotated with
//!   `#[serde(deny_unknown_fields)]`, matching serde's semantics.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value: the intermediate representation between Rust
/// types and text formats (JSON, TOML).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absence of a value (`None`, JSON `null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer. Integers representable as `i64` always use this
    /// variant (the canonical form); see [`Value::UInt`].
    Int(i64),
    /// An unsigned integer above `i64::MAX`; only produced for such values,
    /// so every integer has exactly one representation.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in a map's entries (first match wins).
    pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Human-readable name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }
}

/// Serialization/deserialization error with a dotted field path for context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Error for a required field that is absent.
    pub fn missing_field(field: &str, container: &str) -> Self {
        Error::custom(format!("missing field `{field}` in `{container}`"))
    }

    /// Error for a field the container does not declare
    /// (`#[serde(deny_unknown_fields)]`).
    pub fn unknown_field(field: &str, container: &str, expected: &[&str]) -> Self {
        Error::custom(format!(
            "unknown field `{field}` in `{container}`, expected one of: {}",
            expected.join(", ")
        ))
    }

    /// Prefixes the message with a field name, building a dotted path as the
    /// error propagates outward (e.g. `l2.size_bytes: ...`).
    pub fn in_field(self, field: &str) -> Self {
        Error {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from `value`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between `value`
    /// and the expected shape, with a dotted field path.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Implements [`Serialize`]/[`Deserialize`] for a unit enum following this
/// workspace's named-enum convention: an inherent `name(self) -> &'static str`,
/// `from_name(&str) -> Option<Self>`, and an `ALL` array of every variant.
/// Values serialize as the short name string; unknown names produce an error
/// listing the valid ones. `$what` is the human-readable noun used in error
/// messages (e.g. `"fetch policy"`).
#[macro_export]
macro_rules! named_enum_serde {
    ($ty:ty, $what:expr) => {
        impl $crate::Serialize for $ty {
            fn serialize(&self) -> $crate::Value {
                $crate::Value::Str(self.name().to_string())
            }
        }

        impl $crate::Deserialize for $ty {
            fn deserialize(value: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                let text = match value {
                    $crate::Value::Str(s) => s.as_str(),
                    other => {
                        return ::std::result::Result::Err($crate::Error::custom(format!(
                            "invalid type: expected a {} name string, found {}",
                            $what,
                            other.type_name()
                        )))
                    }
                };
                <$ty>::from_name(text).ok_or_else(|| {
                    let names: ::std::vec::Vec<&str> =
                        <$ty>::ALL.iter().map(|v| v.name()).collect();
                    $crate::Error::custom(format!(
                        "unknown {} `{text}`, expected one of: {}",
                        $what,
                        names.join(", ")
                    ))
                })
            }
        }
    };
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "invalid type: expected a boolean, found {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_int_deserialize {
    ($t:ty) => {
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!("integer {i} out of range for {}", stringify!($t)))
                    }),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| {
                        Error::custom(format!("integer {u} out of range for {}", stringify!($t)))
                    }),
                    other => Err(Error::custom(format!(
                        "invalid type: expected an integer, found {}",
                        other.type_name()
                    ))),
                }
            }
        }
    };
}

macro_rules! impl_signed_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl_int_deserialize!($t);
    )*};
}

macro_rules! impl_unsigned_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                // Canonical form: Int whenever the value fits, UInt above
                // i64::MAX (matching what the JSON/TOML parsers produce).
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl_int_deserialize!($t);
    )*};
}

impl_signed_int!(i8, i16, i32, i64, isize);
impl_unsigned_int!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::custom(format!(
                "invalid type: expected a number, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "invalid type: expected a string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::deserialize(v).map_err(|e| e.in_field(&format!("[{i}]"))))
                .collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected a sequence, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value.as_seq().ok_or_else(|| {
                    Error::custom(format!(
                        "invalid type: expected a {LEN}-element sequence, found {}",
                        value.type_name()
                    ))
                })?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected a {LEN}-element sequence, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])
                    .map_err(|e| e.in_field(&format!("[{}]", $idx)))?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_none_is_null_and_defaults() {
        let none: Option<u32> = None;
        assert!(none.serialize().is_null());
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize(&Value::Int(3)).unwrap(), Some(3));
    }

    #[test]
    fn vec_and_array_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()).unwrap(), v);
        let a: [Option<u32>; 2] = [Some(7), None];
        assert_eq!(<[Option<u32>; 2]>::deserialize(&a.serialize()).unwrap(), a);
        assert!(<[u32; 2]>::deserialize(&vec![1u32].serialize()).is_err());
    }

    #[test]
    fn tuple_round_trip() {
        let t = (8u32, 0.25f64);
        assert_eq!(<(u32, f64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
        assert!(i64::deserialize(&Value::UInt(u64::MAX)).is_err());
    }

    #[test]
    fn large_unsigned_values_round_trip_without_panicking() {
        assert_eq!(u64::MAX.serialize(), Value::UInt(u64::MAX));
        assert_eq!(u64::deserialize(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
        // Values fitting i64 keep the canonical Int form.
        assert_eq!(5u64.serialize(), Value::Int(5));
        assert_eq!((i64::MAX as u64).serialize(), Value::Int(i64::MAX));
        assert_eq!(
            f64::deserialize(&Value::UInt(u64::MAX)).unwrap(),
            u64::MAX as f64
        );
    }

    #[test]
    fn error_paths_accumulate() {
        let e = Error::custom("boom").in_field("size_bytes").in_field("l2");
        assert_eq!(e.to_string(), "l2: size_bytes: boom");
    }
}
