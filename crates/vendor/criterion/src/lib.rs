//! Offline, API-compatible subset of `criterion`.
//!
//! Implements just enough of the criterion surface for this workspace's
//! bench targets: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple wall-clock loop reporting min/mean per iteration — no statistics,
//! HTML reports or comparison to baselines.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level bench context handed to every bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Measures one function outside of any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark("", id, sample_size, f);
        self
    }
}

/// A named collection of measurements sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each `bench_function` collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&self.name, id, self.sample_size, f);
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("{label}: no samples collected");
        return;
    }
    let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!(
        "{label}: mean {} / best {} over {} samples",
        format_time(mean),
        format_time(min),
        bencher.samples.len()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} µs", seconds * 1e6)
    }
}

/// Timing context handed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once per sample, recording wall-clock time per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    /// Runs `setup` untimed before each sample and times only `routine` on the
    /// value it produced, mirroring criterion's `iter_batched`. `_size` is
    /// accepted for API parity and ignored (every batch has one element).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One untimed warm-up run.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; kept for API parity with
/// criterion, ignored by this subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchSize {
    /// One batch per sample (the only behaviour this subset implements).
    SmallInput,
    /// Accepted for parity; treated as `SmallInput`.
    LargeInput,
    /// Accepted for parity; treated as `SmallInput`.
    PerIteration,
}

/// Bundles bench functions into a callable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample_and_times_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut setups = 0;
        let mut routines = 0;
        group.bench_function("f", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |input| {
                    routines += 1;
                    black_box(input)
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        // 1 warm-up + 3 samples, setup and routine paired.
        assert_eq!(setups, 4);
        assert_eq!(routines, 4);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(0.002).ends_with(" ms"));
        assert!(format_time(0.000002).ends_with(" µs"));
    }
}
