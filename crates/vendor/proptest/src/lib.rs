//! Offline, API-compatible subset of `proptest`.
//!
//! Provides deterministic random-input testing without shrinking: the
//! [`proptest!`] macro, the [`Strategy`] trait (ranges, tuples, `prop_map`,
//! `prop_filter`), [`any`], `prop::collection::vec`, [`ProptestConfig`] and
//! the `prop_assert*` macros (which simply panic like `assert*`, so a failing
//! case reports the generated values only through its assertion message).
//!
//! Each test function derives its RNG seed from its own name, so failures are
//! reproducible run-over-run.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SampleRange, SeedableRng};

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic RNG driving the strategies of one test function.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates an RNG whose seed is derived from `name` (typically the test
    /// function name), keeping runs reproducible.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `predicate`, retrying up to 1000
    /// times before panicking with `whence`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            predicate,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating unconstrained values of `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Namespaced strategies, mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng as _;
        use std::ops::Range;

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors whose length is drawn from `size` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] body (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a [`proptest!`] body (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property-based tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($config) $($rest)* }
    };
    (@impl ($config:expr) $($(#[$attr:meta])* fn $name:ident(
        $($arg:pat_param in $strategy:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $config;
                let mut __pt_rng = $crate::TestRng::deterministic(stringify!($name));
                for __pt_case in 0..__pt_config.cases {
                    let _ = __pt_case;
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __pt_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u64..10, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b)),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 >= 2 && pair.0 < 20);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn filter_applies(even in (0u32..100).prop_filter("must be even", |x| x % 2 == 0)) {
            prop_assert_eq!(even % 2, 0);
        }

        #[test]
        fn mut_patterns_work(mut x in 0u32..5) {
            x += 1;
            prop_assert!(x >= 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("abc");
        let mut b = crate::TestRng::deterministic("abc");
        let sa: Vec<u64> = (0..8)
            .map(|_| crate::Strategy::generate(&(0u64..1000), &mut a))
            .collect();
        let sb: Vec<u64> = (0..8)
            .map(|_| crate::Strategy::generate(&(0u64..1000), &mut b))
            .collect();
        assert_eq!(sa, sb);
    }
}
