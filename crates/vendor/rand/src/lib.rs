//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments without network access to crates.io,
//! so the small slice of `rand` 0.8 that the simulator uses is vendored here:
//! [`rngs::StdRng`] (a deterministic xoshiro256++ generator seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen`, `gen_bool` and `gen_range`.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is ChaCha12);
//! everything in this workspace only relies on determinism for a fixed seed,
//! not on a specific stream.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from an `RngCore` ("standard" distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn int_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn float_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(0.85..1.15);
            assert!((0.85..1.15).contains(&v));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(5);
        let _ = r.gen_range(5u32..5);
    }
}
