//! Offline, API-compatible subset of the `toml` crate built on the vendored
//! [`serde::Value`] tree: [`to_string`], [`to_string_pretty`] and
//! [`from_str`].
//!
//! The supported TOML subset covers what this workspace's experiment specs
//! and reports need: `[table]` and `[[array-of-tables]]` headers with dotted
//! keys, `key = value` pairs (dotted keys allowed), basic and literal
//! strings, integers (with `_` separators), floats, booleans, (possibly
//! multiline) arrays, inline tables, and `#` comments. Datetimes and
//! multiline strings are not supported.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` (which must serialize to a map) as TOML.
///
/// # Errors
///
/// Returns an [`Error`] if the root is not a map, since TOML documents are
/// tables at the top level.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = value.serialize();
    let entries = match &tree {
        Value::Map(entries) => entries,
        other => {
            return Err(Error::custom(format!(
                "TOML documents must be maps at the top level, found {}",
                other.type_name()
            )))
        }
    };
    let mut out = String::new();
    write_table(&mut out, &[], entries);
    Ok(out)
}

/// Alias of [`to_string`]; the output is already human-oriented.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Parses TOML text into `T`.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error or shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_document(input)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// True for values that must be written as `[section]` / `[[section]]`
/// headers rather than inline.
fn is_table_like(value: &Value) -> bool {
    match value {
        Value::Map(_) => true,
        Value::Seq(items) => !items.is_empty() && items.iter().all(|v| matches!(v, Value::Map(_))),
        _ => false,
    }
}

fn write_table(out: &mut String, path: &[String], entries: &[(String, Value)]) {
    for (key, value) in entries {
        if value.is_null() || is_table_like(value) {
            continue;
        }
        out.push_str(&format!("{} = {}\n", format_key(key), format_inline(value)));
    }
    for (key, value) in entries {
        let mut child_path = path.to_vec();
        child_path.push(key.clone());
        match value {
            Value::Map(child) => {
                out.push('\n');
                out.push_str(&format!("[{}]\n", format_path(&child_path)));
                write_table(out, &child_path, child);
            }
            Value::Seq(items) if is_table_like(value) => {
                for item in items {
                    let child = item.as_map().expect("is_table_like guarantees maps");
                    out.push('\n');
                    out.push_str(&format!("[[{}]]\n", format_path(&child_path)));
                    write_table(out, &child_path, child);
                }
            }
            _ => {}
        }
    }
}

fn format_path(path: &[String]) -> String {
    path.iter()
        .map(|p| format_key(p))
        .collect::<Vec<_>>()
        .join(".")
}

fn format_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        format_toml_string(key)
    }
}

fn format_inline(value: &Value) -> String {
    match value {
        Value::Null => "\"\"".to_string(), // unreachable: nulls are skipped
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => {
            if f.is_finite() {
                let mut s = format!("{f}");
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    s.push_str(".0");
                }
                s
            } else if f.is_nan() {
                "nan".to_string()
            } else if *f > 0.0 {
                "inf".to_string()
            } else {
                "-inf".to_string()
            }
        }
        Value::Str(s) => format_toml_string(s),
        Value::Seq(items) => {
            let inner = items
                .iter()
                .map(format_inline)
                .collect::<Vec<_>>()
                .join(", ");
            format!("[{inner}]")
        }
        Value::Map(entries) => {
            let inner = entries
                .iter()
                .filter(|(_, v)| !v.is_null())
                .map(|(k, v)| format!("{} = {}", format_key(k), format_inline(v)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{ {inner} }}")
        }
    }
}

fn format_toml_string(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// One segment of the current table path: key name plus, for array-of-tables
/// segments, the index of the element being filled.
#[derive(Clone, Debug)]
struct PathSeg {
    key: String,
    index: Option<usize>,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_document(input: &str) -> Result<Value, Error> {
    let mut root = Value::Map(Vec::new());
    let mut current: Vec<PathSeg> = Vec::new();
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    loop {
        parser.skip_trivia();
        match parser.peek() {
            None => break,
            Some(b'[') => {
                parser.pos += 1;
                let array_of_tables = parser.peek() == Some(b'[');
                if array_of_tables {
                    parser.pos += 1;
                }
                let keys = parser.parse_dotted_key()?;
                parser.expect(b']')?;
                if array_of_tables {
                    parser.expect(b']')?;
                }
                parser.expect_line_end()?;
                current = enter_table(&mut root, &keys, array_of_tables)?;
            }
            Some(_) => {
                let keys = parser.parse_dotted_key()?;
                parser.expect(b'=')?;
                parser.skip_spaces();
                let value = parser.parse_value()?;
                parser.expect_line_end()?;
                let table = resolve_mut(&mut root, &current);
                insert_at(table, &keys, value)?;
            }
        }
    }
    Ok(root)
}

/// Walks `path` from the root and returns the entries of the table it names.
fn resolve_mut<'a>(root: &'a mut Value, path: &[PathSeg]) -> &'a mut Vec<(String, Value)> {
    let mut node = root;
    for seg in path {
        let map = match node {
            Value::Map(entries) => entries,
            _ => unreachable!("path segments always name tables"),
        };
        let idx = map
            .iter()
            .position(|(k, _)| *k == seg.key)
            .expect("path was created by enter_table");
        node = &mut map[idx].1;
        if let Some(i) = seg.index {
            node = match node {
                Value::Seq(items) => &mut items[i],
                _ => unreachable!("indexed segments always name arrays of tables"),
            };
        }
    }
    match node {
        Value::Map(entries) => entries,
        _ => unreachable!("path always ends at a table"),
    }
}

/// Creates (or finds) the table named by `keys`, appending a fresh element
/// when the final segment is an `[[array-of-tables]]` header.
fn enter_table(
    root: &mut Value,
    keys: &[String],
    array_of_tables: bool,
) -> Result<Vec<PathSeg>, Error> {
    let mut path: Vec<PathSeg> = Vec::new();
    for (depth, key) in keys.iter().enumerate() {
        let last = depth == keys.len() - 1;
        let entries = resolve_mut(root, &path);
        let existing = entries.iter().position(|(k, _)| k == key);
        let idx = match existing {
            Some(i) => i,
            None => {
                let fresh = if last && array_of_tables {
                    Value::Seq(Vec::new())
                } else {
                    Value::Map(Vec::new())
                };
                entries.push((key.clone(), fresh));
                entries.len() - 1
            }
        };
        let node = &mut entries[idx].1;
        if last && array_of_tables {
            match node {
                // Only genuine arrays of tables may be extended; a scalar
                // array under the same key is a redefinition error.
                Value::Seq(items) if items.iter().all(|v| matches!(v, Value::Map(_))) => {
                    items.push(Value::Map(Vec::new()));
                    path.push(PathSeg {
                        key: key.clone(),
                        index: Some(items.len() - 1),
                    });
                }
                _ => {
                    return Err(Error::custom(format!(
                        "cannot redefine key `{key}` as an array of tables"
                    )))
                }
            }
        } else {
            match node {
                Value::Map(_) => path.push(PathSeg {
                    key: key.clone(),
                    index: None,
                }),
                // Intermediate segment naming an array of tables: descend
                // into its most recent element (which must be a table — a
                // scalar array cannot hold sub-tables).
                Value::Seq(items) if matches!(items.last(), Some(Value::Map(_))) => {
                    path.push(PathSeg {
                        key: key.clone(),
                        index: Some(items.len() - 1),
                    });
                }
                _ => {
                    return Err(Error::custom(format!(
                        "key `{key}` is already defined as a non-table value"
                    )))
                }
            }
        }
    }
    Ok(path)
}

fn insert_at(table: &mut Vec<(String, Value)>, keys: &[String], value: Value) -> Result<(), Error> {
    if keys.len() == 1 {
        if table.iter().any(|(k, _)| *k == keys[0]) {
            return Err(Error::custom(format!("duplicate key `{}`", keys[0])));
        }
        table.push((keys[0].clone(), value));
        return Ok(());
    }
    let key = &keys[0];
    let idx = match table.iter().position(|(k, _)| k == key) {
        Some(i) => i,
        None => {
            table.push((key.clone(), Value::Map(Vec::new())));
            table.len() - 1
        }
    };
    match &mut table[idx].1 {
        Value::Map(child) => insert_at(child, &keys[1..], value),
        _ => Err(Error::custom(format!(
            "dotted key `{key}` conflicts with an existing non-table value"
        ))),
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Skips spaces and tabs on the current line.
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => self.pos += 1,
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        self.skip_spaces();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {} of TOML input",
                b as char, self.pos
            )))
        }
    }

    /// Consumes the rest of the line, which may only hold a comment.
    fn expect_line_end(&mut self) -> Result<(), Error> {
        self.skip_spaces();
        match self.peek() {
            None | Some(b'\n') => Ok(()),
            Some(b'\r') => Ok(()),
            Some(b'#') => {
                while !matches!(self.peek(), None | Some(b'\n')) {
                    self.pos += 1;
                }
                Ok(())
            }
            Some(other) => Err(Error::custom(format!(
                "unexpected `{}` after value at byte {} of TOML input",
                other as char, self.pos
            ))),
        }
    }

    fn parse_dotted_key(&mut self) -> Result<Vec<String>, Error> {
        let mut keys = Vec::new();
        loop {
            self.skip_spaces();
            keys.push(self.parse_key_segment()?);
            self.skip_spaces();
            if self.peek() == Some(b'.') {
                self.pos += 1;
            } else {
                return Ok(keys);
            }
        }
    }

    fn parse_key_segment(&mut self) -> Result<String, Error> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
                {
                    self.pos += 1;
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("bare keys are ASCII")
                    .to_string())
            }
            _ => Err(Error::custom(format!(
                "expected a key at byte {} of TOML input",
                self.pos
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_spaces();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some(b'\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') | Some(b'f') => self.parse_bool(),
            // `i`/`n` start the unsigned `inf`/`nan` float keywords.
            Some(b) if b == b'-' || b == b'+' || b == b'i' || b == b'n' || b.is_ascii_digit() => {
                self.parse_number()
            }
            other => Err(Error::custom(format!(
                "unexpected {} at byte {} of TOML input",
                other.map_or("end of input".to_string(), |b| format!("`{}`", b as char)),
                self.pos
            ))),
        }
    }

    fn parse_bool(&mut self) -> Result<Value, Error> {
        for (text, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                return Ok(Value::Bool(value));
            }
        }
        Err(Error::custom(format!(
            "invalid literal at byte {} of TOML input",
            self.pos
        )))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            self.pos += 1;
        }
        // `inf` / `nan` after an optional sign.
        for (text, value) in [("inf", f64::INFINITY), ("nan", f64::NAN)] {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                let negative = self.bytes[start] == b'-';
                return Ok(Value::Float(if negative { -value } else { value }));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid UTF-8 in number"))?
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid float `{text}`")))
        } else {
            // Positive integers above i64::MAX become the UInt variant, so the
            // full u64 range round-trips.
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<u64>().map(Value::UInt))
                .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') | Some(b'U') => {
                            let long = self.peek() == Some(b'U');
                            self.pos += 1;
                            let len = if long { 8 } else { 4 };
                            let end = self.pos + len;
                            if end > self.bytes.len() {
                                return Err(Error::custom("truncated unicode escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..end])
                                .map_err(|_| Error::custom("invalid unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid unicode escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                            self.pos = end;
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape in TOML string")),
                    }
                    self.pos += 1;
                }
                Some(b'\n') | None => return Err(Error::custom("unterminated TOML string")),
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in TOML string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening quote
        let start = self.pos;
        while !matches!(self.peek(), Some(b'\'') | Some(b'\n') | None) {
            self.pos += 1;
        }
        if self.peek() != Some(b'\'') {
            return Err(Error::custom("unterminated TOML literal string"));
        }
        let out = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid UTF-8 in TOML string"))?
            .to_string();
        self.pos += 1;
        Ok(out)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {} of TOML input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, Error> {
        self.pos += 1; // `{`
        let mut entries = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            let keys = self.parse_dotted_key()?;
            self.expect(b'=')?;
            self.skip_spaces();
            let value = self.parse_value()?;
            insert_at(&mut entries, &keys, value)?;
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {} of TOML input",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        parse_document(s).unwrap()
    }

    fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
        Value::map_get(v.as_map().unwrap(), key).unwrap()
    }

    #[test]
    fn scalars_and_types() {
        let doc = parse("name = \"fig09\"\ncount = 1_000\nratio = 2.5\nenabled = true\nneg = -3\n");
        assert_eq!(get(&doc, "name"), &Value::Str("fig09".to_string()));
        assert_eq!(get(&doc, "count"), &Value::Int(1000));
        assert_eq!(get(&doc, "ratio"), &Value::Float(2.5));
        assert_eq!(get(&doc, "enabled"), &Value::Bool(true));
        assert_eq!(get(&doc, "neg"), &Value::Int(-3));
    }

    #[test]
    fn tables_and_dotted_keys() {
        let doc = parse("[scale]\ninstructions = 2000\n[config.l2]\nlatency = 11\n");
        let scale = get(&doc, "scale");
        assert_eq!(get(scale, "instructions"), &Value::Int(2000));
        let l2 = get(get(&doc, "config"), "l2");
        assert_eq!(get(l2, "latency"), &Value::Int(11));
        let doc = parse("a.b = 3\n");
        assert_eq!(get(get(&doc, "a"), "b"), &Value::Int(3));
    }

    #[test]
    fn arrays_including_nested_and_multiline() {
        let doc = parse("w = [[\"mcf\", \"swim\"], [\"gcc\"]]\nv = [\n  1,\n  2, # comment\n]\n");
        let w = get(&doc, "w").as_seq().unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(
            w[0],
            Value::Seq(vec![
                Value::Str("mcf".to_string()),
                Value::Str("swim".to_string())
            ])
        );
        assert_eq!(
            get(&doc, "v"),
            &Value::Seq(vec![Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn array_of_tables() {
        let doc = parse("[[run]]\nname = \"a\"\n[[run]]\nname = \"b\"\n");
        let runs = get(&doc, "run").as_seq().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(get(&runs[1], "name"), &Value::Str("b".to_string()));
    }

    #[test]
    fn inline_tables_and_comments() {
        let doc = parse("# header\npoint = { x = 1, y = 2 } # trailing\n");
        let p = get(&doc, "point");
        assert_eq!(get(p, "x"), &Value::Int(1));
        assert_eq!(get(p, "y"), &Value::Int(2));
    }

    #[test]
    fn round_trip_through_writer() {
        let original = Value::Map(vec![
            ("name".to_string(), Value::Str("spec".to_string())),
            (
                "workloads".to_string(),
                Value::Seq(vec![Value::Seq(vec![
                    Value::Str("mcf".to_string()),
                    Value::Str("swim".to_string()),
                ])]),
            ),
            (
                "scale".to_string(),
                Value::Map(vec![
                    ("instructions".to_string(), Value::Int(2000)),
                    ("ratio".to_string(), Value::Float(1.0)),
                ]),
            ),
            (
                "runs".to_string(),
                Value::Seq(vec![
                    Value::Map(vec![("id".to_string(), Value::Int(1))]),
                    Value::Map(vec![("id".to_string(), Value::Int(2))]),
                ]),
            ),
        ]);
        let text = to_string(&original).unwrap();
        let back = parse(&text);
        assert_eq!(back, original);
    }

    #[test]
    fn table_headers_under_non_table_values_error_cleanly() {
        // Header path traversing a scalar array must error, not panic.
        assert!(parse_document("x = [1]\n[x.y]\nz = 1\n").is_err());
        assert!(parse_document("x = [1]\n[[x.y]]\nz = 1\n").is_err());
        // Appending array-of-tables entries to a scalar array likewise.
        assert!(parse_document("x = [1]\n[[x]]\nz = 1\n").is_err());
        assert!(parse_document("x = 1\n[x]\ny = 2\n").is_err());
    }

    #[test]
    fn large_unsigned_integers_round_trip() {
        let original = Value::Map(vec![("seed".to_string(), Value::UInt(u64::MAX))]);
        let text = to_string(&original).unwrap();
        assert_eq!(parse(&text), original);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let doc = parse("a = inf\nb = -inf\nc = nan\nd = +inf\n");
        assert_eq!(get(&doc, "a"), &Value::Float(f64::INFINITY));
        assert_eq!(get(&doc, "b"), &Value::Float(f64::NEG_INFINITY));
        assert!(matches!(get(&doc, "c"), Value::Float(f) if f.is_nan()));
        assert_eq!(get(&doc, "d"), &Value::Float(f64::INFINITY));
        // Writer output parses back.
        let original = Value::Map(vec![
            ("up".to_string(), Value::Float(f64::INFINITY)),
            ("down".to_string(), Value::Float(f64::NEG_INFINITY)),
        ]);
        let text = to_string(&original).unwrap();
        assert_eq!(parse(&text), original);
        assert!(parse_document("x = indigo\n").is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_document("a = ").is_err());
        assert!(parse_document("a = 1\na = 2\n").is_err());
        assert!(parse_document("a = 1 b = 2\n").is_err());
        assert!(parse_document("[t\nx = 1\n").is_err());
    }

    #[test]
    fn duplicate_table_headers_merge() {
        let doc = parse("[a]\nx = 1\n[b]\ny = 2\n[a]\nz = 3\n");
        let a = get(&doc, "a");
        assert_eq!(get(a, "x"), &Value::Int(1));
        assert_eq!(get(a, "z"), &Value::Int(3));
    }
}
