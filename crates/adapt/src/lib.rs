//! Adaptive policy engine: interval-telemetry-driven fetch-policy selection.
//!
//! The paper's MLP-aware flush policy wins because workload behaviour is
//! phasic — ILP-bound regions reward ICOUNT-style fairness while MLP-bound
//! regions reward flushing past the predicted MLP distance. A
//! [`PolicySelector`] exploits that at runtime: the pipeline divides a run
//! into fixed-length cycle intervals, publishes each finished interval's
//! telemetry ([`smt_types::IntervalStats`]) to the selector, and installs
//! whatever fetch policy the selector answers with for the next interval
//! ("Beyond Static Policies: Exploring Dynamic Policy Selection").
//!
//! Implemented selectors:
//!
//! | kind | behaviour |
//! |------|-----------|
//! | [`StaticSelector`] | never switches — the bit-for-bit legacy path |
//! | [`SamplingSelector`] | set-dueling: trial each candidate per epoch, commit to the interval winner |
//! | [`MlpThresholdSelector`] | switch ILP↔MLP candidate on measured LLL/Kinst and MLP |
//!
//! Selectors are deterministic functions of the interval telemetry stream:
//! two machines fed identical telemetry make identical decisions, which is
//! what keeps adaptive runs reproducible across repeat runs, core stepping
//! orders and engine thread counts.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use smt_types::adaptive::{AdaptiveConfig, IntervalStats, SelectorKind};
use smt_types::config::FetchPolicyKind;

/// Picks the fetch policy for the next interval from the telemetry of the
/// one that just finished.
///
/// The pipeline calls [`PolicySelector::next_policy`] exactly once per
/// interval boundary, in interval order, with `current` naming the policy
/// that ran the finished interval. The returned policy must be one of the
/// configured candidates; returning `current` means "keep going" and the
/// pipeline performs no swap at all (the running policy instance keeps its
/// state).
pub trait PolicySelector: Send {
    /// Which selector this is (used for reporting).
    fn kind(&self) -> SelectorKind;

    /// Decides the policy for the next interval.
    fn next_policy(
        &mut self,
        interval: &IntervalStats,
        current: FetchPolicyKind,
    ) -> FetchPolicyKind;

    /// Human-readable selector name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// Builds the selector implementation named by `config.selector`.
///
/// # Panics
///
/// Panics if the configuration does not validate; callers are expected to
/// run [`AdaptiveConfig::validate`] first (the pipeline and the experiment
/// layer both do).
pub fn build_selector(config: &AdaptiveConfig) -> Box<dyn PolicySelector> {
    config
        .validate()
        .expect("adaptive configuration must validate before a selector is built");
    match config.selector {
        SelectorKind::Static => Box::new(StaticSelector::new(config.initial_policy())),
        SelectorKind::Sampling => Box::new(SamplingSelector::new(
            config.candidates.clone(),
            config.sample_intervals,
            config.commit_intervals,
        )),
        SelectorKind::MlpThreshold => {
            // Candidate ordering carries the *initial* policy, not the
            // selector's roles: the MLP-aware candidate is identified by
            // classification, so `[icount, mlp-flush]` and
            // `[mlp-flush, icount]` both toggle in the correct direction.
            let (ilp, mlp) = if config.candidates[0].is_mlp_aware() {
                (config.candidates[1], config.candidates[0])
            } else {
                (config.candidates[0], config.candidates[1])
            };
            Box::new(MlpThresholdSelector::new(
                ilp,
                mlp,
                config.lll_per_kinst_threshold,
                config.mlp_threshold,
            ))
        }
    }
}

/// The no-op selector: always answers with the configured policy, so the
/// pipeline never swaps and the machine is bit-for-bit the legacy static
/// machine.
#[derive(Clone, Debug)]
pub struct StaticSelector {
    policy: FetchPolicyKind,
}

impl StaticSelector {
    /// A selector pinned to `policy`.
    pub fn new(policy: FetchPolicyKind) -> Self {
        StaticSelector { policy }
    }
}

impl PolicySelector for StaticSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::Static
    }

    fn next_policy(
        &mut self,
        _interval: &IntervalStats,
        _current: FetchPolicyKind,
    ) -> FetchPolicyKind {
        self.policy
    }
}

/// Where a [`SamplingSelector`] is in its epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SamplingPhase {
    /// Trialling candidate `candidate`; `interval` counts the intervals the
    /// candidate has already run in this trial.
    Sampling { candidate: usize, interval: u64 },
    /// Running the epoch winner; `remaining` commit intervals left.
    Committed { winner: usize, remaining: u64 },
}

/// Set-dueling style sampling selector.
///
/// Each epoch starts by trialling every candidate policy for
/// `sample_intervals` intervals, scoring each trial by the aggregate IPC of
/// its intervals. The best-scoring candidate (ties break towards the earlier
/// candidate) then runs for `commit_intervals` intervals before the next
/// epoch starts. The decision depends only on the telemetry stream, so it is
/// deterministic.
#[derive(Clone, Debug)]
pub struct SamplingSelector {
    candidates: Vec<FetchPolicyKind>,
    sample_intervals: u64,
    commit_intervals: u64,
    phase: SamplingPhase,
    /// Accumulated (committed instructions, cycles) of the current epoch's
    /// trials, one slot per candidate.
    scores: Vec<(u64, u64)>,
}

impl SamplingSelector {
    /// A sampling selector over `candidates` (the first candidate is the one
    /// the machine starts on, which also runs the first trial).
    ///
    /// # Panics
    ///
    /// Panics on an empty candidate list or zero interval counts.
    pub fn new(
        candidates: Vec<FetchPolicyKind>,
        sample_intervals: u64,
        commit_intervals: u64,
    ) -> Self {
        assert!(!candidates.is_empty(), "sampling needs candidates");
        assert!(
            sample_intervals > 0 && commit_intervals > 0,
            "sampling geometry must be non-zero"
        );
        let scores = vec![(0, 0); candidates.len()];
        SamplingSelector {
            candidates,
            sample_intervals,
            commit_intervals,
            phase: SamplingPhase::Sampling {
                candidate: 0,
                interval: 0,
            },
            scores,
        }
    }

    /// Score of one candidate's trial: aggregate IPC of its sampled
    /// intervals (0.0 when nothing was sampled).
    fn score(&self, candidate: usize) -> f64 {
        let (committed, cycles) = self.scores[candidate];
        if cycles == 0 {
            0.0
        } else {
            committed as f64 / cycles as f64
        }
    }
}

impl PolicySelector for SamplingSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::Sampling
    }

    fn next_policy(
        &mut self,
        interval: &IntervalStats,
        current: FetchPolicyKind,
    ) -> FetchPolicyKind {
        match self.phase {
            SamplingPhase::Sampling {
                candidate,
                interval: done,
            } => {
                // Credit the interval to the policy that *actually ran* it
                // (the trait contract's `current`), not to the trial slot the
                // selector believes is installed: an out-of-band
                // `swap_policy` between boundaries must not mis-attribute a
                // foreign policy's throughput to a candidate. In undisturbed
                // operation `current == candidates[candidate]` and the two
                // are identical.
                if let Some(ran) = self.candidates.iter().position(|&c| c == current) {
                    let slot = &mut self.scores[ran];
                    slot.0 += interval.total_committed();
                    slot.1 += interval.cycles;
                }
                let done = done + 1;
                if done < self.sample_intervals {
                    self.phase = SamplingPhase::Sampling {
                        candidate,
                        interval: done,
                    };
                    return self.candidates[candidate];
                }
                let next = candidate + 1;
                if next < self.candidates.len() {
                    // Trial the next candidate for the following intervals.
                    self.phase = SamplingPhase::Sampling {
                        candidate: next,
                        interval: 0,
                    };
                    return self.candidates[next];
                }
                // Every candidate sampled: commit to the interval winner.
                let winner = (0..self.candidates.len())
                    .max_by(|&a, &b| {
                        self.score(a)
                            .partial_cmp(&self.score(b))
                            .expect("scores are finite")
                            // On a tie, prefer the earlier candidate.
                            .then(b.cmp(&a))
                    })
                    .expect("at least one candidate");
                self.phase = SamplingPhase::Committed {
                    winner,
                    remaining: self.commit_intervals,
                };
                self.candidates[winner]
            }
            SamplingPhase::Committed { winner, remaining } => {
                if remaining > 1 {
                    self.phase = SamplingPhase::Committed {
                        winner,
                        remaining: remaining - 1,
                    };
                    return self.candidates[winner];
                }
                // Epoch over: forget the scores and start a fresh trial round
                // with the first candidate.
                self.scores.fill((0, 0));
                self.phase = SamplingPhase::Sampling {
                    candidate: 0,
                    interval: 0,
                };
                self.candidates[0]
            }
        }
    }
}

/// Threshold selector over the paper's own MLP signals.
///
/// An interval whose machine-wide long-latency-load rate and MLP sample both
/// clear their thresholds is memory-bound with exploitable MLP: the selector
/// answers with the MLP-aware candidate. Otherwise it answers with the ILP
/// candidate ("MLP Aware Scheduling Techniques in Multithreaded
/// Processors" applies the same signals to scheduling decisions).
#[derive(Clone, Debug)]
pub struct MlpThresholdSelector {
    ilp_policy: FetchPolicyKind,
    mlp_policy: FetchPolicyKind,
    lll_per_kinst_threshold: f64,
    mlp_threshold: f64,
}

impl MlpThresholdSelector {
    /// A threshold selector switching between `ilp_policy` and `mlp_policy`.
    pub fn new(
        ilp_policy: FetchPolicyKind,
        mlp_policy: FetchPolicyKind,
        lll_per_kinst_threshold: f64,
        mlp_threshold: f64,
    ) -> Self {
        MlpThresholdSelector {
            ilp_policy,
            mlp_policy,
            lll_per_kinst_threshold,
            mlp_threshold,
        }
    }
}

impl PolicySelector for MlpThresholdSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::MlpThreshold
    }

    fn next_policy(
        &mut self,
        interval: &IntervalStats,
        _current: FetchPolicyKind,
    ) -> FetchPolicyKind {
        let memory_bound =
            interval.total_lll_per_kilo_instruction() >= self.lll_per_kinst_threshold;
        let has_mlp = interval.total_mlp() >= self.mlp_threshold;
        if memory_bound && has_mlp {
            self.mlp_policy
        } else {
            self.ilp_policy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_types::adaptive::ThreadIntervalStats;

    fn interval(
        committed: u64,
        cycles: u64,
        lll: u64,
        mlp_sum: u64,
        mlp_cycles: u64,
    ) -> IntervalStats {
        IntervalStats {
            cycles,
            threads: vec![ThreadIntervalStats {
                committed,
                long_latency_loads: lll,
                policy_flushes: 0,
                mlp_outstanding_sum: mlp_sum,
                mlp_cycles,
            }],
        }
    }

    fn candidates() -> Vec<FetchPolicyKind> {
        vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush]
    }

    #[test]
    fn static_selector_never_switches() {
        let mut s = StaticSelector::new(FetchPolicyKind::MlpFlush);
        assert_eq!(s.kind(), SelectorKind::Static);
        for _ in 0..5 {
            assert_eq!(
                s.next_policy(&interval(10, 100, 0, 0, 0), FetchPolicyKind::MlpFlush),
                FetchPolicyKind::MlpFlush
            );
        }
    }

    #[test]
    fn sampling_trials_every_candidate_then_commits_to_the_winner() {
        let mut s = SamplingSelector::new(candidates(), 1, 3);
        // Interval 1 ran candidate 0 (icount) at IPC 1.0; trial candidate 1 next.
        assert_eq!(
            s.next_policy(&interval(100, 100, 0, 0, 0), FetchPolicyKind::Icount),
            FetchPolicyKind::MlpFlush
        );
        // Interval 2 ran mlp-flush at IPC 2.0: mlp-flush wins the epoch.
        assert_eq!(
            s.next_policy(&interval(200, 100, 0, 0, 0), FetchPolicyKind::MlpFlush),
            FetchPolicyKind::MlpFlush
        );
        // Winner holds for the commit phase.
        for _ in 0..2 {
            assert_eq!(
                s.next_policy(&interval(50, 100, 0, 0, 0), FetchPolicyKind::MlpFlush),
                FetchPolicyKind::MlpFlush
            );
        }
        // Commit phase over: a fresh epoch starts with candidate 0 again.
        assert_eq!(
            s.next_policy(&interval(50, 100, 0, 0, 0), FetchPolicyKind::MlpFlush),
            FetchPolicyKind::Icount
        );
        // This epoch icount samples better; ties and scores reset per epoch.
        assert_eq!(
            s.next_policy(&interval(300, 100, 0, 0, 0), FetchPolicyKind::Icount),
            FetchPolicyKind::MlpFlush
        );
        assert_eq!(
            s.next_policy(&interval(100, 100, 0, 0, 0), FetchPolicyKind::MlpFlush),
            FetchPolicyKind::Icount
        );
    }

    #[test]
    fn sampling_ties_break_towards_the_earlier_candidate() {
        let mut s = SamplingSelector::new(candidates(), 1, 2);
        assert_eq!(
            s.next_policy(&interval(100, 100, 0, 0, 0), FetchPolicyKind::Icount),
            FetchPolicyKind::MlpFlush
        );
        // Identical IPC: the earlier candidate (icount) wins the commit.
        assert_eq!(
            s.next_policy(&interval(100, 100, 0, 0, 0), FetchPolicyKind::MlpFlush),
            FetchPolicyKind::Icount
        );
    }

    #[test]
    fn mlp_threshold_switches_on_both_signals() {
        let mut s =
            MlpThresholdSelector::new(FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush, 5.0, 1.5);
        // Memory-bound with MLP: 10 LLL/Kinst, MLP 2.0.
        assert_eq!(
            s.next_policy(&interval(1_000, 500, 10, 100, 50), FetchPolicyKind::Icount),
            FetchPolicyKind::MlpFlush
        );
        // Memory-bound without MLP: isolated misses.
        assert_eq!(
            s.next_policy(&interval(1_000, 500, 10, 50, 50), FetchPolicyKind::MlpFlush),
            FetchPolicyKind::Icount
        );
        // Compute-bound interval.
        assert_eq!(
            s.next_policy(&interval(1_000, 500, 1, 100, 50), FetchPolicyKind::MlpFlush),
            FetchPolicyKind::Icount
        );
    }

    #[test]
    fn factory_builds_every_selector() {
        for kind in SelectorKind::ALL {
            let config = AdaptiveConfig::new(kind, candidates());
            let mut selector = build_selector(&config);
            assert_eq!(selector.kind(), kind);
            assert_eq!(selector.name(), kind.name());
            let chosen = selector.next_policy(&interval(10, 100, 0, 0, 0), config.initial_policy());
            assert!(config.candidates.contains(&chosen));
        }
    }

    #[test]
    fn mlp_threshold_roles_are_ordering_insensitive() {
        // `[mlp-flush, icount]` starts on mlp-flush but must still treat
        // icount as the compute-bound choice and mlp-flush as the
        // memory-bound one — not the inverse.
        let config = AdaptiveConfig::new(
            SelectorKind::MlpThreshold,
            vec![FetchPolicyKind::MlpFlush, FetchPolicyKind::Icount],
        );
        let mut selector = build_selector(&config);
        // Memory-bound with MLP: the MLP-aware candidate.
        assert_eq!(
            selector.next_policy(
                &interval(1_000, 500, 10, 100, 50),
                FetchPolicyKind::MlpFlush
            ),
            FetchPolicyKind::MlpFlush
        );
        // Compute-bound: the ILP candidate.
        assert_eq!(
            selector.next_policy(&interval(1_000, 500, 0, 0, 0), FetchPolicyKind::MlpFlush),
            FetchPolicyKind::Icount
        );
    }

    #[test]
    #[should_panic(expected = "validate")]
    fn factory_rejects_invalid_configs() {
        let mut config = AdaptiveConfig::new(SelectorKind::Sampling, candidates());
        config.interval_cycles = 0;
        let _ = build_selector(&config);
    }
}
