//! Synthetic trace generator driven by a [`BenchmarkProfile`].
//!
//! The generator is a small state machine that interleaves four access streams:
//!
//! 1. a *hot* load/store stream confined to a cache-resident working set,
//! 2. an occasional *warm* stream that reaches into an L2/L3-resident region,
//! 3. a *miss* stream of long-latency loads, organised as bursts of independent
//!    loads so that the targeted amount of MLP exists within a ROB-sized window,
//! 4. computational (integer / floating-point) and branch instructions filling the
//!    rest of the mix.
//!
//! Miss bursts alternate between strided streams (coverable by the hardware
//! prefetcher) and pointer-chase-like random streams, in the proportion given by
//! the profile's `prefetch_friendliness`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smt_types::{OpKind, TraceOp};

use crate::profile::BenchmarkProfile;
use crate::{TraceSource, TraceSourceState};

/// Base virtual address of the hot (L1-resident) data region.
const HOT_BASE: u64 = 0x1000_0000;
/// Base virtual address of the warm (L2/L3-resident) data region.
const WARM_BASE: u64 = 0x2000_0000;
/// Base of the strided long-latency region.
const STRIDE_BASE: u64 = 0x8000_0000;
/// Base of the random (pointer-chase) long-latency region.
const RANDOM_BASE: u64 = 0x10_0000_0000;
/// Size of the random long-latency region in bytes (1 GiB: essentially never
/// cache- or TLB-resident).
const RANDOM_SPAN: u64 = 1 << 30;
/// Cache line size assumed by the generator.
const LINE: u64 = 64;
/// Number of lines in the warm region (fits in the 4 MB L3 but not the 64 KB L1).
const WARM_LINES: u64 = 24 * 1024;

/// Code-region layout: each instruction class gets its own PC pool so that the
/// PC-indexed predictors observe stable per-PC behaviour. The offsets are chosen
/// so that the pools do not alias in the 2K-entry PC-indexed predictor tables
/// (which index with `pc / 4 mod 2048`, i.e. alias every 8 KiB of code).
const CODE_ALU_BASE: u64 = 0x0040_0000;
const CODE_BRANCH_BASE: u64 = 0x0041_1000;
const CODE_HITLOAD_BASE: u64 = 0x0042_0400;
const CODE_STORE_BASE: u64 = 0x0043_1400;
const CODE_MISSLOAD_BASE: u64 = 0x0044_1c00;
const CODE_STRIDELOAD_BASE: u64 = 0x0044_1e00;

/// Number of distinct static long-latency ("delinquent") load PCs used by
/// pointer-chase style (non-strided) miss bursts — one per position within a
/// burst, so each static load has a stable MLP distance.
const DELINQUENT_PCS: u64 = 12;
/// Number of distinct strided miss streams, each with its own static load PC and
/// its own array region — one per position within a strided burst, mimicking loop
/// bodies that walk several arrays in lockstep (swim, applu, mgrid).
const STRIDE_STREAMS: u64 = 12;
/// Byte distance between the array regions of consecutive strided streams.
const STRIDE_REGION_BYTES: u64 = 1 << 28;

/// A deterministic, profile-driven synthetic instruction stream.
///
/// Two generators constructed with the same profile and seed produce identical
/// streams, which the STP/ANTT methodology relies on (the single-threaded
/// reference run replays exactly the instructions the SMT run executed).
#[derive(Clone, Debug)]
pub struct SyntheticTraceGenerator {
    profile: BenchmarkProfile,
    rng: StdRng,
    seq: u64,
    /// Instructions remaining until the next miss burst begins.
    gap_to_next_burst: u64,
    /// Long-latency loads still to be emitted in the current burst.
    burst_remaining: u32,
    /// Instructions between consecutive long-latency loads of the current burst.
    burst_gap: u32,
    /// Countdown to the next long-latency load within the burst.
    next_miss_in: u32,
    /// Whether the current burst walks strided (prefetchable) streams.
    burst_strided: bool,
    /// Position within the current burst (selects the static load PC and stream).
    burst_position: u64,
    /// Per-stream next-line cursors of the strided miss region.
    stride_cursors: Vec<u64>,
    /// Rotating cursors for hot loads / stores / ALU PCs.
    hot_cursor: u64,
    alu_pc_cursor: u64,
    /// Rotating cursor over the static branch pool, so branches appear in a
    /// loop-body-like order and the gshare global history is learnable.
    branch_cursor: usize,
    branch_bias: Vec<bool>,
    emitted_long_latency: u64,
}

impl SyntheticTraceGenerator {
    /// Creates a generator for `profile`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not validate.
    pub fn new(profile: BenchmarkProfile, seed: u64) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        // Each static branch has a fixed bias; the taken rate controls how many of
        // them are taken-biased. Predictable branches always follow their bias.
        let taken_rate = profile.branch_taken_rate;
        let branch_bias = (0..64).map(|_| rng.gen_bool(taken_rate)).collect();
        let mut this = SyntheticTraceGenerator {
            profile,
            rng,
            seq: 0,
            gap_to_next_burst: 0,
            burst_remaining: 0,
            burst_gap: 1,
            next_miss_in: 0,
            burst_strided: false,
            burst_position: 0,
            stride_cursors: vec![0; STRIDE_STREAMS as usize],
            hot_cursor: 0,
            alu_pc_cursor: 0,
            branch_cursor: 0,
            branch_bias,
            emitted_long_latency: 0,
        };
        this.gap_to_next_burst = this.sample_burst_gap();
        this
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Number of intended long-latency loads emitted so far (before any prefetch
    /// coverage is applied by the memory hierarchy).
    pub fn emitted_long_latency(&self) -> u64 {
        self.emitted_long_latency
    }

    /// Average number of instructions between the start of consecutive miss bursts
    /// implied by the profile (burst size / loads-per-instruction).
    fn mean_burst_interval(&self) -> f64 {
        let rate = (self.profile.lll_per_kinst / 1000.0).max(1e-7);
        (self.profile.target_mlp / rate).max(self.profile.burst_span as f64 + 1.0)
    }

    fn sample_burst_gap(&mut self) -> u64 {
        let mean = self.mean_burst_interval();
        // Mild jitter keeps the long-run rate at the target without making the
        // inter-burst spacing (and therefore the observed MLP distances) so
        // irregular that the last-value MLP distance predictor cannot track them.
        let factor = self.rng.gen_range(0.85..1.15);
        (mean * factor).max(1.0) as u64
    }

    fn sample_burst_size(&mut self) -> u32 {
        // Bursts have a fixed size of round(target MLP): real delinquent loops
        // issue the same cluster of independent misses every iteration, which is
        // what makes the per-PC MLP distance predictable (Figures 4 and 8). The
        // long-run miss rate is controlled by the inter-burst gap, so Table I's
        // LLL/1K-instruction column is preserved independently.
        self.profile.target_mlp.round().max(1.0) as u32
    }

    fn start_burst(&mut self) {
        self.burst_remaining = self.sample_burst_size();
        self.burst_strided = self.rng.gen_bool(self.profile.prefetch_friendliness);
        // Spread the burst's independent loads over the profile's burst span.
        self.burst_gap = (self.profile.burst_span / self.burst_remaining.max(1)).max(1);
        self.next_miss_in = 0;
        self.burst_position = 0;
        self.gap_to_next_burst = self.sample_burst_gap();
    }

    fn hot_address(&mut self) -> u64 {
        if self.rng.gen_bool(self.profile.l2_fraction) {
            let line = self.rng.gen_range(0..WARM_LINES);
            return WARM_BASE + line * LINE;
        }
        self.hot_cursor = self.hot_cursor.wrapping_add(1);
        let line = (self.hot_cursor * 7) % self.profile.hot_working_set_lines as u64;
        HOT_BASE + line * LINE
    }

    fn dep_distance(&mut self) -> u32 {
        let mean = self.profile.dep_distance_mean;
        let d = self.rng.gen_range(1.0..(2.0 * mean).max(2.0));
        d.round().clamp(1.0, 48.0) as u32
    }

    fn hit_load(&mut self) -> TraceOp {
        let slot = self.rng.gen_range(0..self.profile.static_mem_pcs as u64);
        let pc = CODE_HITLOAD_BASE + slot * 8;
        let addr = self.hot_address();
        let dep = self.dep_distance();
        TraceOp::load(pc, addr).with_dep(dep)
    }

    fn store(&mut self) -> TraceOp {
        let slot = self
            .rng
            .gen_range(0..(self.profile.static_mem_pcs as u64 / 2).max(1));
        let pc = CODE_STORE_BASE + slot * 8;
        let addr = self.hot_address();
        let dep = self.dep_distance();
        TraceOp::store(pc, addr).with_dep(dep)
    }

    fn branch(&mut self) -> TraceOp {
        // Branches appear in round-robin static order (as in a loop body), so the
        // global history seen by each static branch is stable and learnable; only
        // the `branch_randomness` fraction of outcomes is inherently unpredictable.
        self.branch_cursor = (self.branch_cursor + 1) % self.branch_bias.len();
        let slot = self.branch_cursor;
        let pc = CODE_BRANCH_BASE + (slot as u64) * 8;
        let taken = if self.rng.gen_bool(self.profile.branch_randomness) {
            self.rng.gen_bool(0.5)
        } else {
            self.branch_bias[slot]
        };
        let target = pc + 0x80;
        TraceOp::branch(pc, taken, target)
    }

    fn alu(&mut self) -> TraceOp {
        self.alu_pc_cursor = (self.alu_pc_cursor + 1) % 2048;
        let pc = CODE_ALU_BASE + self.alu_pc_cursor * 4;
        let kind = if self.rng.gen_bool(self.profile.fp_fraction) {
            if self.rng.gen_bool(0.06) {
                OpKind::FpLong
            } else {
                OpKind::FpOp
            }
        } else if self.rng.gen_bool(0.04) {
            OpKind::IntMul
        } else {
            OpKind::IntAlu
        };
        let dep = self.dep_distance();
        TraceOp {
            pc,
            kind,
            src_deps: [None, None],
            mem: None,
            branch: None,
        }
        .with_dep(dep)
    }

    /// Emits the next long-latency load of the current burst. Position `i` of a
    /// burst always uses the same static load PC (and, for strided bursts, walks
    /// its own array region), so the PC-indexed predictors see per-PC behaviour
    /// that is stable across dynamic instances — just like the delinquent loads of
    /// a loop body in the real benchmarks.
    fn long_latency_load(&mut self) -> TraceOp {
        self.emitted_long_latency += 1;
        let position = self.burst_position;
        self.burst_position += 1;
        let (pc, addr) = if self.burst_strided {
            let slot = (position % STRIDE_STREAMS) as usize;
            self.stride_cursors[slot] += 1;
            let addr =
                STRIDE_BASE + slot as u64 * STRIDE_REGION_BYTES + self.stride_cursors[slot] * LINE;
            (CODE_STRIDELOAD_BASE + (slot as u64) * 8, addr)
        } else {
            let slot = position % DELINQUENT_PCS;
            let line = self.rng.gen_range(0..(RANDOM_SPAN / LINE));
            (CODE_MISSLOAD_BASE + slot * 8, RANDOM_BASE + line * LINE)
        };
        // Independent of in-flight producers so overlapping misses really overlap.
        TraceOp::load(pc, addr)
    }

    /// Generates the next dynamic instruction. This is the monomorphic core
    /// shared by [`TraceSource::next_op`] and the natively batched
    /// [`TraceSource::refill`].
    fn gen_op(&mut self) -> TraceOp {
        self.seq += 1;

        // Miss-burst scheduling takes precedence over the background mix.
        if self.burst_remaining > 0 {
            if self.next_miss_in == 0 {
                self.burst_remaining -= 1;
                self.next_miss_in = self.burst_gap;
                return self.long_latency_load();
            }
            self.next_miss_in -= 1;
        } else if self.gap_to_next_burst == 0 {
            if self.profile.lll_per_kinst > 0.0 {
                self.start_burst();
            } else {
                self.gap_to_next_burst = u64::MAX;
            }
        } else {
            self.gap_to_next_burst -= 1;
        }

        let roll: f64 = self.rng.gen();
        let p = &self.profile;
        if roll < p.load_fraction {
            self.hit_load()
        } else if roll < p.load_fraction + p.store_fraction {
            self.store()
        } else if roll < p.load_fraction + p.store_fraction + p.branch_fraction {
            self.branch()
        } else {
            self.alu()
        }
    }
}

impl TraceSource for SyntheticTraceGenerator {
    fn next_op(&mut self) -> TraceOp {
        self.gen_op()
    }

    fn refill(&mut self, buf: &mut Vec<TraceOp>, n: usize) {
        // Native batched implementation: one virtual call fills the whole
        // batch through the monomorphic generator core.
        buf.reserve(n);
        for _ in 0..n {
            buf.push(self.gen_op());
        }
    }

    fn name(&self) -> &str {
        &self.profile.name
    }

    fn save_state(&self) -> Option<TraceSourceState> {
        Some(TraceSourceState {
            name: self.profile.name.clone(),
            rng_state: self.rng.state(),
            seq: self.seq,
            gap_to_next_burst: self.gap_to_next_burst,
            burst_remaining: self.burst_remaining,
            burst_gap: self.burst_gap,
            next_miss_in: self.next_miss_in,
            burst_strided: self.burst_strided,
            burst_position: self.burst_position,
            stride_cursors: self.stride_cursors.clone(),
            hot_cursor: self.hot_cursor,
            alu_pc_cursor: self.alu_pc_cursor,
            branch_cursor: self.branch_cursor as u64,
            branch_bias: self.branch_bias.clone(),
            emitted_long_latency: self.emitted_long_latency,
        })
    }

    fn restore_state(&mut self, state: &TraceSourceState) -> Result<(), String> {
        if state.name != self.profile.name {
            return Err(format!(
                "trace state belongs to `{}`, target generator runs `{}`",
                state.name, self.profile.name
            ));
        }
        if state.stride_cursors.len() != self.stride_cursors.len()
            || state.branch_bias.len() != self.branch_bias.len()
        {
            return Err(format!(
                "trace state geometry mismatch for `{}` (different generator version?)",
                state.name
            ));
        }
        self.rng = StdRng::from_state(state.rng_state);
        self.seq = state.seq;
        self.gap_to_next_burst = state.gap_to_next_burst;
        self.burst_remaining = state.burst_remaining;
        self.burst_gap = state.burst_gap;
        self.next_miss_in = state.next_miss_in;
        self.burst_strided = state.burst_strided;
        self.burst_position = state.burst_position;
        self.stride_cursors.copy_from_slice(&state.stride_cursors);
        self.hot_cursor = state.hot_cursor;
        self.alu_pc_cursor = state.alu_pc_cursor;
        self.branch_cursor = state.branch_cursor as usize;
        self.branch_bias.copy_from_slice(&state.branch_bias);
        self.emitted_long_latency = state.emitted_long_latency;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn gen_for(name: &str, seed: u64) -> SyntheticTraceGenerator {
        SyntheticTraceGenerator::new(spec::benchmark(name).unwrap(), seed)
    }

    fn classify(ops: &[TraceOp]) -> (usize, usize, usize, usize) {
        let loads = ops.iter().filter(|o| o.kind == OpKind::Load).count();
        let stores = ops.iter().filter(|o| o.kind == OpKind::Store).count();
        let branches = ops.iter().filter(|o| o.kind == OpKind::Branch).count();
        let alu = ops.len() - loads - stores - branches;
        (loads, stores, branches, alu)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = gen_for("mcf", 7);
        let mut b = gen_for("mcf", 7);
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = gen_for("mcf", 7);
        let mut b = gen_for("mcf", 8);
        let same = (0..1000).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 1000);
    }

    #[test]
    fn all_ops_well_formed() {
        let mut g = gen_for("swim", 1);
        for _ in 0..20_000 {
            assert!(g.next_op().is_well_formed());
        }
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let mut g = gen_for("gcc", 3);
        let ops: Vec<_> = (0..50_000).map(|_| g.next_op()).collect();
        let (loads, stores, branches, _alu) = classify(&ops);
        let p = g.profile();
        let lf = loads as f64 / ops.len() as f64;
        let sf = stores as f64 / ops.len() as f64;
        let bf = branches as f64 / ops.len() as f64;
        assert!((lf - p.load_fraction).abs() < 0.05, "load fraction {lf}");
        assert!((sf - p.store_fraction).abs() < 0.05, "store fraction {sf}");
        assert!(
            (bf - p.branch_fraction).abs() < 0.05,
            "branch fraction {bf}"
        );
    }

    #[test]
    fn long_latency_rate_tracks_table1() {
        for (name, tolerance) in [("mcf", 0.4), ("swim", 0.4), ("equake", 0.4)] {
            let mut g = gen_for(name, 11);
            let n = 200_000u64;
            for _ in 0..n {
                let _ = g.next_op();
            }
            let rate = g.emitted_long_latency() as f64 * 1000.0 / n as f64;
            let target = g.profile().lll_per_kinst;
            assert!(
                (rate - target).abs() / target < tolerance,
                "{name}: emitted LLL/kinst {rate:.2} vs target {target:.2}"
            );
        }
    }

    #[test]
    fn low_miss_benchmarks_emit_few_long_latency_loads() {
        let mut g = gen_for("gcc", 5);
        let n = 100_000u64;
        for _ in 0..n {
            let _ = g.next_op();
        }
        let rate = g.emitted_long_latency() as f64 * 1000.0 / n as f64;
        assert!(
            rate < 0.5,
            "gcc should have almost no long-latency loads, got {rate}"
        );
    }

    #[test]
    fn miss_loads_are_independent_and_use_delinquent_pcs() {
        let mut g = gen_for("fma3d", 9);
        let mut seen = 0;
        for _ in 0..100_000 {
            let op = g.next_op();
            if op.kind == OpKind::Load && op.pc >= CODE_MISSLOAD_BASE {
                assert_eq!(
                    op.src_deps,
                    [None, None],
                    "delinquent loads must be independent"
                );
                seen += 1;
            }
        }
        assert!(seen > 500, "expected many delinquent loads, saw {seen}");
    }

    #[test]
    fn bursts_fit_within_burst_span() {
        // All long-latency loads of one burst must fall within roughly one ROB's
        // worth of instructions so they can overlap; check the gap between
        // consecutive delinquent loads never exceeds the burst span.
        let mut g = gen_for("lucas", 13);
        let mut last_miss_at: Option<u64> = None;
        let mut within = 0u64;
        let mut beyond = 0u64;
        for i in 0..200_000u64 {
            let op = g.next_op();
            if op.kind == OpKind::Load && op.pc >= CODE_MISSLOAD_BASE {
                if let Some(prev) = last_miss_at {
                    if i - prev <= g.profile().burst_span as u64 {
                        within += 1;
                    } else {
                        beyond += 1;
                    }
                }
                last_miss_at = Some(i);
            }
        }
        // Most consecutive-miss gaps are intra-burst and therefore short.
        assert!(within > beyond, "within={within} beyond={beyond}");
    }

    #[test]
    fn fp_benchmarks_emit_fp_ops() {
        let mut g = gen_for("applu", 17);
        let fp = (0..20_000)
            .map(|_| g.next_op())
            .filter(|o| o.kind.is_fp())
            .count();
        assert!(fp > 2_000, "applu should be FP heavy, got {fp}");
        let mut g = gen_for("gcc", 17);
        let fp = (0..20_000)
            .map(|_| g.next_op())
            .filter(|o| o.kind.is_fp())
            .count();
        assert!(fp < 2_000, "gcc should be integer dominated, got {fp}");
    }

    #[test]
    #[should_panic]
    fn invalid_profile_panics() {
        let mut p = spec::benchmark("gcc").unwrap();
        p.load_fraction = 2.0;
        let _ = SyntheticTraceGenerator::new(p, 0);
    }
}
