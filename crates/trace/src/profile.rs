//! Parametric benchmark workload models.

use serde::{Deserialize, Serialize};

/// Classification of a benchmark used throughout the evaluation (rightmost column
/// of Table I): MLP-intensive benchmarks are those whose measured MLP impact on
/// single-thread performance exceeds 10%.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// ILP-intensive: little to gain from memory-level parallelism.
    Ilp,
    /// MLP-intensive: overlapping long-latency loads matter for performance.
    Mlp,
}

impl WorkloadClass {
    /// Short label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Ilp => "ILP",
            WorkloadClass::Mlp => "MLP",
        }
    }
}

/// A parametric model of one benchmark's dynamic behaviour.
///
/// The fields are the knobs of the synthetic trace generator; `spec::benchmark`
/// provides instances calibrated against Table I of the paper.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (e.g. `"mcf"`).
    pub name: String,
    /// Reference input name, for documentation parity with Table I.
    pub input: String,
    /// ILP/MLP classification from Table I.
    pub class: WorkloadClass,
    /// Target long-latency loads per 1000 instructions (Table I "LLL" column),
    /// measured on a prefetcher-less 256-entry ROB processor.
    pub lll_per_kinst: f64,
    /// Target memory-level parallelism (Table I "MLP" column): average burst size
    /// of independent long-latency loads.
    pub target_mlp: f64,
    /// Span, in dynamic instructions, over which a burst of independent
    /// long-latency loads is spread. Large values (mcf, fma3d) put the MLP far down
    /// the instruction stream; small values (lucas) keep it close.
    pub burst_span: u32,
    /// Fraction of long-latency load streams that follow a regular stride and are
    /// therefore coverable by the stream-buffer prefetcher.
    pub prefetch_friendliness: f64,
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of instructions that are stores.
    pub store_fraction: f64,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Fraction of the remaining (computational) instructions that are floating
    /// point.
    pub fp_fraction: f64,
    /// Probability that a conditional branch is taken.
    pub branch_taken_rate: f64,
    /// Probability that a branch outcome is effectively random (not capturable by
    /// the gshare predictor); models the benchmark's branch misprediction rate.
    pub branch_randomness: f64,
    /// Mean producer-consumer dependency distance in instructions; smaller values
    /// mean longer dependence chains and lower ILP.
    pub dep_distance_mean: f64,
    /// Number of distinct static loads/stores (code footprint knob for the
    /// predictor tables).
    pub static_mem_pcs: u32,
    /// Cache-resident working-set size of the "hit" access stream, in 64-byte
    /// lines.
    pub hot_working_set_lines: u32,
    /// Fraction of hit-stream accesses that go to an L2/L3-resident (but not
    /// L1-resident) region, generating intermediate-latency misses.
    pub l2_fraction: f64,
}

impl BenchmarkProfile {
    /// Checks that all fractions are sane and the profile can drive the generator.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let fractions = [
            ("load_fraction", self.load_fraction),
            ("store_fraction", self.store_fraction),
            ("branch_fraction", self.branch_fraction),
            ("fp_fraction", self.fp_fraction),
            ("branch_taken_rate", self.branch_taken_rate),
            ("branch_randomness", self.branch_randomness),
            ("prefetch_friendliness", self.prefetch_friendliness),
            ("l2_fraction", self.l2_fraction),
        ];
        for (name, value) in fractions {
            if !(0.0..=1.0).contains(&value) {
                return Err(format!("{name} must be within [0, 1], got {value}"));
            }
        }
        if self.load_fraction + self.store_fraction + self.branch_fraction >= 1.0 {
            return Err("load + store + branch fractions must leave room for ALU ops".into());
        }
        if self.name.is_empty() {
            return Err("benchmark name must not be empty".into());
        }
        if self.lll_per_kinst < 0.0 || self.lll_per_kinst > 1000.0 {
            return Err("lll_per_kinst must be within [0, 1000]".into());
        }
        if self.target_mlp < 1.0 {
            return Err("target MLP is defined as ≥ 1".into());
        }
        if self.burst_span == 0 {
            return Err("burst span must be non-zero".into());
        }
        if self.dep_distance_mean < 1.0 {
            return Err("dependency distance mean must be ≥ 1".into());
        }
        // Bursts of `target_mlp` misses are spread over `burst_span` instructions
        // and separated by at least one span, so the achievable long-latency load
        // rate is bounded by mlp / (span + 1) per instruction.
        let max_rate = 1000.0 * self.target_mlp / (self.burst_span as f64 + 1.0);
        if self.lll_per_kinst > max_rate {
            return Err(format!(
                "lll_per_kinst {} is not achievable with MLP {} over a {}-instruction burst span (max {:.1})",
                self.lll_per_kinst, self.target_mlp, self.burst_span, max_rate
            ));
        }
        if self.hot_working_set_lines == 0 || self.static_mem_pcs == 0 {
            return Err("working set and static PC counts must be non-zero".into());
        }
        Ok(())
    }

    /// Whether the benchmark is MLP-intensive per Table I.
    pub fn is_mlp_intensive(&self) -> bool {
        self.class == WorkloadClass::Mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "sample".into(),
            input: "ref".into(),
            class: WorkloadClass::Mlp,
            lll_per_kinst: 10.0,
            target_mlp: 4.0,
            burst_span: 96,
            prefetch_friendliness: 0.5,
            load_fraction: 0.25,
            store_fraction: 0.1,
            branch_fraction: 0.12,
            fp_fraction: 0.4,
            branch_taken_rate: 0.6,
            branch_randomness: 0.05,
            dep_distance_mean: 6.0,
            static_mem_pcs: 64,
            hot_working_set_lines: 256,
            l2_fraction: 0.02,
        }
    }

    #[test]
    fn sample_profile_validates() {
        assert!(sample().validate().is_ok());
        assert!(sample().is_mlp_intensive());
    }

    #[test]
    fn bad_fraction_rejected() {
        let mut p = sample();
        p.load_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = sample();
        p.load_fraction = 0.5;
        p.store_fraction = 0.3;
        p.branch_fraction = 0.3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn unachievable_miss_rate_rejected() {
        let mut p = sample();
        p.lll_per_kinst = 500.0;
        p.target_mlp = 1.0;
        p.burst_span = 100;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_mlp_and_span_rejected() {
        let mut p = sample();
        p.target_mlp = 0.5;
        assert!(p.validate().is_err());
        let mut p = sample();
        p.burst_span = 0;
        assert!(p.validate().is_err());
        let mut p = sample();
        p.dep_distance_mean = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_labels() {
        assert_eq!(WorkloadClass::Ilp.label(), "ILP");
        assert_eq!(WorkloadClass::Mlp.label(), "MLP");
    }
}
