//! SPEC CPU2000 benchmark profiles calibrated against Table I of the paper.
//!
//! Each entry records the reference input, the ILP/MLP classification, the
//! long-latency-load rate and the MLP the paper measured, plus generator knobs
//! (burst span, prefetch friendliness, instruction mix) chosen so that the
//! synthetic traces reproduce the qualitative behaviour of each benchmark: the
//! miss-burst structure the fetch policies react to, the MLP-distance CDF shape of
//! Figure 4, and the prefetcher sensitivity of Figure 5.

use crate::profile::{BenchmarkProfile, WorkloadClass};
use smt_types::SimError;

/// Integer-benchmark defaults for the instruction mix.
#[allow(clippy::too_many_arguments)]
fn int_profile(
    name: &str,
    input: &str,
    class: WorkloadClass,
    lll: f64,
    mlp: f64,
    burst_span: u32,
    prefetch: f64,
    branch_randomness: f64,
) -> BenchmarkProfile {
    BenchmarkProfile {
        name: name.into(),
        input: input.into(),
        class,
        lll_per_kinst: lll,
        target_mlp: mlp,
        burst_span,
        prefetch_friendliness: prefetch,
        load_fraction: 0.26,
        store_fraction: 0.12,
        branch_fraction: 0.16,
        fp_fraction: 0.02,
        branch_taken_rate: 0.62,
        branch_randomness,
        dep_distance_mean: 4.5,
        static_mem_pcs: 96,
        hot_working_set_lines: 384,
        l2_fraction: 0.003,
    }
}

/// Floating-point-benchmark defaults for the instruction mix.
fn fp_profile(
    name: &str,
    input: &str,
    class: WorkloadClass,
    lll: f64,
    mlp: f64,
    burst_span: u32,
    prefetch: f64,
) -> BenchmarkProfile {
    BenchmarkProfile {
        name: name.into(),
        input: input.into(),
        class,
        lll_per_kinst: lll,
        target_mlp: mlp,
        burst_span,
        prefetch_friendliness: prefetch,
        load_fraction: 0.30,
        store_fraction: 0.10,
        branch_fraction: 0.05,
        fp_fraction: 0.55,
        branch_taken_rate: 0.80,
        branch_randomness: 0.01,
        dep_distance_mean: 7.0,
        static_mem_pcs: 64,
        hot_working_set_lines: 512,
        l2_fraction: 0.008,
    }
}

/// Returns the full list of the 26 SPEC CPU2000 benchmarks of Table I, in the
/// order the paper lists them (integer benchmarks first, then floating point).
pub fn all_benchmarks() -> Vec<BenchmarkProfile> {
    use WorkloadClass::{Ilp, Mlp};
    vec![
        // --- SPECint2000 -----------------------------------------------------
        int_profile("bzip2", "program", Ilp, 0.14, 1.00, 48, 0.80, 0.04),
        int_profile("crafty", "ref", Ilp, 0.08, 1.34, 48, 0.30, 0.08),
        int_profile("eon", "rushmeier", Ilp, 0.01, 1.83, 48, 0.40, 0.05),
        int_profile("gap", "ref", Ilp, 0.36, 1.02, 48, 0.40, 0.05),
        int_profile("gcc", "166", Ilp, 0.01, 1.70, 48, 0.35, 0.07),
        int_profile("gzip", "graphic", Ilp, 0.08, 1.81, 48, 0.70, 0.06),
        int_profile("mcf", "ref", Mlp, 17.36, 5.17, 118, 0.05, 0.08),
        int_profile("parser", "ref", Ilp, 0.14, 1.24, 48, 0.30, 0.07),
        int_profile("perlbmk", "makerand", Ilp, 0.30, 1.00, 48, 0.35, 0.05),
        int_profile("twolf", "ref", Ilp, 0.10, 1.37, 48, 0.25, 0.08),
        int_profile("vortex", "ref2", Ilp, 0.39, 1.06, 48, 0.40, 0.04),
        int_profile("vpr", "route", Ilp, 0.09, 1.43, 48, 0.30, 0.07),
        // --- SPECfp2000 ------------------------------------------------------
        fp_profile("ammp", "ref", Mlp, 1.71, 3.94, 72, 0.30),
        fp_profile("applu", "ref", Mlp, 14.24, 4.26, 64, 0.90),
        fp_profile("apsi", "ref", Mlp, 0.78, 6.15, 90, 0.60),
        fp_profile("art", "ref-110", Ilp, 0.19, 8.58, 100, 0.70),
        fp_profile("equake", "ref", Mlp, 24.60, 2.69, 88, 0.60),
        fp_profile("facerec", "ref", Ilp, 0.41, 1.51, 56, 0.60),
        fp_profile("fma3d", "ref", Mlp, 17.67, 6.27, 116, 0.50),
        fp_profile("galgel", "ref", Mlp, 0.24, 3.84, 72, 0.70),
        fp_profile("lucas", "ref", Mlp, 10.63, 2.15, 34, 0.85),
        fp_profile("mesa", "ref", Mlp, 0.45, 2.88, 64, 0.50),
        fp_profile("mgrid", "ref", Mlp, 6.04, 1.76, 52, 0.90),
        fp_profile("sixtrack", "ref", Ilp, 0.10, 2.61, 64, 0.50),
        fp_profile("swim", "ref", Mlp, 15.08, 3.66, 70, 0.90),
        fp_profile("wupwise", "ref", Mlp, 2.00, 2.20, 60, 0.60),
    ]
}

/// Looks up one benchmark profile by name.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] when the name is not one of the 26
/// SPEC CPU2000 benchmarks of Table I.
pub fn benchmark(name: &str) -> Result<BenchmarkProfile, SimError> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .ok_or_else(|| SimError::UnknownBenchmark { name: name.into() })
}

/// The six most MLP-intensive programs used in Figure 4 (MLP-distance CDFs).
pub fn figure4_benchmarks() -> Vec<&'static str> {
    vec!["mcf", "applu", "equake", "fma3d", "lucas", "swim"]
}

/// Names of all MLP-intensive benchmarks (Table I classification).
pub fn mlp_intensive_benchmarks() -> Vec<String> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.class == WorkloadClass::Mlp)
        .map(|b| b.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_26_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 26);
        let names: std::collections::HashSet<_> = all.iter().map(|b| b.name.clone()).collect();
        assert_eq!(names.len(), 26, "benchmark names must be unique");
    }

    #[test]
    fn every_profile_validates() {
        for b in all_benchmarks() {
            b.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn table1_classification_matches_paper() {
        let mlp = mlp_intensive_benchmarks();
        for expected in [
            "mcf", "ammp", "applu", "apsi", "equake", "fma3d", "galgel", "lucas", "mesa", "mgrid",
            "swim", "wupwise",
        ] {
            assert!(
                mlp.iter().any(|n| n == expected),
                "{expected} should be MLP-intensive"
            );
        }
        assert_eq!(mlp.len(), 12);
        for ilp in ["bzip2", "gap", "perlbmk", "art", "facerec", "sixtrack"] {
            assert!(
                !mlp.iter().any(|n| n == ilp),
                "{ilp} should be ILP-intensive"
            );
        }
    }

    #[test]
    fn table1_headline_numbers_match() {
        let mcf = benchmark("mcf").unwrap();
        assert!((mcf.lll_per_kinst - 17.36).abs() < 1e-9);
        assert!((mcf.target_mlp - 5.17).abs() < 1e-9);
        let fma3d = benchmark("fma3d").unwrap();
        assert!((fma3d.target_mlp - 6.27).abs() < 1e-9);
        let bzip2 = benchmark("bzip2").unwrap();
        assert!((bzip2.target_mlp - 1.00).abs() < 1e-9);
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        assert!(benchmark("quake3").is_err());
    }

    #[test]
    fn figure4_set_is_mlp_intensive_with_expected_spans() {
        let lucas = benchmark("lucas").unwrap();
        let mcf = benchmark("mcf").unwrap();
        assert!(
            lucas.burst_span < 40,
            "lucas exposes its MLP over short distances"
        );
        assert!(
            mcf.burst_span > 100,
            "mcf exposes its MLP over long distances"
        );
        for name in figure4_benchmarks() {
            assert!(benchmark(name).unwrap().is_mlp_intensive());
        }
    }
}
