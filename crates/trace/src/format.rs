//! The `.smtt` on-disk trace format: fixed-width little-endian records behind
//! a small versioned header.
//!
//! A trace file is a 64-byte [`TraceHeader`] followed by `op_count` records of
//! [`RECORD_LEN`] bytes each. Records are fixed width so position `i` lives at
//! byte `HEADER_LEN + i * RECORD_LEN` — seeking is pure arithmetic, which is
//! what makes [`crate::reader::FileTraceSource`]'s `skip` O(1) — and decoding
//! is a branch-light monomorphic loop with zero per-op allocation.
//!
//! # Header layout (64 bytes, little-endian)
//!
//! | bytes  | field       | meaning                                          |
//! |--------|-------------|--------------------------------------------------|
//! | 0..8   | magic       | `b"SMTTRACE"`                                    |
//! | 8..10  | version     | format version, currently [`FORMAT_VERSION`]     |
//! | 10..12 | record_len  | bytes per record, currently [`RECORD_LEN`]       |
//! | 12..16 | flags       | bit 0: workload is MLP-intensive                 |
//! | 16..24 | op_count    | number of records                                |
//! | 24..32 | digest      | FNV-1a 64 over all record bytes, in order        |
//! | 32..64 | benchmark   | UTF-8 benchmark name, NUL-padded to 32 bytes     |
//!
//! # Record layout (24 bytes, little-endian)
//!
//! | bytes  | field    | meaning                                             |
//! |--------|----------|-----------------------------------------------------|
//! | 0..8   | pc       | program counter                                     |
//! | 8..16  | payload  | memory address (mem ops) / branch target (branches) |
//! | 16..18 | dep0     | producer distance of source 0; `0xFFFF` = none      |
//! | 18..20 | dep1     | producer distance of source 1; `0xFFFF` = none      |
//! | 20     | kind     | [`OpKind`] discriminant, 0..=6 in declaration order |
//! | 21     | flags    | bit 0 taken, bit 1 unconditional, bit 2 has-mem, bit 3 has-branch |
//! | 22     | mem_size | access size in bytes (mem ops; else 0)              |
//! | 23     | reserved | must be 0                                           |

use smt_types::{BranchInfo, MemInfo, OpKind, SimError, TraceOp};

/// Magic bytes opening every `.smtt` file.
pub const MAGIC: [u8; 8] = *b"SMTTRACE";

/// Current format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u16 = 1;

/// Bytes per header.
pub const HEADER_LEN: usize = 64;

/// Bytes per record.
pub const RECORD_LEN: usize = 24;

/// Maximum encodable benchmark-name length in bytes.
pub const MAX_NAME_LEN: usize = 32;

/// Dependence-distance sentinel meaning "no dependence in this slot".
pub const DEP_NONE: u16 = u16::MAX;

/// FNV-1a 64-bit offset basis (digest seed).
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Record flag bit 0: the branch was taken.
pub const FLAG_TAKEN: u8 = 1 << 0;
/// Record flag bit 1: the branch is unconditional.
pub const FLAG_UNCONDITIONAL: u8 = 1 << 1;
/// Record flag bit 2: the op carries memory metadata.
pub const FLAG_HAS_MEM: u8 = 1 << 2;
/// Record flag bit 3: the op carries branch metadata.
pub const FLAG_HAS_BRANCH: u8 = 1 << 3;

/// Parsed `.smtt` header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceHeader {
    /// Format version of the file ([`FORMAT_VERSION`] once validated).
    pub version: u16,
    /// Benchmark name the trace was recorded from.
    pub benchmark: String,
    /// Whether the recorded workload counts as MLP-intensive (drives the
    /// mixed/ILP/MLP workload-group classification of `trace:` workloads).
    pub mlp_intensive: bool,
    /// Number of records in the file.
    pub op_count: u64,
    /// FNV-1a 64 digest over all record bytes, in file order.
    pub digest: u64,
}

impl TraceHeader {
    /// Serializes the header into its 64-byte on-disk form.
    ///
    /// Fails when the benchmark name exceeds [`MAX_NAME_LEN`] bytes.
    pub fn encode(&self) -> Result<[u8; HEADER_LEN], SimError> {
        let name = self.benchmark.as_bytes();
        if name.len() > MAX_NAME_LEN {
            return Err(SimError::invalid_config(format!(
                "trace benchmark name `{}` exceeds {MAX_NAME_LEN} bytes",
                self.benchmark
            )));
        }
        if name.contains(&0) {
            return Err(SimError::invalid_config(format!(
                "trace benchmark name `{}` contains a NUL byte",
                self.benchmark.escape_debug()
            )));
        }
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&self.version.to_le_bytes());
        out[10..12].copy_from_slice(&(RECORD_LEN as u16).to_le_bytes());
        let flags: u32 = if self.mlp_intensive { 1 } else { 0 };
        out[12..16].copy_from_slice(&flags.to_le_bytes());
        out[16..24].copy_from_slice(&self.op_count.to_le_bytes());
        out[24..32].copy_from_slice(&self.digest.to_le_bytes());
        out[32..32 + name.len()].copy_from_slice(name);
        Ok(out)
    }

    /// Parses and validates a 64-byte on-disk header.
    ///
    /// `context` names the file for error messages. Fails on a bad magic, an
    /// unsupported version, a record length other than [`RECORD_LEN`], or a
    /// benchmark-name field that is not NUL-padded UTF-8.
    pub fn decode(bytes: &[u8; HEADER_LEN], context: &str) -> Result<TraceHeader, SimError> {
        if bytes[0..8] != MAGIC {
            return Err(SimError::invalid_config(format!(
                "{context}: not a .smtt trace (bad magic)"
            )));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != FORMAT_VERSION {
            return Err(SimError::invalid_config(format!(
                "{context}: unsupported .smtt version {version} (this build reads \
                 version {FORMAT_VERSION})"
            )));
        }
        let record_len = u16::from_le_bytes([bytes[10], bytes[11]]);
        if record_len as usize != RECORD_LEN {
            return Err(SimError::invalid_config(format!(
                "{context}: unsupported record length {record_len} (expected {RECORD_LEN})"
            )));
        }
        let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice"));
        if flags > 1 {
            return Err(SimError::invalid_config(format!(
                "{context}: unknown header flag bits {flags:#x}"
            )));
        }
        let op_count = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
        let digest = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
        let name_field = &bytes[32..64];
        let name_len = name_field.iter().position(|&b| b == 0).unwrap_or(32);
        if name_field[name_len..].iter().any(|&b| b != 0) {
            return Err(SimError::invalid_config(format!(
                "{context}: benchmark name field is not NUL-padded"
            )));
        }
        let benchmark = std::str::from_utf8(&name_field[..name_len])
            .map_err(|_| {
                SimError::invalid_config(format!("{context}: benchmark name is not UTF-8"))
            })?
            .to_string();
        if benchmark.is_empty() {
            return Err(SimError::invalid_config(format!(
                "{context}: benchmark name is empty"
            )));
        }
        Ok(TraceHeader {
            version,
            benchmark,
            mlp_intensive: flags & 1 != 0,
            op_count,
            digest,
        })
    }
}

/// Serializes one [`TraceOp`] into its 24-byte on-disk record.
///
/// Fails when a producer distance does not fit the 16-bit field (the synthetic
/// generator clamps distances far below this; real traces must too) or when
/// the op is not [`TraceOp::is_well_formed`].
pub fn encode_record(op: &TraceOp, out: &mut [u8; RECORD_LEN]) -> Result<(), SimError> {
    if !op.is_well_formed() {
        return Err(SimError::invalid_config(format!(
            "cannot encode malformed trace op at pc {:#x}",
            op.pc
        )));
    }
    let mut flags = 0u8;
    let mut payload = 0u64;
    let mut mem_size = 0u8;
    if let Some(mem) = op.mem {
        flags |= FLAG_HAS_MEM;
        payload = mem.addr;
        mem_size = mem.size;
    }
    if let Some(branch) = op.branch {
        flags |= FLAG_HAS_BRANCH;
        payload = branch.target;
        if branch.taken {
            flags |= FLAG_TAKEN;
        }
        if branch.unconditional {
            flags |= FLAG_UNCONDITIONAL;
        }
    }
    let mut deps = [DEP_NONE; 2];
    for (slot, dep) in deps.iter_mut().zip(op.src_deps) {
        if let Some(distance) = dep {
            if distance >= DEP_NONE as u32 {
                return Err(SimError::invalid_config(format!(
                    "dependence distance {distance} at pc {:#x} exceeds the 16-bit \
                     record field",
                    op.pc
                )));
            }
            *slot = distance as u16;
        }
    }
    out[0..8].copy_from_slice(&op.pc.to_le_bytes());
    out[8..16].copy_from_slice(&payload.to_le_bytes());
    out[16..18].copy_from_slice(&deps[0].to_le_bytes());
    out[18..20].copy_from_slice(&deps[1].to_le_bytes());
    out[20] = kind_code(op.kind);
    out[21] = flags;
    out[22] = mem_size;
    out[23] = 0;
    Ok(())
}

/// Deserializes one 24-byte on-disk record.
///
/// The hot decode loop of [`crate::reader::FileTraceSource`] runs through this
/// function; it performs no heap allocation on the success path. Fails on an
/// unknown kind code, undefined flag bits, a non-zero reserved byte, or
/// metadata flags inconsistent with the kind.
#[inline]
pub fn decode_record(bytes: &[u8; RECORD_LEN]) -> Result<TraceOp, SimError> {
    let kind = match bytes[20] {
        0 => OpKind::IntAlu,
        1 => OpKind::IntMul,
        2 => OpKind::FpOp,
        3 => OpKind::FpLong,
        4 => OpKind::Load,
        5 => OpKind::Store,
        6 => OpKind::Branch,
        code => {
            return Err(SimError::invalid_config(format!(
                "corrupt .smtt record: unknown op kind code {code}"
            )))
        }
    };
    let flags = bytes[21];
    if flags & !(FLAG_TAKEN | FLAG_UNCONDITIONAL | FLAG_HAS_MEM | FLAG_HAS_BRANCH) != 0
        || bytes[23] != 0
        || (flags & FLAG_HAS_MEM != 0) != kind.is_mem()
        || (flags & FLAG_HAS_BRANCH != 0) != (kind == OpKind::Branch)
        || (flags & (FLAG_TAKEN | FLAG_UNCONDITIONAL) != 0 && flags & FLAG_HAS_BRANCH == 0)
    {
        return Err(SimError::invalid_config(format!(
            "corrupt .smtt record: inconsistent flags {flags:#04x} for kind code {}",
            bytes[20]
        )));
    }
    let pc = u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte slice"));
    let payload = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let dep0 = u16::from_le_bytes([bytes[16], bytes[17]]);
    let dep1 = u16::from_le_bytes([bytes[18], bytes[19]]);
    let mem = (flags & FLAG_HAS_MEM != 0).then_some(MemInfo {
        addr: payload,
        size: bytes[22],
    });
    let branch = (flags & FLAG_HAS_BRANCH != 0).then_some(BranchInfo {
        taken: flags & FLAG_TAKEN != 0,
        target: payload,
        unconditional: flags & FLAG_UNCONDITIONAL != 0,
    });
    Ok(TraceOp {
        pc,
        kind,
        src_deps: [decode_dep(dep0), decode_dep(dep1)],
        mem,
        branch,
    })
}

/// Deserializes one record without per-record error branches: the decode is
/// straight-line field extraction, and every validity condition
/// [`decode_record`] would reject is instead OR-folded into `violations`.
///
/// This is the bulk-decode hot path of [`crate::reader::FileTraceSource`]:
/// the caller decodes a whole buffered run, then checks `violations` once
/// per run — the same acceptance set as [`decode_record`], at a fraction of
/// the per-op cost. On a violation the returned op for that record is
/// garbage (a clamped kind); callers must not use the batch.
#[inline]
pub(crate) fn decode_record_trusted(bytes: &[u8; RECORD_LEN], violations: &mut u8) -> TraceOp {
    const KINDS: [OpKind; 8] = [
        OpKind::IntAlu,
        OpKind::IntMul,
        OpKind::FpOp,
        OpKind::FpLong,
        OpKind::Load,
        OpKind::Store,
        OpKind::Branch,
        OpKind::Branch,
    ];
    let pc = u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte slice"));
    let payload = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let dep0 = u16::from_le_bytes([bytes[16], bytes[17]]);
    let dep1 = u16::from_le_bytes([bytes[18], bytes[19]]);
    let code = bytes[20];
    let flags = bytes[21];
    let kind = KINDS[(code & 7) as usize];
    *violations |= u8::from(code >= 7)
        | u8::from(
            flags & !(FLAG_TAKEN | FLAG_UNCONDITIONAL | FLAG_HAS_MEM | FLAG_HAS_BRANCH) != 0,
        )
        | u8::from(bytes[23] != 0)
        | u8::from((flags & FLAG_HAS_MEM != 0) != kind.is_mem())
        | u8::from((flags & FLAG_HAS_BRANCH != 0) != (kind == OpKind::Branch))
        | u8::from(flags & (FLAG_TAKEN | FLAG_UNCONDITIONAL) != 0 && flags & FLAG_HAS_BRANCH == 0);
    TraceOp {
        pc,
        kind,
        src_deps: [decode_dep(dep0), decode_dep(dep1)],
        mem: (flags & FLAG_HAS_MEM != 0).then_some(MemInfo {
            addr: payload,
            size: bytes[22],
        }),
        branch: (flags & FLAG_HAS_BRANCH != 0).then_some(BranchInfo {
            taken: flags & FLAG_TAKEN != 0,
            target: payload,
            unconditional: flags & FLAG_UNCONDITIONAL != 0,
        }),
    }
}

/// A zero-copy view of one on-disk record: field accessors decode straight
/// from the borrowed 24 bytes without materializing a [`TraceOp`].
///
/// This is the bulk-ingestion interface for consumers that do not need the
/// engine's op struct (statistics, checksums, format tooling): iterating
/// records through [`crate::reader::FileTraceSource::for_each_record`] runs
/// at memory bandwidth, several times faster than full decode.
#[derive(Clone, Copy)]
pub struct RecordView<'a> {
    bytes: &'a [u8; RECORD_LEN],
}

impl<'a> RecordView<'a> {
    /// Wraps one record's bytes. No validation happens here; `decode` (or
    /// the accessors' callers) decide how much to trust the contents.
    pub fn new(bytes: &'a [u8; RECORD_LEN]) -> Self {
        RecordView { bytes }
    }

    /// The op's program counter (bytes 0..8).
    #[inline]
    pub fn pc(&self) -> u64 {
        u64::from_le_bytes(self.bytes[0..8].try_into().expect("8-byte slice"))
    }

    /// The payload word: memory address or branch target (bytes 8..16).
    #[inline]
    pub fn payload(&self) -> u64 {
        u64::from_le_bytes(self.bytes[8..16].try_into().expect("8-byte slice"))
    }

    /// Both 16-bit dependence distances as one little-endian word
    /// (bytes 16..20; `dep0` in the low half, [`DEP_NONE`] sentinels kept).
    #[inline]
    pub fn packed_deps(&self) -> u32 {
        u32::from_le_bytes(self.bytes[16..20].try_into().expect("4-byte slice"))
    }

    /// Kind code, flags, mem size and the reserved byte as one little-endian
    /// word (bytes 20..24).
    #[inline]
    pub fn packed_tail(&self) -> u32 {
        u32::from_le_bytes(self.bytes[20..24].try_into().expect("4-byte slice"))
    }

    /// The op-kind code (byte 20).
    #[inline]
    pub fn kind_code(&self) -> u8 {
        self.bytes[20]
    }

    /// The record flag byte (byte 21).
    #[inline]
    pub fn flags(&self) -> u8 {
        self.bytes[21]
    }

    /// The memory access size in bytes (byte 22).
    #[inline]
    pub fn mem_size(&self) -> u8 {
        self.bytes[22]
    }

    /// The raw record bytes.
    #[inline]
    pub fn raw(&self) -> &'a [u8; RECORD_LEN] {
        self.bytes
    }

    /// Fully decodes and validates the record.
    pub fn decode(&self) -> Result<TraceOp, SimError> {
        decode_record(self.bytes)
    }
}

#[inline]
fn decode_dep(raw: u16) -> Option<u32> {
    (raw != DEP_NONE).then_some(raw as u32)
}

/// The on-disk code of an op kind (byte 20 of its record).
pub fn kind_code(kind: OpKind) -> u8 {
    match kind {
        OpKind::IntAlu => 0,
        OpKind::IntMul => 1,
        OpKind::FpOp => 2,
        OpKind::FpLong => 3,
        OpKind::Load => 4,
        OpKind::Store => 5,
        OpKind::Branch => 6,
    }
}

/// Folds one buffer of record bytes into a running FNV-1a 64 digest.
///
/// Start from [`DIGEST_SEED`]; feeding every record byte in file order yields
/// the header's `digest` field.
#[inline]
pub fn digest_update(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= b as u64;
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::int_alu(0x1000).with_dep(3).with_dep(17),
            TraceOp::fp_op(0x1004).with_dep(1),
            TraceOp::load(0x1008, 0xdead_beef_0000).with_dep(2),
            TraceOp::store(0x100c, 0x4000_0000),
            TraceOp::branch(0x1010, true, 0x2000),
            TraceOp {
                pc: u64::MAX,
                kind: OpKind::Branch,
                src_deps: [None, Some(48)],
                mem: None,
                branch: Some(BranchInfo {
                    taken: false,
                    target: 0,
                    unconditional: true,
                }),
            },
            TraceOp {
                pc: 0,
                kind: OpKind::FpLong,
                src_deps: [None, None],
                mem: None,
                branch: None,
            },
        ]
    }

    #[test]
    fn record_round_trip_is_exact() {
        let mut buf = [0u8; RECORD_LEN];
        for op in sample_ops() {
            encode_record(&op, &mut buf).expect("encodes");
            assert_eq!(decode_record(&buf).expect("decodes"), op);
        }
    }

    /// The bulk trusted decoder accepts exactly the records `decode_record`
    /// accepts and produces identical ops for them. Exhaustive over the
    /// three bytes that drive validity (kind code, flags, reserved), with
    /// the wide fields held at representative values.
    #[test]
    fn trusted_decode_matches_checked_decode() {
        let mut buf = [0u8; RECORD_LEN];
        encode_record(&TraceOp::load(0x10, 0x20).with_dep(5), &mut buf).expect("encodes");
        for code in 0..=255u8 {
            for flags in 0..=255u8 {
                for reserved in [0u8, 1, 0x80] {
                    let mut record = buf;
                    record[20] = code;
                    record[21] = flags;
                    record[23] = reserved;
                    let mut violations = 0u8;
                    let trusted = decode_record_trusted(&record, &mut violations);
                    match decode_record(&record) {
                        Ok(op) => {
                            assert_eq!(violations, 0, "false positive on {record:?}");
                            assert_eq!(trusted, op, "value mismatch on {record:?}");
                        }
                        Err(_) => {
                            assert_ne!(violations, 0, "missed violation on {record:?}");
                        }
                    }
                }
            }
        }
        // RecordView's packed words cover the raw bytes exactly.
        let view = RecordView::new(&buf);
        assert_eq!(view.pc(), 0x10);
        assert_eq!(view.payload(), 0x20);
        assert_eq!(view.packed_deps().to_le_bytes(), buf[16..20]);
        assert_eq!(view.packed_tail().to_le_bytes(), buf[20..24]);
        assert_eq!(view.kind_code(), buf[20]);
        assert_eq!(view.flags(), buf[21]);
        assert_eq!(view.mem_size(), buf[22]);
        assert_eq!(
            view.decode().expect("valid record decodes"),
            decode_record(&buf).expect("valid record decodes"),
        );
    }

    #[test]
    fn header_round_trip_is_exact() {
        let header = TraceHeader {
            version: FORMAT_VERSION,
            benchmark: "mcf".to_string(),
            mlp_intensive: true,
            op_count: 123_456,
            digest: 0x0123_4567_89ab_cdef,
        };
        let bytes = header.encode().expect("encodes");
        assert_eq!(
            TraceHeader::decode(&bytes, "test").expect("decodes"),
            header
        );
    }

    #[test]
    fn header_rejects_bad_magic_version_and_names() {
        let header = TraceHeader {
            version: FORMAT_VERSION,
            benchmark: "mcf".to_string(),
            mlp_intensive: false,
            op_count: 1,
            digest: 0,
        };
        let good = header.encode().expect("encodes");

        let mut bad = good;
        bad[0] = b'X';
        assert!(TraceHeader::decode(&bad, "t").is_err(), "bad magic");

        let mut bad = good;
        bad[8] = FORMAT_VERSION as u8 + 1;
        let err = TraceHeader::decode(&bad, "t").expect_err("wrong version");
        assert!(err.to_string().contains("version"), "{err}");

        let mut bad = good;
        bad[10] = 16;
        assert!(TraceHeader::decode(&bad, "t").is_err(), "bad record length");

        let mut bad = good;
        bad[12] = 0xff;
        assert!(TraceHeader::decode(&bad, "t").is_err(), "unknown flags");

        let mut bad = good;
        bad[40] = b'x'; // non-contiguous NUL padding
        assert!(TraceHeader::decode(&bad, "t").is_err(), "bad padding");

        let long = TraceHeader {
            benchmark: "x".repeat(MAX_NAME_LEN + 1),
            ..header.clone()
        };
        assert!(long.encode().is_err(), "over-long name");
        let nul = TraceHeader {
            benchmark: "a\0b".to_string(),
            ..header
        };
        assert!(nul.encode().is_err(), "embedded NUL");
    }

    #[test]
    fn record_rejects_corruption() {
        let mut buf = [0u8; RECORD_LEN];
        encode_record(&TraceOp::load(0x10, 0x20), &mut buf).expect("encodes");

        let mut bad = buf;
        bad[20] = 7;
        assert!(decode_record(&bad).is_err(), "unknown kind");

        let mut bad = buf;
        bad[21] = 0xf0;
        assert!(decode_record(&bad).is_err(), "undefined flag bits");

        let mut bad = buf;
        bad[21] = 0; // load without has-mem
        assert!(decode_record(&bad).is_err(), "missing mem flag");

        let mut bad = buf;
        bad[23] = 1;
        assert!(decode_record(&bad).is_err(), "reserved byte");

        let mut branch = [0u8; RECORD_LEN];
        encode_record(&TraceOp::branch(0, true, 4), &mut branch).expect("encodes");
        let mut bad = branch;
        bad[21] = FLAG_TAKEN; // taken bit without has-branch
        assert!(decode_record(&bad).is_err(), "orphan branch bits");
    }

    #[test]
    fn oversized_dependence_is_a_typed_error() {
        let op = TraceOp::int_alu(0).with_dep(DEP_NONE as u32);
        let mut buf = [0u8; RECORD_LEN];
        let err = encode_record(&op, &mut buf).expect_err("distance overflows u16");
        assert!(matches!(err, SimError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = digest_update(DIGEST_SEED, &[1, 2, 3]);
        let b = digest_update(DIGEST_SEED, &[3, 2, 1]);
        assert_ne!(a, b);
        let chunked = digest_update(digest_update(DIGEST_SEED, &[1, 2]), &[3]);
        assert_eq!(a, chunked, "chunking must not change the digest");
    }
}
