//! Recording [`TraceSource`] streams into `.smtt` files.
//!
//! [`TraceWriter`] is the low-level incremental encoder: open, append ops,
//! finish (which patches the header with the final op count and digest).
//! [`record_source`] is the converter on top: it drains any existing
//! [`TraceSource`] — synthetic generators included — through the batched
//! [`TraceSource::refill`] API and writes the stream out verbatim, so a
//! replayed file reproduces the source's op stream bit for bit.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use smt_types::{SimError, TraceOp};

use crate::format::{
    digest_update, encode_record, TraceHeader, DIGEST_SEED, FORMAT_VERSION, RECORD_LEN,
};
use crate::TraceSource;

/// Ops pulled per [`TraceSource::refill`] batch while recording.
const RECORD_BATCH: usize = 4096;

/// Outcome of a finished recording.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceSummary {
    /// Records written.
    pub op_count: u64,
    /// FNV-1a 64 digest over all record bytes (as stored in the header).
    pub digest: u64,
    /// Total file size in bytes, header included.
    pub bytes: u64,
}

/// Incremental `.smtt` encoder.
///
/// # Example
///
/// ```no_run
/// use smt_trace::writer::TraceWriter;
/// use smt_types::TraceOp;
///
/// let mut writer = TraceWriter::create("mcf.smtt", "mcf", true).unwrap();
/// writer.write_op(&TraceOp::int_alu(0x1000)).unwrap();
/// let summary = writer.finish().unwrap();
/// assert_eq!(summary.op_count, 1);
/// ```
pub struct TraceWriter {
    out: BufWriter<File>,
    benchmark: String,
    mlp_intensive: bool,
    op_count: u64,
    digest: u64,
    scratch: [u8; RECORD_LEN],
}

impl TraceWriter {
    /// Creates (or truncates) `path` and writes a placeholder header.
    ///
    /// `benchmark` is the workload name replay will report (at most
    /// [`crate::format::MAX_NAME_LEN`] bytes); `mlp_intensive` records the
    /// workload-group classification bit.
    pub fn create(
        path: impl AsRef<Path>,
        benchmark: &str,
        mlp_intensive: bool,
    ) -> Result<TraceWriter, SimError> {
        let path = path.as_ref();
        // Validate the name before touching the filesystem.
        let header = TraceHeader {
            version: FORMAT_VERSION,
            benchmark: benchmark.to_string(),
            mlp_intensive,
            op_count: 0,
            digest: DIGEST_SEED,
        };
        let placeholder = header.encode()?;
        let file = File::create(path).map_err(|e| {
            SimError::invalid_config(format!("cannot create trace file {}: {e}", path.display()))
        })?;
        let mut out = BufWriter::new(file);
        out.write_all(&placeholder)
            .map_err(|e| write_error(path.display(), &e))?;
        Ok(TraceWriter {
            out,
            benchmark: benchmark.to_string(),
            mlp_intensive,
            op_count: 0,
            digest: DIGEST_SEED,
            scratch: [0u8; RECORD_LEN],
        })
    }

    /// Appends one op to the trace.
    pub fn write_op(&mut self, op: &TraceOp) -> Result<(), SimError> {
        encode_record(op, &mut self.scratch)?;
        self.digest = digest_update(self.digest, &self.scratch);
        self.out
            .write_all(&self.scratch)
            .map_err(|e| SimError::internal(format!("trace write failed: {e}")))?;
        self.op_count += 1;
        Ok(())
    }

    /// Flushes buffered records and patches the header with the final op
    /// count and digest. The file is not a valid trace until this runs.
    pub fn finish(mut self) -> Result<TraceSummary, SimError> {
        let header = TraceHeader {
            version: FORMAT_VERSION,
            benchmark: self.benchmark.clone(),
            mlp_intensive: self.mlp_intensive,
            op_count: self.op_count,
            digest: self.digest,
        };
        let bytes = header.encode()?;
        self.out
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.out.write_all(&bytes))
            .and_then(|_| self.out.flush())
            .map_err(|e| SimError::internal(format!("trace finalize failed: {e}")))?;
        Ok(TraceSummary {
            op_count: self.op_count,
            digest: self.digest,
            bytes: crate::format::HEADER_LEN as u64 + self.op_count * RECORD_LEN as u64,
        })
    }
}

fn write_error(path: impl std::fmt::Display, e: &std::io::Error) -> SimError {
    SimError::internal(format!("cannot write trace file {path}: {e}"))
}

/// Records the next `ops` instructions of `source` into a `.smtt` file at
/// `path`, pulling through the batched [`TraceSource::refill`] API.
///
/// The file's benchmark name is taken from [`TraceSource::name`];
/// `mlp_intensive` is stored in the header flags. Replaying the file with
/// [`crate::reader::FileTraceSource`] reproduces exactly the ops recorded
/// here, in order.
pub fn record_source<S: TraceSource + ?Sized>(
    source: &mut S,
    ops: u64,
    path: impl AsRef<Path>,
    mlp_intensive: bool,
) -> Result<TraceSummary, SimError> {
    let mut writer = TraceWriter::create(path, source.name(), mlp_intensive)?;
    let mut batch: Vec<TraceOp> = Vec::with_capacity(RECORD_BATCH);
    let mut remaining = ops;
    while remaining > 0 {
        let n = remaining.min(RECORD_BATCH as u64) as usize;
        batch.clear();
        source.refill(&mut batch, n);
        for op in &batch {
            writer.write_op(op)?;
        }
        remaining -= n as u64;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::HEADER_LEN;
    use crate::ScriptedTrace;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smtt-writer-{tag}-{}.smtt", std::process::id()));
        p
    }

    #[test]
    fn records_exactly_the_requested_op_count() {
        let path = temp_path("count");
        let ops: Vec<TraceOp> = (0..10).map(|i| TraceOp::int_alu(0x100 + 4 * i)).collect();
        let mut source = ScriptedTrace::looping("count", ops);
        let summary = record_source(&mut source, 25, &path, false).expect("records");
        assert_eq!(summary.op_count, 25);
        assert_eq!(
            summary.bytes,
            (HEADER_LEN + 25 * RECORD_LEN) as u64,
            "fixed-width records"
        );
        assert_eq!(
            std::fs::metadata(&path).expect("file exists").len(),
            summary.bytes
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_rejects_over_long_names() {
        let path = temp_path("longname");
        let name = "x".repeat(64);
        assert!(TraceWriter::create(&path, &name, false).is_err());
        assert!(!path.exists(), "no file is left behind on a rejected name");
    }
}
