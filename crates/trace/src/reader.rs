//! Streaming `.smtt` replay: [`FileTraceSource`].
//!
//! The reader keeps one large reusable byte buffer and decodes records out of
//! it in a monomorphic tight loop (the same shape as the synthetic
//! generator's `gen_op`): construction performs all allocation, and the
//! steady-state [`TraceSource::refill`] path allocates nothing — enforced
//! lexically by the `hot-path-alloc` analyzer rule, whose scope includes this
//! file, and dynamically by the counting-allocator test in `smt-core`.
//!
//! A trace source is an infinite stream; the reader loops the file cyclically
//! (op `i` of the file serves absolute positions `i`, `i + op_count`, …).
//! Because records are fixed width, [`TraceSource::skip`] is O(1): cursor
//! arithmetic plus one lazy seek, no matter how many ops are skipped — sampled
//! runs fast-forward through trace prefixes for free.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use smt_types::{SimError, TraceOp};

use crate::format::{
    decode_record, decode_record_trusted, digest_update, RecordView, TraceHeader, DIGEST_SEED,
    HEADER_LEN, RECORD_LEN,
};
use crate::{TraceSource, TraceSourceState};

/// Records held by the reusable read buffer (×[`RECORD_LEN`] bytes ≈ 384 KiB).
const CHUNK_RECORDS: u64 = 16 * 1024;

/// Replays a `.smtt` trace file as an infinite, deterministic op stream.
///
/// # Example
///
/// ```no_run
/// use smt_trace::{FileTraceSource, TraceSource};
///
/// let mut source = FileTraceSource::open("mcf.smtt").unwrap();
/// let op = source.next_op();
/// assert!(op.is_well_formed());
/// ```
pub struct FileTraceSource {
    file: File,
    benchmark: String,
    op_count: u64,
    /// Header digest over the record area (checked on resident loads).
    digest: u64,
    /// Index of the next record to decode, always `< op_count`.
    file_pos: u64,
    /// Total ops handed out since construction (absolute stream position).
    consumed: u64,
    /// Reusable record-aligned read buffer; never grows after construction.
    /// In resident mode it holds the entire record area instead.
    buf: Box<[u8]>,
    buf_len: usize,
    buf_pos: usize,
    /// The OS file cursor no longer matches `file_pos` (after a wrap, a skip
    /// or a restore); the next fill seeks first. Irrelevant in resident mode.
    needs_seek: bool,
    /// The whole record area lives in `buf`; fills are cursor resets, the
    /// file is never touched again after the one load at open.
    resident: bool,
}

impl FileTraceSource {
    /// Opens a trace file, validating its header and length.
    ///
    /// Fails with a typed [`SimError`] on a missing file, a malformed or
    /// wrong-version header, an empty trace, or a file whose length does not
    /// match `op_count` fixed-width records (truncation or trailing bytes).
    /// Record *contents* are validated lazily as they stream through decode;
    /// use [`crate::inspect::scan_file`] for an eager full-file check.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SimError> {
        let path = path.as_ref();
        let context = path.display().to_string();
        let mut file = File::open(path)
            .map_err(|e| SimError::invalid_config(format!("cannot open trace {context}: {e}")))?;
        let mut header_bytes = [0u8; HEADER_LEN];
        file.read_exact(&mut header_bytes).map_err(|_| {
            SimError::invalid_config(format!(
                "{context}: file is shorter than the {HEADER_LEN}-byte .smtt header"
            ))
        })?;
        let header = TraceHeader::decode(&header_bytes, &context)?;
        if header.op_count == 0 {
            return Err(SimError::invalid_config(format!(
                "{context}: trace holds no ops (a trace source must be an infinite stream)"
            )));
        }
        let expected = HEADER_LEN as u64 + header.op_count * RECORD_LEN as u64;
        let actual = file
            .metadata()
            .map_err(|e| SimError::invalid_config(format!("cannot stat trace {context}: {e}")))?
            .len();
        if actual != expected {
            return Err(SimError::invalid_config(format!(
                "{context}: truncated or oversized trace: header promises {} records \
                 ({expected} bytes) but the file is {actual} bytes",
                header.op_count
            )));
        }
        let chunk = CHUNK_RECORDS.min(header.op_count) as usize * RECORD_LEN;
        Ok(FileTraceSource {
            file,
            benchmark: header.benchmark,
            op_count: header.op_count,
            digest: header.digest,
            file_pos: 0,
            consumed: 0,
            buf: vec![0u8; chunk].into_boxed_slice(),
            buf_len: 0,
            buf_pos: 0,
            needs_seek: false,
            resident: false,
        })
    }

    /// Opens a trace file and loads its whole record area into memory,
    /// verifying the header digest over the loaded bytes.
    ///
    /// Replay then never touches the file again: buffer refills become
    /// cursor resets, so cyclic wraps, `skip` and state restores cost no
    /// seeks or reads, and [`Self::for_each_record`] iterates the records at
    /// memory bandwidth. Costs `op_count × 24` bytes of memory up front —
    /// use [`Self::open`] to stream traces too large to hold resident.
    pub fn open_resident(path: impl AsRef<Path>) -> Result<Self, SimError> {
        let path = path.as_ref();
        let mut source = Self::open(path)?;
        let len = source.op_count as usize * RECORD_LEN;
        let mut records = vec![0u8; len].into_boxed_slice();
        source.file.read_exact(&mut records).map_err(|e| {
            SimError::invalid_config(format!(
                "{}: cannot load trace records into memory: {e}",
                path.display()
            ))
        })?;
        if digest_update(DIGEST_SEED, &records) != source.digest {
            return Err(SimError::invalid_config(format!(
                "{}: record digest mismatch (corrupt or tampered trace)",
                path.display()
            )));
        }
        source.buf = records;
        source.resident = true;
        Ok(source)
    }

    /// Streams `n` records to `f` as zero-copy [`RecordView`]s, in order,
    /// wrapping cyclically like every other consumption path.
    ///
    /// No [`TraceOp`] is materialized and no per-record validation runs —
    /// the views read straight out of the buffered file bytes, so bulk
    /// consumers (statistics, checksums, format tooling) run at memory
    /// bandwidth. Combine with [`Self::open_resident`] to also skip file
    /// I/O in steady state. Advances the stream exactly like `refill`.
    pub fn for_each_record(&mut self, n: u64, mut f: impl FnMut(RecordView<'_>)) {
        let mut left = n;
        while left > 0 {
            if self.buf_pos == self.buf_len {
                self.fill_buf();
            }
            // A fill never reads past the end of the file, so the span below
            // never spans the cyclic wrap: `file_pos + take <= op_count`.
            let avail = ((self.buf_len - self.buf_pos) / RECORD_LEN) as u64;
            let take = avail.min(left) as usize;
            let span = &self.buf[self.buf_pos..self.buf_pos + take * RECORD_LEN];
            for record in span.chunks_exact(RECORD_LEN) {
                f(RecordView::new(
                    record.try_into().expect("buffer fills are record-aligned"),
                ));
            }
            self.buf_pos += take * RECORD_LEN;
            self.file_pos += take as u64;
            self.consumed += take as u64;
            left -= take as u64;
            if self.file_pos == self.op_count {
                // End of file: wrap the infinite stream back to op 0.
                self.file_pos = 0;
                self.needs_seek = true;
            }
        }
    }

    /// Total ops handed out so far (the absolute stream position).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Records in the underlying file (one cycle of the infinite stream).
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// Refills the byte buffer from the file. The caller guarantees
    /// `file_pos < op_count`; the fill never reads past the end of the file,
    /// so a buffer never spans the cyclic wrap point.
    #[cold]
    fn fill_buf(&mut self) {
        if self.resident {
            // The whole record area is already in `buf`; a "fill" just parks
            // the cursor on the current record. After a wrap that is a reset
            // to the front; after a skip or restore it lands mid-buffer.
            self.buf_pos = self.file_pos as usize * RECORD_LEN;
            self.buf_len = self.buf.len();
            self.needs_seek = false;
            return;
        }
        if self.needs_seek {
            let byte = HEADER_LEN as u64 + self.file_pos * RECORD_LEN as u64;
            if let Err(e) = self.file.seek(SeekFrom::Start(byte)) {
                panic!("seek failed on .smtt trace `{}`: {e}", self.benchmark);
            }
            self.needs_seek = false;
        }
        let records = CHUNK_RECORDS.min(self.op_count - self.file_pos) as usize;
        let len = records * RECORD_LEN;
        if let Err(e) = self.file.read_exact(&mut self.buf[..len]) {
            panic!(
                "read failed on .smtt trace `{}` (file changed after open?): {e}",
                self.benchmark
            );
        }
        self.buf_len = len;
        self.buf_pos = 0;
    }

    /// Decodes the next record: the monomorphic hot path behind both
    /// [`TraceSource::next_op`] and [`TraceSource::refill`].
    #[inline]
    fn decode_next(&mut self) -> TraceOp {
        if self.buf_pos == self.buf_len {
            self.fill_buf();
        }
        let record: &[u8; RECORD_LEN] = self.buf[self.buf_pos..self.buf_pos + RECORD_LEN]
            .try_into()
            .expect("buffer fills are record-aligned");
        self.buf_pos += RECORD_LEN;
        self.file_pos += 1;
        self.consumed += 1;
        if self.file_pos == self.op_count {
            // End of file: wrap the infinite stream back to op 0.
            self.file_pos = 0;
            self.needs_seek = true;
        }
        match decode_record(record) {
            Ok(op) => op,
            Err(_) => panic!("corrupt .smtt record (file changed after open?)"),
        }
    }
}

impl TraceSource for FileTraceSource {
    fn next_op(&mut self) -> TraceOp {
        self.decode_next()
    }

    fn refill(&mut self, buf: &mut Vec<TraceOp>, n: usize) {
        // Bulk decode: take the longest contiguous buffered span each pass
        // and run the branch-light trusted decoder over it, folding every
        // validity condition into one accumulator checked per span. Same
        // acceptance set as `decode_record`, far fewer per-op branches.
        buf.reserve(n);
        let mut left = n as u64;
        while left > 0 {
            if self.buf_pos == self.buf_len {
                self.fill_buf();
            }
            let avail = ((self.buf_len - self.buf_pos) / RECORD_LEN) as u64;
            let take = avail.min(left) as usize;
            let span = &self.buf[self.buf_pos..self.buf_pos + take * RECORD_LEN];
            let mut violations = 0u8;
            for record in span.chunks_exact(RECORD_LEN) {
                let record: &[u8; RECORD_LEN] =
                    record.try_into().expect("buffer fills are record-aligned");
                buf.push(decode_record_trusted(record, &mut violations));
            }
            if violations != 0 {
                panic!("corrupt .smtt record (file changed after open?)");
            }
            self.buf_pos += take * RECORD_LEN;
            self.file_pos += take as u64;
            self.consumed += take as u64;
            left -= take as u64;
            if self.file_pos == self.op_count {
                // End of file: wrap the infinite stream back to op 0.
                self.file_pos = 0;
                self.needs_seek = true;
            }
        }
    }

    fn skip(&mut self, n: u64) {
        // Fixed-width records make skipping pure cursor arithmetic: advance
        // the absolute and in-file positions, drop the buffered bytes, and
        // let the next fill seek. O(1) regardless of `n`.
        if n == 0 {
            return;
        }
        self.consumed += n;
        self.file_pos = (self.file_pos + n) % self.op_count;
        self.buf_len = 0;
        self.buf_pos = 0;
        self.needs_seek = true;
    }

    fn name(&self) -> &str {
        &self.benchmark
    }

    fn save_state(&self) -> Option<TraceSourceState> {
        // Reuse the shared cursor record: `seq` is the absolute stream
        // position; the generator-specific fields stay at their zero values.
        Some(TraceSourceState {
            name: self.benchmark.clone(),
            rng_state: [0; 4],
            seq: self.consumed,
            gap_to_next_burst: 0,
            burst_remaining: 0,
            burst_gap: 0,
            next_miss_in: 0,
            burst_strided: false,
            burst_position: 0,
            stride_cursors: Vec::new(),
            hot_cursor: 0,
            alu_pc_cursor: 0,
            branch_cursor: 0,
            branch_bias: Vec::new(),
            emitted_long_latency: 0,
        })
    }

    fn restore_state(&mut self, state: &TraceSourceState) -> Result<(), String> {
        if state.name != self.benchmark {
            return Err(format!(
                "trace state belongs to `{}`, not `{}`",
                state.name, self.benchmark
            ));
        }
        self.consumed = state.seq;
        self.file_pos = state.seq % self.op_count;
        self.buf_len = 0;
        self.buf_pos = 0;
        self.needs_seek = true;
        Ok(())
    }
}
