//! A scripted trace source: replays a fixed vector of operations.
//!
//! Used by unit and integration tests that need full control over the instruction
//! stream (for example, "two independent long-latency loads exactly 10
//! instructions apart"). When the script is exhausted it keeps emitting
//! single-cycle ALU filler so that a simulation can always run to its instruction
//! budget.

use smt_types::TraceOp;

use crate::TraceSource;

/// A trace source that replays a pre-built instruction sequence.
///
/// # Example
///
/// ```
/// use smt_trace::{ScriptedTrace, TraceSource};
/// use smt_types::TraceOp;
///
/// let mut t = ScriptedTrace::new("demo", vec![TraceOp::load(0x40, 0x1000)]);
/// assert_eq!(t.next_op().pc, 0x40);
/// // After the script ends, filler ALU operations follow.
/// assert!(!t.next_op().kind.is_mem());
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedTrace {
    name: String,
    ops: Vec<TraceOp>,
    cursor: usize,
    filler_pc: u64,
}

impl ScriptedTrace {
    /// Creates a scripted source named `name` replaying `ops`.
    pub fn new(name: impl Into<String>, ops: Vec<TraceOp>) -> Self {
        ScriptedTrace {
            name: name.into(),
            ops,
            cursor: 0,
            filler_pc: 0x7000_0000,
        }
    }

    /// Creates a source that repeats `ops` in a loop forever instead of falling
    /// back to ALU filler.
    pub fn looping(name: impl Into<String>, ops: Vec<TraceOp>) -> LoopingTrace {
        LoopingTrace {
            name: name.into(),
            ops,
            cursor: 0,
        }
    }

    /// Number of scripted (non-filler) operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for ScriptedTrace {
    fn next_op(&mut self) -> TraceOp {
        if self.cursor < self.ops.len() {
            let op = self.ops[self.cursor];
            self.cursor += 1;
            op
        } else {
            self.filler_pc += 4;
            TraceOp::int_alu(self.filler_pc)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A trace source that repeats a fixed sequence of operations forever.
#[derive(Clone, Debug)]
pub struct LoopingTrace {
    name: String,
    ops: Vec<TraceOp>,
    cursor: usize,
}

impl TraceSource for LoopingTrace {
    fn next_op(&mut self) -> TraceOp {
        if self.ops.is_empty() {
            return TraceOp::int_alu(0x7100_0000);
        }
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_types::OpKind;

    #[test]
    fn replays_then_fills() {
        let mut t = ScriptedTrace::new(
            "t",
            vec![TraceOp::load(0x10, 0x100), TraceOp::store(0x14, 0x200)],
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.next_op().kind, OpKind::Load);
        assert_eq!(t.next_op().kind, OpKind::Store);
        for _ in 0..10 {
            assert_eq!(t.next_op().kind, OpKind::IntAlu);
        }
    }

    #[test]
    fn looping_trace_repeats() {
        let mut t = ScriptedTrace::looping(
            "loop",
            vec![TraceOp::int_alu(0x4), TraceOp::branch(0x8, true, 0x4)],
        );
        let first: Vec<_> = (0..4).map(|_| t.next_op().pc).collect();
        assert_eq!(first, vec![0x4, 0x8, 0x4, 0x8]);
        assert_eq!(t.name(), "loop");
    }

    #[test]
    fn empty_looping_trace_emits_filler() {
        let mut t = ScriptedTrace::looping("empty", vec![]);
        assert_eq!(t.next_op().kind, OpKind::IntAlu);
    }
}
