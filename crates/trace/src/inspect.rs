//! Offline `.smtt` inspection: header peeks, full-file verification and
//! op-mix summaries.
//!
//! These helpers back workload validation (`trace:` scheme resolution needs
//! the header's benchmark name and MLP flag without streaming the file) and
//! the `smt-cli trace inspect` / `trace stats` subcommands. Unlike
//! [`crate::reader::FileTraceSource`] they are not hot-path code: they run
//! once per file, not once per op.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use smt_types::{OpKind, SimError};

use crate::format::{
    decode_record, digest_update, TraceHeader, DIGEST_SEED, HEADER_LEN, RECORD_LEN,
};

/// Reads and validates only the 64-byte header of a trace file.
///
/// This is the cheap existence-plus-metadata probe the `trace:` workload
/// scheme uses: it answers "is this a readable `.smtt` file, what benchmark
/// does it replay, and is that workload MLP-intensive" without touching the
/// record payload.
pub fn peek_header(path: impl AsRef<Path>) -> Result<TraceHeader, SimError> {
    let path = path.as_ref();
    let context = path.display().to_string();
    let mut file = File::open(path)
        .map_err(|e| SimError::invalid_config(format!("cannot open trace {context}: {e}")))?;
    let mut bytes = [0u8; HEADER_LEN];
    file.read_exact(&mut bytes).map_err(|_| {
        SimError::invalid_config(format!(
            "{context}: file is shorter than the {HEADER_LEN}-byte .smtt header"
        ))
    })?;
    TraceHeader::decode(&bytes, &context)
}

/// Full-file scan result: the validated header plus an op-mix summary.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceScan {
    /// The validated header.
    pub header: TraceHeader,
    /// Record counts per [`OpKind`], indexed IntAlu, IntMul, FpOp, FpLong,
    /// Load, Store, Branch.
    pub kind_counts: [u64; 7],
    /// Taken branches among the branch records.
    pub taken_branches: u64,
    /// Records carrying at least one producer-distance dependence.
    pub ops_with_deps: u64,
}

impl TraceScan {
    /// Total records scanned.
    pub fn total_ops(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    /// Count of one kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.kind_counts[kind_index(kind)]
    }
}

fn kind_index(kind: OpKind) -> usize {
    match kind {
        OpKind::IntAlu => 0,
        OpKind::IntMul => 1,
        OpKind::FpOp => 2,
        OpKind::FpLong => 3,
        OpKind::Load => 4,
        OpKind::Store => 5,
        OpKind::Branch => 6,
    }
}

/// Streams the whole file, validating every record and the header digest.
///
/// Fails with a typed [`SimError`] on any header problem, a length mismatch
/// (truncation or trailing bytes), a record that does not decode, or a digest
/// mismatch. On success the trace is bit-for-bit the stream its recorder
/// finalized.
pub fn scan_file(path: impl AsRef<Path>) -> Result<TraceScan, SimError> {
    let path = path.as_ref();
    let context = path.display().to_string();
    let header = peek_header(path)?;
    let mut file = File::open(path)
        .map_err(|e| SimError::invalid_config(format!("cannot open trace {context}: {e}")))?;
    let mut skip = [0u8; HEADER_LEN];
    file.read_exact(&mut skip)
        .map_err(|e| SimError::invalid_config(format!("{context}: cannot re-read header: {e}")))?;

    let expected = header.op_count * RECORD_LEN as u64;
    let mut digest = DIGEST_SEED;
    let mut scan = TraceScan {
        header: header.clone(),
        kind_counts: [0; 7],
        taken_branches: 0,
        ops_with_deps: 0,
    };
    let mut chunk = vec![0u8; 4096 * RECORD_LEN];
    let mut remaining = expected;
    let mut index = 0u64;
    while remaining > 0 {
        let len = remaining.min(chunk.len() as u64) as usize;
        file.read_exact(&mut chunk[..len]).map_err(|_| {
            SimError::invalid_config(format!(
                "{context}: truncated trace: header promises {} records but the \
                 record section ends early",
                header.op_count
            ))
        })?;
        digest = digest_update(digest, &chunk[..len]);
        for record in chunk[..len].chunks_exact(RECORD_LEN) {
            let record: &[u8; RECORD_LEN] = record.try_into().expect("chunks are record-sized");
            let op = decode_record(record)
                .map_err(|e| SimError::invalid_config(format!("{context}: record {index}: {e}")))?;
            scan.kind_counts[kind_index(op.kind)] += 1;
            if op.branch.is_some_and(|b| b.taken) {
                scan.taken_branches += 1;
            }
            if op.src_deps.iter().any(|d| d.is_some()) {
                scan.ops_with_deps += 1;
            }
            index += 1;
        }
        remaining -= len as u64;
    }
    let mut trailer = [0u8; 1];
    if file.read(&mut trailer).unwrap_or(0) != 0 {
        return Err(SimError::invalid_config(format!(
            "{context}: trailing bytes after the last record"
        )));
    }
    if digest != header.digest {
        return Err(SimError::invalid_config(format!(
            "{context}: digest mismatch: header says {:#018x}, records hash to {digest:#018x}",
            header.digest
        )));
    }
    Ok(scan)
}
