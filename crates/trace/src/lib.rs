//! Synthetic SPEC CPU2000 workload models and trace generation.
//!
//! The paper evaluates on SPEC CPU2000 binaries compiled for Alpha and simulated
//! with SMTSIM over SimPoint regions. Neither the binaries, the inputs, nor an
//! Alpha functional front end can be redistributed, so this crate substitutes a
//! *parametric workload model* per benchmark (see `DESIGN.md` §4):
//!
//! * [`profile::BenchmarkProfile`] captures the characteristics that matter to an
//!   SMT fetch policy study — long-latency-load rate, MLP burst size and span,
//!   prefetch friendliness, instruction mix, branch behaviour and ILP;
//! * [`spec`] instantiates one profile per SPEC CPU2000 benchmark, calibrated to
//!   Table I of the paper;
//! * [`generator::SyntheticTraceGenerator`] turns a profile into a deterministic
//!   instruction stream ([`TraceSource`]) whose loads really hit or miss in the
//!   simulated cache hierarchy with the intended pattern.
//!
//! # Example
//!
//! ```
//! use smt_trace::{spec, SyntheticTraceGenerator, TraceSource};
//!
//! let profile = spec::benchmark("mcf").expect("mcf is a SPEC CPU2000 benchmark");
//! let mut gen = SyntheticTraceGenerator::new(profile.clone(), 42);
//! let op = gen.next_op();
//! assert!(op.is_well_formed());
//! assert_eq!(gen.name(), "mcf");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod format;
pub mod generator;
pub mod inspect;
pub mod profile;
pub mod reader;
pub mod scripted;
pub mod spec;
pub mod writer;

pub use format::TraceHeader;
pub use generator::SyntheticTraceGenerator;
pub use profile::{BenchmarkProfile, WorkloadClass};
pub use reader::FileTraceSource;
pub use scripted::ScriptedTrace;
pub use writer::{record_source, TraceWriter};

use smt_types::TraceOp;

/// The workload-name prefix marking an on-disk `.smtt` trace benchmark
/// (`trace:<path>`), usable anywhere a synthetic benchmark name is.
pub const TRACE_SCHEME: &str = "trace:";

/// Splits a `trace:<path>` workload name into its file path, or `None` for
/// ordinary (synthetic) benchmark names.
///
/// # Example
///
/// ```
/// assert_eq!(smt_trace::trace_path("trace:traces/mcf.smtt"), Some("traces/mcf.smtt"));
/// assert_eq!(smt_trace::trace_path("mcf"), None);
/// ```
pub fn trace_path(benchmark: &str) -> Option<&str> {
    benchmark.strip_prefix(TRACE_SCHEME)
}

/// A source of dynamic instructions for one hardware thread.
///
/// The pipeline pulls instructions one at a time; the source must be
/// deterministic for a given construction seed so that single-threaded and
/// multi-threaded runs of the same benchmark see the same instruction stream
/// (required for the STP/ANTT normalization).
///
/// Sources must be [`Send`]: on a chip, whole cores (and the trace sources
/// they own) are stepped by worker threads under the staged discipline.
pub trait TraceSource: Send {
    /// Produces the next dynamic instruction.
    fn next_op(&mut self) -> TraceOp;

    /// Appends the next `n` dynamic instructions to `buf`, in stream order —
    /// exactly the ops `n` successive [`TraceSource::next_op`] calls would
    /// return.
    ///
    /// Callers that hold the source behind `Box<dyn TraceSource>` (the
    /// pipeline's fetch stage) pull a whole batch per virtual call instead of
    /// paying the dynamic dispatch once per instruction. The default
    /// implementation delegates to `next_op`, so existing sources stay
    /// correct; hot sources (e.g. [`SyntheticTraceGenerator`]) override it
    /// with a native batched loop.
    fn refill(&mut self, buf: &mut Vec<TraceOp>, n: usize) {
        buf.reserve(n);
        for _ in 0..n {
            buf.push(self.next_op());
        }
    }

    /// Discards the next `n` dynamic instructions, as if `n` successive
    /// [`TraceSource::next_op`] calls ran and their results were dropped.
    ///
    /// The default implementation does exactly that — generative sources must
    /// actually produce each op to advance their internal state. Sources with
    /// random-access backing storage ([`FileTraceSource`]) override it with an
    /// O(1) seek, which is what makes the skip phase of sampled simulation
    /// free for trace-backed workloads.
    fn skip(&mut self, n: u64) {
        for _ in 0..n {
            let _ = self.next_op();
        }
    }

    /// Short name of the workload (benchmark name).
    fn name(&self) -> &str;

    /// Captures the source's mutable position as a serializable state record,
    /// or `None` when the source cannot be checkpointed (e.g. scripted test
    /// traces). Restoring the state into a freshly constructed source of the
    /// same benchmark and seed must reproduce the remaining stream exactly.
    fn save_state(&self) -> Option<TraceSourceState> {
        None
    }

    /// Restores a state previously captured with [`TraceSource::save_state`].
    /// Fails when the source does not support checkpointing or the state
    /// belongs to a different workload.
    fn restore_state(&mut self, _state: &TraceSourceState) -> Result<(), String> {
        Err("this trace source does not support checkpointing".to_string())
    }
}

/// Serializable position of a checkpointable [`TraceSource`].
///
/// The fields mirror the mutable cursor state of
/// [`SyntheticTraceGenerator`]; the immutable profile is *not* captured — a
/// restore target is constructed from the same benchmark name and seed first,
/// then repositioned with this record.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TraceSourceState {
    /// Benchmark name, checked against the restore target.
    pub name: String,
    /// Raw RNG state.
    pub rng_state: [u64; 4],
    /// Dynamic instructions generated so far.
    pub seq: u64,
    /// Instructions remaining until the next miss burst begins.
    pub gap_to_next_burst: u64,
    /// Long-latency loads still to be emitted in the current burst.
    pub burst_remaining: u32,
    /// Instructions between consecutive long-latency loads of the burst.
    pub burst_gap: u32,
    /// Countdown to the next long-latency load within the burst.
    pub next_miss_in: u32,
    /// Whether the current burst walks strided (prefetchable) streams.
    pub burst_strided: bool,
    /// Position within the current burst.
    pub burst_position: u64,
    /// Per-stream next-line cursors of the strided miss region.
    pub stride_cursors: Vec<u64>,
    /// Rotating cursor for hot loads/stores.
    pub hot_cursor: u64,
    /// Rotating cursor for ALU PCs.
    pub alu_pc_cursor: u64,
    /// Rotating cursor over the static branch pool.
    pub branch_cursor: u64,
    /// Fixed per-static-branch direction biases.
    pub branch_bias: Vec<bool>,
    /// Long-latency loads emitted so far.
    pub emitted_long_latency: u64,
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }

    fn refill(&mut self, buf: &mut Vec<TraceOp>, n: usize) {
        (**self).refill(buf, n)
    }

    fn skip(&mut self, n: u64) {
        (**self).skip(n)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn save_state(&self) -> Option<TraceSourceState> {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &TraceSourceState) -> Result<(), String> {
        (**self).restore_state(state)
    }
}
