//! Trace-level instruction representation.
//!
//! The simulator is trace driven: a workload is a stream of [`TraceOp`] records
//! produced by `smt_trace`. Each record carries everything the timing model needs
//! — operation class, memory effective address, branch outcome, and register
//! dependences expressed as *producer distances* (how many dynamic instructions
//! back the producing instruction is).

use serde::{Deserialize, Serialize};

/// Classification of a dynamic instruction for timing purposes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OpKind {
    /// Single-cycle integer ALU operation (also covers address generation helpers).
    IntAlu,
    /// Multi-cycle integer operation (multiply/divide class).
    IntMul,
    /// Floating-point operation (adds, multiplies); executes on an FP unit.
    FpOp,
    /// Long floating-point operation (divide/sqrt class).
    FpLong,
    /// Memory load; executes on a load/store unit and accesses the data hierarchy.
    Load,
    /// Memory store; executes on a load/store unit, writes through the write buffer
    /// at commit.
    Store,
    /// Conditional or unconditional branch; resolved at execute.
    Branch,
}

impl OpKind {
    /// Every kind, in declaration order (the on-disk trace format's kind-code
    /// order).
    pub const ALL: [OpKind; 7] = [
        OpKind::IntAlu,
        OpKind::IntMul,
        OpKind::FpOp,
        OpKind::FpLong,
        OpKind::Load,
        OpKind::Store,
        OpKind::Branch,
    ];

    /// Returns `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Returns `true` if the operation executes on a floating-point unit.
    pub fn is_fp(self) -> bool {
        matches!(self, OpKind::FpOp | OpKind::FpLong)
    }

    /// Execution latency in cycles once the operation issues, excluding any memory
    /// hierarchy latency (which is added dynamically for loads).
    pub fn exec_latency(self) -> u64 {
        match self {
            OpKind::IntAlu | OpKind::Branch => 1,
            OpKind::IntMul => 3,
            OpKind::FpOp => 4,
            OpKind::FpLong => 12,
            OpKind::Load | OpKind::Store => 1,
        }
    }
}

/// Branch metadata attached to [`OpKind::Branch`] trace records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BranchInfo {
    /// Whether the branch is taken in the trace.
    pub taken: bool,
    /// Branch target program counter (used for BTB lookups).
    pub target: u64,
    /// Whether the branch is unconditional (always predicted taken once the BTB
    /// knows the target).
    pub unconditional: bool,
}

/// Memory metadata attached to [`OpKind::Load`]/[`OpKind::Store`] trace records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct MemInfo {
    /// Virtual effective address of the access.
    pub addr: u64,
    /// Access size in bytes (informational; the cache model works on lines).
    pub size: u8,
}

impl Default for MemInfo {
    fn default() -> Self {
        MemInfo { addr: 0, size: 8 }
    }
}

/// One dynamic instruction of a workload trace.
///
/// # Example
///
/// ```
/// use smt_types::{OpKind, TraceOp};
/// let op = TraceOp::int_alu(0x1000);
/// assert_eq!(op.kind, OpKind::IntAlu);
/// assert!(!op.kind.is_mem());
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TraceOp {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class.
    pub kind: OpKind,
    /// Input dependences: distance (in dynamic instructions) back to the producer
    /// of each source operand. `None` means the operand is ready at rename
    /// (produced long ago or immediate).
    pub src_deps: [Option<u32>; 2],
    /// Memory metadata (loads and stores only).
    pub mem: Option<MemInfo>,
    /// Branch metadata (branches only).
    pub branch: Option<BranchInfo>,
}

impl TraceOp {
    /// Creates a single-cycle integer ALU operation with no dependences.
    pub fn int_alu(pc: u64) -> Self {
        TraceOp {
            pc,
            kind: OpKind::IntAlu,
            src_deps: [None, None],
            mem: None,
            branch: None,
        }
    }

    /// Creates a floating-point operation with no dependences.
    pub fn fp_op(pc: u64) -> Self {
        TraceOp {
            pc,
            kind: OpKind::FpOp,
            src_deps: [None, None],
            mem: None,
            branch: None,
        }
    }

    /// Creates a load of `addr` with no register dependences.
    pub fn load(pc: u64, addr: u64) -> Self {
        TraceOp {
            pc,
            kind: OpKind::Load,
            src_deps: [None, None],
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Creates a store to `addr` with no register dependences.
    pub fn store(pc: u64, addr: u64) -> Self {
        TraceOp {
            pc,
            kind: OpKind::Store,
            src_deps: [None, None],
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Creates a conditional branch.
    pub fn branch(pc: u64, taken: bool, target: u64) -> Self {
        TraceOp {
            pc,
            kind: OpKind::Branch,
            src_deps: [None, None],
            mem: None,
            branch: Some(BranchInfo {
                taken,
                target,
                unconditional: false,
            }),
        }
    }

    /// Adds a producer-distance dependence to the first free source slot.
    ///
    /// Returns `self` for chaining. Distances of zero are ignored (an instruction
    /// cannot depend on itself).
    pub fn with_dep(mut self, distance: u32) -> Self {
        if distance == 0 {
            return self;
        }
        if self.src_deps[0].is_none() {
            self.src_deps[0] = Some(distance);
        } else if self.src_deps[1].is_none() {
            self.src_deps[1] = Some(distance);
        }
        self
    }

    /// Effective address of the access, if this is a memory operation.
    pub fn addr(&self) -> Option<u64> {
        self.mem.map(|m| m.addr)
    }

    /// Returns `true` if the record is internally consistent (memory metadata only
    /// on memory ops, branch metadata only on branches).
    pub fn is_well_formed(&self) -> bool {
        let mem_ok = self.mem.is_some() == self.kind.is_mem();
        let br_ok = self.branch.is_some() == (self.kind == OpKind::Branch);
        mem_ok && br_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_well_formed() {
        assert!(TraceOp::int_alu(0).is_well_formed());
        assert!(TraceOp::fp_op(4).is_well_formed());
        assert!(TraceOp::load(8, 0x100).is_well_formed());
        assert!(TraceOp::store(12, 0x200).is_well_formed());
        assert!(TraceOp::branch(16, true, 0x40).is_well_formed());
    }

    #[test]
    fn with_dep_fills_slots_in_order() {
        let op = TraceOp::int_alu(0).with_dep(3).with_dep(7).with_dep(9);
        assert_eq!(op.src_deps, [Some(3), Some(7)]);
    }

    #[test]
    fn with_dep_ignores_zero() {
        let op = TraceOp::int_alu(0).with_dep(0);
        assert_eq!(op.src_deps, [None, None]);
    }

    #[test]
    fn latency_classes() {
        assert_eq!(OpKind::IntAlu.exec_latency(), 1);
        assert!(OpKind::FpLong.exec_latency() > OpKind::FpOp.exec_latency());
        assert!(OpKind::Load.is_mem());
        assert!(OpKind::FpOp.is_fp());
        assert!(!OpKind::Branch.is_mem());
    }

    #[test]
    fn addr_accessor() {
        assert_eq!(TraceOp::load(0, 0xdead).addr(), Some(0xdead));
        assert_eq!(TraceOp::int_alu(0).addr(), None);
    }

    #[test]
    fn malformed_records_detected() {
        let mut op = TraceOp::int_alu(0);
        op.mem = Some(MemInfo::default());
        assert!(!op.is_well_formed());
        let mut b = TraceOp::branch(0, false, 4);
        b.branch = None;
        assert!(!b.is_well_formed());
    }
}
