//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running the simulator.
///
/// # Example
///
/// ```
/// use smt_types::SimError;
/// let e = SimError::invalid_config("ROB size must be non-zero");
/// assert!(e.to_string().contains("ROB size"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// A configuration value is inconsistent or out of range.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A workload or benchmark name was not recognized.
    UnknownBenchmark {
        /// The offending name.
        name: String,
    },
    /// A multiprogram workload was malformed (e.g. wrong thread count).
    InvalidWorkload {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The simulator reached an internal inconsistency; this indicates a bug.
    Internal {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A run hit its simulated-cycle cap before committing its instruction
    /// budget (see `RunScale::max_cycles` in `smt-core`).
    DeadlineExceeded {
        /// Human-readable description of the exhausted budget.
        reason: String,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SimError::InvalidWorkload`].
    pub fn invalid_workload(reason: impl Into<String>) -> Self {
        SimError::InvalidWorkload {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SimError::Internal`].
    pub fn internal(reason: impl Into<String>) -> Self {
        SimError::Internal {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SimError::DeadlineExceeded`].
    pub fn deadline_exceeded(reason: impl Into<String>) -> Self {
        SimError::DeadlineExceeded {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::UnknownBenchmark { name } => write!(f, "unknown benchmark: {name}"),
            SimError::InvalidWorkload { reason } => write!(f, "invalid workload: {reason}"),
            SimError::Internal { reason } => write!(f, "internal simulator error: {reason}"),
            SimError::DeadlineExceeded { reason } => write!(f, "deadline exceeded: {reason}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::invalid_config("x").to_string(),
            "invalid configuration: x"
        );
        assert_eq!(
            SimError::UnknownBenchmark {
                name: "quake3".into()
            }
            .to_string(),
            "unknown benchmark: quake3"
        );
        assert_eq!(
            SimError::invalid_workload("needs 2 threads").to_string(),
            "invalid workload: needs 2 threads"
        );
        assert_eq!(
            SimError::internal("rob underflow").to_string(),
            "internal simulator error: rob underflow"
        );
        assert_eq!(
            SimError::deadline_exceeded("cycle cap hit").to_string(),
            "deadline exceeded: cycle cap hit"
        );
    }

    #[test]
    fn error_trait_and_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
