//! Failure vocabulary of the resilient experiment engine.
//!
//! The parallel experiment engine (`smt-core`) runs every table, sweep and
//! grid as a queue of independent *cells*. A cell can fail — a panic in the
//! simulator, an exceeded deadline, a malformed cell specification, or a
//! fault injected by the deterministic chaos harness (`smt-resil`) — without
//! taking the run down with it. This module defines the shared taxonomy for
//! those failures: [`CellError`] (what went wrong in one cell),
//! [`CellOutcome`] (the per-cell record embedded in every experiment
//! report), and [`RunHealth`] (the roll-up the CLI maps to exit codes).
//!
//! Everything here is plain serde-serializable data so degraded reports stay
//! machine-readable end to end.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Classification of a cell failure.
///
/// Serializes as the short machine-readable [`CellErrorKind::name`]
/// (e.g. `"panic"`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CellErrorKind {
    /// The cell body panicked; the payload is quarantined in
    /// [`CellError::detail`].
    Panic,
    /// The cell exceeded its wall-clock or simulated-cycle budget.
    DeadlineExceeded,
    /// The cell's specification was rejected by the simulator (unknown
    /// benchmark, invalid configuration). Never retried: the same spec
    /// fails the same way every time.
    InvalidSpec,
    /// A fault injected by a `smt-resil` fault plan fired in this cell.
    InjectedFault,
    /// The cell never ran: an earlier permanent failure aborted the run
    /// under fail-fast.
    Skipped,
}

impl CellErrorKind {
    /// Every failure kind, in presentation order.
    pub const ALL: [CellErrorKind; 5] = [
        CellErrorKind::Panic,
        CellErrorKind::DeadlineExceeded,
        CellErrorKind::InvalidSpec,
        CellErrorKind::InjectedFault,
        CellErrorKind::Skipped,
    ];

    /// Short machine-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CellErrorKind::Panic => "panic",
            CellErrorKind::DeadlineExceeded => "deadline-exceeded",
            CellErrorKind::InvalidSpec => "invalid-spec",
            CellErrorKind::InjectedFault => "injected-fault",
            CellErrorKind::Skipped => "skipped",
        }
    }

    /// Parses a [`CellErrorKind::name`] string back into a kind.
    pub fn from_name(name: &str) -> Option<CellErrorKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether a failure of this kind is worth retrying: panics, deadline
    /// overruns and injected faults may be transient; a rejected spec fails
    /// deterministically and a skipped cell was never attempted.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            CellErrorKind::Panic | CellErrorKind::DeadlineExceeded | CellErrorKind::InjectedFault
        )
    }
}

serde::named_enum_serde!(CellErrorKind, "cell error kind");

/// A structured, serializable record of why one experiment cell failed.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CellError {
    /// The failure class.
    pub kind: CellErrorKind,
    /// Human-readable detail: the panic payload, the exceeded budget, the
    /// simulator error text, or the injected fault's label.
    pub detail: String,
}

impl CellError {
    /// A quarantined panic with its (stringified) payload.
    pub fn panic(payload: impl Into<String>) -> Self {
        CellError {
            kind: CellErrorKind::Panic,
            detail: payload.into(),
        }
    }

    /// An exceeded per-cell budget.
    pub fn deadline(detail: impl Into<String>) -> Self {
        CellError {
            kind: CellErrorKind::DeadlineExceeded,
            detail: detail.into(),
        }
    }

    /// A cell specification the simulator rejected.
    pub fn invalid_spec(detail: impl Into<String>) -> Self {
        CellError {
            kind: CellErrorKind::InvalidSpec,
            detail: detail.into(),
        }
    }

    /// A fault fired by the deterministic injection harness.
    pub fn injected(detail: impl Into<String>) -> Self {
        CellError {
            kind: CellErrorKind::InjectedFault,
            detail: detail.into(),
        }
    }

    /// A cell abandoned by fail-fast before it ever ran.
    pub fn skipped(detail: impl Into<String>) -> Self {
        CellError {
            kind: CellErrorKind::Skipped,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.detail)
    }
}

impl std::error::Error for CellError {}

/// The execution record of one cell in an experiment report, aligned with
/// the engine's deterministic cell ordering.
///
/// A cell that eventually succeeded — even after transient failures that
/// were retried away — carries no error and no attempt count, so a report
/// recovered from transient faults is bit-for-bit identical to the
/// fault-free report.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CellOutcome {
    /// Deterministic cell index within the run.
    pub cell: u64,
    /// Stable human-readable cell label (policy/workload, benchmark, …).
    pub label: String,
    /// Whether the cell produced its result.
    pub ok: bool,
    /// The final error of a failed cell; absent on success.
    pub error: Option<CellError>,
    /// Attempts consumed by a failed cell (1 = no retry); absent on success.
    pub attempts: Option<u64>,
}

impl CellOutcome {
    /// A successful cell.
    pub fn success(cell: u64, label: impl Into<String>) -> Self {
        CellOutcome {
            cell,
            label: label.into(),
            ok: true,
            error: None,
            attempts: None,
        }
    }

    /// A cell that exhausted its retry budget.
    pub fn failure(cell: u64, label: impl Into<String>, error: CellError, attempts: u64) -> Self {
        CellOutcome {
            cell,
            label: label.into(),
            ok: false,
            error: Some(error),
            attempts: Some(attempts),
        }
    }
}

/// Overall health of a finished experiment run.
///
/// Serializes as the short machine-readable [`RunHealthStatus::name`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RunHealthStatus {
    /// Every cell produced its result.
    Complete,
    /// Some cells failed; the report carries every surviving cell.
    Degraded,
    /// No cell produced a result.
    Failed,
}

impl RunHealthStatus {
    /// Every status, in presentation order.
    pub const ALL: [RunHealthStatus; 3] = [
        RunHealthStatus::Complete,
        RunHealthStatus::Degraded,
        RunHealthStatus::Failed,
    ];

    /// Short machine-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RunHealthStatus::Complete => "complete",
            RunHealthStatus::Degraded => "degraded",
            RunHealthStatus::Failed => "failed",
        }
    }

    /// Parses a [`RunHealthStatus::name`] string back into a status.
    pub fn from_name(name: &str) -> Option<RunHealthStatus> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }
}

serde::named_enum_serde!(RunHealthStatus, "run health status");

/// Roll-up of the per-cell outcomes of one run. The CLI maps
/// [`RunHealth::status`] to its exit code (0 complete / 3 degraded /
/// 1 failed).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RunHealth {
    /// Overall status of the run.
    pub status: RunHealthStatus,
    /// Cells the spec planned.
    pub planned_cells: u64,
    /// Cells that produced results.
    pub completed_cells: u64,
    /// Cells that exhausted their retry budget (or were skipped by
    /// fail-fast).
    pub failed_cells: u64,
}

impl RunHealth {
    /// Derives the health summary from a run's per-cell outcomes.
    pub fn from_outcomes(outcomes: &[CellOutcome]) -> Self {
        let planned = outcomes.len() as u64;
        let completed = outcomes.iter().filter(|o| o.ok).count() as u64;
        let failed = planned - completed;
        let status = if failed == 0 {
            RunHealthStatus::Complete
        } else if completed > 0 {
            RunHealthStatus::Degraded
        } else {
            RunHealthStatus::Failed
        };
        RunHealth {
            status,
            planned_cells: planned,
            completed_cells: completed,
            failed_cells: failed,
        }
    }

    /// Whether every planned cell completed.
    pub fn is_complete(&self) -> bool {
        self.status == RunHealthStatus::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in CellErrorKind::ALL {
            assert_eq!(CellErrorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CellErrorKind::from_name("meltdown"), None);
        for status in RunHealthStatus::ALL {
            assert_eq!(RunHealthStatus::from_name(status.name()), Some(status));
        }
    }

    #[test]
    fn retryability_matches_taxonomy() {
        assert!(CellErrorKind::Panic.is_retryable());
        assert!(CellErrorKind::DeadlineExceeded.is_retryable());
        assert!(CellErrorKind::InjectedFault.is_retryable());
        assert!(!CellErrorKind::InvalidSpec.is_retryable());
        assert!(!CellErrorKind::Skipped.is_retryable());
    }

    #[test]
    fn health_classifies_outcome_mixes() {
        use serde::{Deserialize as _, Serialize as _};
        let ok = CellOutcome::success(0, "icount/gcc-mcf");
        let bad = CellOutcome::failure(1, "mlp/gcc-mcf", CellError::panic("boom"), 3);
        let all_ok = RunHealth::from_outcomes(&[ok.clone(), ok.clone()]);
        assert_eq!(all_ok.status, RunHealthStatus::Complete);
        assert!(all_ok.is_complete());
        let mixed = RunHealth::from_outcomes(&[ok.clone(), bad.clone()]);
        assert_eq!(mixed.status, RunHealthStatus::Degraded);
        assert_eq!(mixed.failed_cells, 1);
        let none = RunHealth::from_outcomes(std::slice::from_ref(&bad));
        assert_eq!(none.status, RunHealthStatus::Failed);
        let round = CellOutcome::deserialize(&bad.serialize()).unwrap();
        assert_eq!(round, bad);
        let round = RunHealth::deserialize(&mixed.serialize()).unwrap();
        assert_eq!(round, mixed);
    }

    #[test]
    fn success_outcome_carries_no_failure_fields() {
        use serde::Serialize as _;
        // Bit-for-bit parity between a fault-free run and a run whose
        // transient faults were retried away depends on success outcomes
        // serializing without error/attempts noise.
        let ok = CellOutcome::success(3, "icount/gcc");
        match ok.serialize() {
            serde::Value::Map(fields) => {
                assert!(fields.iter().all(|(k, _)| k != "error" && k != "attempts"));
            }
            other => panic!("expected map, got {other:?}"),
        }
        assert_eq!(
            format!("{}", CellError::deadline("cell 3: 10ms budget")),
            "deadline-exceeded: cell 3: 10ms budget"
        );
    }
}
