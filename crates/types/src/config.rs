//! Simulated processor configuration (Table IV of the paper).

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways per set).
    pub associativity: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles (added on a hit at this level).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sized fields). Use
    /// [`CacheConfig::validate`] to check fallibly.
    pub fn num_sets(&self) -> u64 {
        self.validate().expect("invalid cache geometry");
        self.size_bytes / (self.associativity as u64 * self.line_bytes as u64)
    }

    /// Checks that the geometry is internally consistent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any field is zero, the capacity is not
    /// a multiple of `associativity * line_bytes`, or the resulting set count is not
    /// a power of two.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.size_bytes == 0 || self.associativity == 0 || self.line_bytes == 0 {
            return Err(SimError::invalid_config(
                "cache geometry fields must be non-zero",
            ));
        }
        let way_bytes = self.associativity as u64 * self.line_bytes as u64;
        if !self.size_bytes.is_multiple_of(way_bytes) {
            return Err(SimError::invalid_config(
                "cache size must be a multiple of associativity * line size",
            ));
        }
        let sets = self.size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(SimError::invalid_config(
                "cache set count must be a power of two",
            ));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(SimError::invalid_config(
                "cache line size must be a power of two",
            ));
        }
        Ok(())
    }
}

/// TLB geometry (fully associative in the baseline).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Penalty (cycles) of a TLB miss; the paper treats a D-TLB miss as a
    /// long-latency event comparable to a memory access.
    pub miss_penalty: u64,
}

/// Hardware stream-buffer prefetcher configuration (Sherwood et al. style).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PrefetcherConfig {
    /// Whether the prefetcher is enabled (the Figure 5 experiment turns it off).
    pub enabled: bool,
    /// Number of stream buffers.
    pub stream_buffers: u32,
    /// Entries (prefetched lines) per stream buffer.
    pub entries_per_buffer: u32,
    /// Number of entries in the PC-indexed stride predictor that guides allocation.
    pub stride_table_entries: u32,
    /// Confidence threshold (consecutive identical strides) before a stream buffer
    /// is allocated.
    pub confidence_threshold: u8,
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig {
            enabled: true,
            stream_buffers: 8,
            entries_per_buffer: 8,
            stride_table_entries: 2048,
            confidence_threshold: 2,
        }
    }
}

/// Which SMT fetch policy drives the front end.
///
/// The first six correspond to the policies compared in Section 6.3; the
/// remaining variants cover the Section 6.5 alternatives and the Section 6.6
/// explicit resource-management schemes.
///
/// Serializes as the short machine-readable [`FetchPolicyKind::name`]
/// (e.g. `"mlp-flush"`), which is also what spec files and the CLI accept.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FetchPolicyKind {
    /// ICOUNT 2.4 (Tullsen et al. 1996) — the baseline.
    Icount,
    /// Fetch stall on a *detected* long-latency load (Tullsen & Brown 2001).
    Stall,
    /// Fetch stall on a *predicted* long-latency load (Cazorla et al. 2004a).
    PredictiveStall,
    /// Flush past a detected long-latency load (Tullsen & Brown 2001, "TM/next").
    Flush,
    /// MLP-aware stall fetch: predict the load and its MLP distance, stall after
    /// fetching that many more instructions (this paper).
    MlpStall,
    /// MLP-aware flush: detect the load, predict the MLP distance, flush or keep
    /// fetching up to that distance (this paper — the headline policy).
    MlpFlush,
    /// Section 6.5 alternative (c): binary MLP predictor + flush.
    MlpBinaryFlush,
    /// Section 6.5 alternative (d): MLP distance + flush at resource stall.
    MlpDistanceFlushAtStall,
    /// Section 6.5 alternative (e): binary MLP predictor + flush at resource stall.
    MlpBinaryFlushAtStall,
    /// Static partitioning of buffer resources (Raasch & Reinhardt style).
    StaticPartition,
    /// Dynamically controlled resource allocation (Cazorla et al. 2004b).
    Dcra,
}

impl FetchPolicyKind {
    /// Every implemented fetch policy, in presentation order.
    pub const ALL: [FetchPolicyKind; 11] = [
        FetchPolicyKind::Icount,
        FetchPolicyKind::Stall,
        FetchPolicyKind::PredictiveStall,
        FetchPolicyKind::Flush,
        FetchPolicyKind::MlpStall,
        FetchPolicyKind::MlpFlush,
        FetchPolicyKind::MlpBinaryFlush,
        FetchPolicyKind::MlpDistanceFlushAtStall,
        FetchPolicyKind::MlpBinaryFlushAtStall,
        FetchPolicyKind::StaticPartition,
        FetchPolicyKind::Dcra,
    ];

    /// All policies evaluated in the main comparison (Figures 9–14).
    pub const MAIN_COMPARISON: [FetchPolicyKind; 6] = [
        FetchPolicyKind::Icount,
        FetchPolicyKind::Stall,
        FetchPolicyKind::PredictiveStall,
        FetchPolicyKind::MlpStall,
        FetchPolicyKind::Flush,
        FetchPolicyKind::MlpFlush,
    ];

    /// Short machine-readable name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            FetchPolicyKind::Icount => "icount",
            FetchPolicyKind::Stall => "stall",
            FetchPolicyKind::PredictiveStall => "pstall",
            FetchPolicyKind::Flush => "flush",
            FetchPolicyKind::MlpStall => "mlp-stall",
            FetchPolicyKind::MlpFlush => "mlp-flush",
            FetchPolicyKind::MlpBinaryFlush => "mlp-binary-flush",
            FetchPolicyKind::MlpDistanceFlushAtStall => "mlp-dist-flush-at-stall",
            FetchPolicyKind::MlpBinaryFlushAtStall => "mlp-binary-flush-at-stall",
            FetchPolicyKind::StaticPartition => "static-partition",
            FetchPolicyKind::Dcra => "dcra",
        }
    }

    /// Parses a [`FetchPolicyKind::name`] string back into a policy.
    pub fn from_name(name: &str) -> Option<FetchPolicyKind> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether the policy consults the MLP predictor stack (the paper's
    /// proposed policies and their Section 6.5 alternatives). The adaptive
    /// engine's threshold selector uses this to tell the MLP-aware candidate
    /// from the ILP candidate regardless of candidate ordering.
    pub fn is_mlp_aware(self) -> bool {
        matches!(
            self,
            FetchPolicyKind::MlpStall
                | FetchPolicyKind::MlpFlush
                | FetchPolicyKind::MlpBinaryFlush
                | FetchPolicyKind::MlpDistanceFlushAtStall
                | FetchPolicyKind::MlpBinaryFlushAtStall
        )
    }
}

serde::named_enum_serde!(FetchPolicyKind, "fetch policy");

/// Full SMT processor configuration, defaulting to Table IV of the paper.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SmtConfig {
    /// Number of hardware threads.
    pub num_threads: usize,
    /// Fetch policy driving the front end.
    pub fetch_policy: FetchPolicyKind,
    /// Instructions fetched per cycle (total across threads). ICOUNT 2.4 = 4.
    pub fetch_width: u32,
    /// Maximum number of threads fetched from in one cycle. ICOUNT 2.4 = 2.
    pub fetch_threads_per_cycle: u32,
    /// Decode/rename/dispatch width per cycle.
    pub dispatch_width: u32,
    /// Issue width per cycle.
    pub issue_width: u32,
    /// Commit width per cycle.
    pub commit_width: u32,
    /// Front-end depth in stages (fetch to dispatch); Table IV: 14-stage pipeline.
    pub frontend_depth: u32,
    /// Shared reorder buffer capacity.
    pub rob_size: u32,
    /// Shared load/store queue capacity.
    pub lsq_size: u32,
    /// Integer issue-queue capacity.
    pub iq_int_size: u32,
    /// Floating-point issue-queue capacity.
    pub iq_fp_size: u32,
    /// Integer rename registers (beyond architected state).
    pub rename_int: u32,
    /// Floating-point rename registers.
    pub rename_fp: u32,
    /// Number of integer ALUs.
    pub int_alus: u32,
    /// Number of load/store units.
    pub ldst_units: u32,
    /// Number of floating-point units.
    pub fp_units: u32,
    /// Branch misprediction penalty in cycles.
    pub branch_penalty: u64,
    /// gshare branch predictor entries.
    pub gshare_entries: u32,
    /// Branch target buffer entries.
    pub btb_entries: u32,
    /// Branch target buffer associativity.
    pub btb_assoc: u32,
    /// Write buffer entries (stores drain here at commit).
    pub write_buffer_entries: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Unified L3 cache.
    pub l3: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Main memory access latency in cycles (Figure 15/16 sweeps this 200–800).
    pub memory_latency: u64,
    /// Number of outstanding misses supported per thread (MSHR-style limit). The
    /// paper assumes enough MSHRs to expose the ROB-limited MLP; 32 is ample.
    pub max_outstanding_misses: u32,
    /// Hardware prefetcher configuration.
    pub prefetcher: PrefetcherConfig,
    /// When `true`, independent long-latency loads are artificially serialized
    /// (used only by the Table I "MLP impact" characterization experiment).
    pub serialize_long_latency_loads: bool,
    /// Long-latency load predictor table entries (per thread).
    pub lll_predictor_entries: u32,
    /// MLP distance predictor table entries (per thread).
    pub mlp_predictor_entries: u32,
    /// Optional explicit LLSR length; when `None` the paper's sizing of
    /// `ROB size / number of threads` is used.
    pub llsr_length_override: Option<u32>,
}

impl SmtConfig {
    /// The baseline Table IV configuration for `num_threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero or exceeds [`crate::ThreadId::MAX_THREADS`].
    pub fn baseline(num_threads: usize) -> Self {
        assert!(
            (1..=crate::ThreadId::MAX_THREADS).contains(&num_threads),
            "unsupported thread count {num_threads}"
        );
        SmtConfig {
            num_threads,
            fetch_policy: FetchPolicyKind::Icount,
            fetch_width: 4,
            fetch_threads_per_cycle: 2,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            frontend_depth: 14,
            rob_size: 256,
            lsq_size: 128,
            iq_int_size: 64,
            iq_fp_size: 64,
            rename_int: 100,
            rename_fp: 100,
            int_alus: 4,
            ldst_units: 2,
            fp_units: 2,
            branch_penalty: 11,
            gshare_entries: 2048,
            btb_entries: 256,
            btb_assoc: 4,
            write_buffer_entries: 8,
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                associativity: 2,
                line_bytes: 64,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                associativity: 2,
                line_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                associativity: 8,
                line_bytes: 64,
                latency: 11,
            },
            l3: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                associativity: 16,
                line_bytes: 64,
                latency: 35,
            },
            itlb: TlbConfig {
                entries: 128,
                page_bytes: 8 * 1024,
                miss_penalty: 350,
            },
            dtlb: TlbConfig {
                entries: 512,
                page_bytes: 8 * 1024,
                miss_penalty: 350,
            },
            memory_latency: 350,
            max_outstanding_misses: 32,
            prefetcher: PrefetcherConfig::default(),
            serialize_long_latency_loads: false,
            lll_predictor_entries: 2048,
            mlp_predictor_entries: 2048,
            llsr_length_override: None,
        }
    }

    /// Baseline single-thread configuration (used for the single-threaded CPI runs
    /// that normalize STP and ANTT).
    pub fn single_thread() -> Self {
        Self::baseline(1)
    }

    /// Returns a copy with the given fetch policy.
    pub fn with_policy(mut self, policy: FetchPolicyKind) -> Self {
        self.fetch_policy = policy;
        self
    }

    /// Returns a copy with the given main-memory latency (Figures 15/16).
    pub fn with_memory_latency(mut self, latency: u64) -> Self {
        self.memory_latency = latency;
        self
    }

    /// Returns a copy with the prefetcher enabled or disabled (Figure 5).
    pub fn with_prefetcher(mut self, enabled: bool) -> Self {
        self.prefetcher.enabled = enabled;
        self
    }

    /// Scales the window resources for the Figure 17/18 experiment: ROB size `rob`,
    /// with the load/store queue, issue queues and rename registers scaled
    /// proportionally exactly as in Section 6.4.2 (ROB 128/256/512/1024 ↔ LSQ
    /// 64/128/256/512 ↔ IQ 32/64/128/256 ↔ 50/100/200/400 registers).
    pub fn with_window_size(mut self, rob: u32) -> Self {
        let scale = rob as f64 / 256.0;
        self.rob_size = rob;
        self.lsq_size = ((128.0 * scale).round() as u32).max(2);
        self.iq_int_size = ((64.0 * scale).round() as u32).max(2);
        self.iq_fp_size = ((64.0 * scale).round() as u32).max(2);
        self.rename_int = ((100.0 * scale).round() as u32).max(2);
        self.rename_fp = ((100.0 * scale).round() as u32).max(2);
        self
    }

    /// Per-thread long-latency shift register length: ROB entries divided by the
    /// number of threads (Section 4.2), unless explicitly overridden.
    pub fn llsr_length(&self) -> u32 {
        self.llsr_length_override
            .unwrap_or(self.rob_size / self.num_threads as u32)
            .max(1)
    }

    /// Checks the whole configuration for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when widths, resource sizes, or cache
    /// geometries are degenerate.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.num_threads == 0 || self.num_threads > crate::ThreadId::MAX_THREADS {
            return Err(SimError::invalid_config("unsupported number of threads"));
        }
        if self.fetch_width == 0 || self.dispatch_width == 0 || self.issue_width == 0 {
            return Err(SimError::invalid_config("pipeline widths must be non-zero"));
        }
        if self.fetch_threads_per_cycle == 0 {
            return Err(SimError::invalid_config(
                "must fetch from at least one thread per cycle",
            ));
        }
        if self.rob_size < self.num_threads as u32 {
            return Err(SimError::invalid_config("ROB smaller than thread count"));
        }
        if self.lsq_size == 0 || self.iq_int_size == 0 || self.iq_fp_size == 0 {
            return Err(SimError::invalid_config("queue sizes must be non-zero"));
        }
        if self.int_alus == 0 || self.ldst_units == 0 || self.fp_units == 0 {
            return Err(SimError::invalid_config(
                "functional unit counts must be non-zero",
            ));
        }
        if self.max_outstanding_misses == 0 {
            return Err(SimError::invalid_config("need at least one MSHR"));
        }
        for cache in [&self.l1i, &self.l1d, &self.l2, &self.l3] {
            cache.validate()?;
        }
        if self.dtlb.entries == 0 || self.itlb.entries == 0 {
            return Err(SimError::invalid_config("TLBs must have entries"));
        }
        if !self.dtlb.page_bytes.is_power_of_two() || !self.itlb.page_bytes.is_power_of_two() {
            return Err(SimError::invalid_config("page size must be a power of two"));
        }
        if self.memory_latency == 0 {
            return Err(SimError::invalid_config("memory latency must be non-zero"));
        }
        Ok(())
    }
}

impl Default for SmtConfig {
    fn default() -> Self {
        Self::baseline(2)
    }
}

/// Off-chip memory-bus configuration of a chip (CMP) configuration.
///
/// The bus carries cache-line transfers between the shared LLC and main
/// memory. Each transfer occupies the bus for `line_bytes / bytes_per_cycle`
/// cycles; a request issued while other transfers are in flight pays one
/// occupancy per in-flight transfer as queueing delay, which is how cores
/// contend for off-chip bandwidth. `bytes_per_cycle == 0` disables the model
/// (infinite bandwidth) — the single-core machine of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BusConfig {
    /// Sustained bus bandwidth in bytes per cycle; `0` means unlimited.
    pub bytes_per_cycle: u32,
}

impl BusConfig {
    /// An unlimited (uncontended) bus: the single-core machine's memory system.
    pub fn unlimited() -> Self {
        BusConfig { bytes_per_cycle: 0 }
    }

    /// The default contended bus for multi-core chips: 16 bytes/cycle, i.e.
    /// four cycles of occupancy per 64-byte line.
    pub fn contended() -> Self {
        BusConfig {
            bytes_per_cycle: 16,
        }
    }

    /// Whether the bus models contention at all.
    pub fn is_unlimited(&self) -> bool {
        self.bytes_per_cycle == 0
    }

    /// Cycles one transfer of `line_bytes` occupies the bus (zero when
    /// unlimited).
    pub fn transfer_cycles(&self, line_bytes: u64) -> u64 {
        if self.bytes_per_cycle == 0 {
            0
        } else {
            line_bytes.div_ceil(self.bytes_per_cycle as u64).max(1)
        }
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Configuration of a chip multiprocessor of SMT cores sharing a last-level
/// cache and a memory bus.
///
/// Each of the `num_cores` cores is an independent copy of the [`SmtConfig`]
/// machine (private L1I/L1D/L2, TLBs, prefetcher, write buffer, predictors);
/// the per-core `core.l3` is replaced by the chip-wide `shared_llc`, behind
/// the shared [`BusConfig`] memory bus. With `num_cores == 1`, an unlimited
/// bus and `shared_llc == core.l3`, the chip is exactly the paper's
/// single-core machine.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ChipConfig {
    /// Number of SMT cores on the chip.
    pub num_cores: usize,
    /// Per-core configuration (identical cores; `core.l3` describes the
    /// shared LLC geometry only when `shared_llc` mirrors it).
    pub core: SmtConfig,
    /// Geometry of the shared last-level cache all cores compete for.
    pub shared_llc: CacheConfig,
    /// The off-chip memory bus shared by all cores.
    pub bus: BusConfig,
    /// Worker threads used to step cores within a chip cycle (`None` or
    /// `Some(1)` = the serial loop). Results are bit-for-bit identical at
    /// any value — the staged arbitration discipline makes core stepping
    /// commutative — so this is purely a host-side throughput knob. The
    /// `SMT_CHIP_THREADS` environment variable overrides it at simulator
    /// construction. Optional so pre-parallelism serialized configs stay
    /// valid and the default serializes to nothing.
    pub chip_threads: Option<usize>,
}

impl ChipConfig {
    /// Upper bound on the number of cores per chip.
    pub const MAX_CORES: usize = 8;

    /// A chip of `num_cores` Table IV baseline cores with `threads_per_core`
    /// hardware threads each. Multi-core chips get the default contended bus;
    /// a one-core "chip" is exactly the paper's single-core machine
    /// (unlimited bus).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or exceeds its supported maximum.
    pub fn baseline(num_cores: usize, threads_per_core: usize) -> Self {
        assert!(
            (1..=Self::MAX_CORES).contains(&num_cores),
            "unsupported core count {num_cores}"
        );
        let core = SmtConfig::baseline(threads_per_core);
        let shared_llc = core.l3;
        let bus = if num_cores > 1 {
            BusConfig::contended()
        } else {
            BusConfig::unlimited()
        };
        ChipConfig {
            num_cores,
            core,
            shared_llc,
            bus,
            chip_threads: None,
        }
    }

    /// Wraps an existing single-core configuration as a one-core chip that
    /// behaves bit-for-bit like the [`SmtConfig`] machine.
    pub fn single_core(core: SmtConfig) -> Self {
        ChipConfig {
            num_cores: 1,
            shared_llc: core.l3,
            bus: BusConfig::unlimited(),
            core,
            chip_threads: None,
        }
    }

    /// Returns a copy with the given per-core fetch policy.
    pub fn with_policy(mut self, policy: FetchPolicyKind) -> Self {
        self.core.fetch_policy = policy;
        self
    }

    /// Returns a copy with the given bus bandwidth (`0` = unlimited).
    pub fn with_bus_bytes_per_cycle(mut self, bytes_per_cycle: u32) -> Self {
        self.bus = BusConfig { bytes_per_cycle };
        self
    }

    /// Returns a copy stepping cores on `threads` workers per chip cycle.
    pub fn with_chip_threads(mut self, threads: usize) -> Self {
        self.chip_threads = Some(threads);
        self
    }

    /// The configured chip-stepping worker count (`1` when unset).
    pub fn chip_threads(&self) -> usize {
        self.chip_threads.unwrap_or(1)
    }

    /// Total hardware threads across all cores.
    pub fn total_threads(&self) -> usize {
        self.num_cores * self.core.num_threads
    }

    /// Checks the whole chip configuration for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate core count, core
    /// configuration, or shared-LLC geometry.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.num_cores == 0 || self.num_cores > Self::MAX_CORES {
            return Err(SimError::invalid_config(format!(
                "num_cores must be between 1 and {}",
                Self::MAX_CORES
            )));
        }
        if self.chip_threads == Some(0) {
            return Err(SimError::invalid_config(
                "chip_threads must be at least 1 (1 = serial stepping)",
            ));
        }
        self.core.validate()?;
        self.shared_llc.validate()?;
        if self.shared_llc.line_bytes != self.core.l1d.line_bytes {
            return Err(SimError::invalid_config(
                "shared LLC line size must match the core line size",
            ));
        }
        Ok(())
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::baseline(2, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_iv() {
        let c = SmtConfig::baseline(2);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.lsq_size, 128);
        assert_eq!(c.iq_int_size, 64);
        assert_eq!(c.rename_int, 100);
        assert_eq!(c.int_alus, 4);
        assert_eq!(c.ldst_units, 2);
        assert_eq!(c.fp_units, 2);
        assert_eq!(c.branch_penalty, 11);
        assert_eq!(c.memory_latency, 350);
        assert_eq!(c.l3.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2.latency, 11);
        assert_eq!(c.l3.latency, 35);
        assert_eq!(c.write_buffer_entries, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn chip_threads_defaults_serialize_compatibly() {
        // Missing field deserializes to 1 (pre-parallelism specs stay valid)
        // and the default value round-trips invisibly (reports keep the
        // pre-parallelism schema bytes).
        let chip = ChipConfig::baseline(2, 2);
        assert_eq!(chip.chip_threads(), 1);
        let json = serde_json::to_string(&chip).unwrap();
        assert!(!json.contains("chip_threads"));
        let back: ChipConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chip);

        let tuned = chip.clone().with_chip_threads(4);
        assert!(tuned.validate().is_ok());
        let json = serde_json::to_string(&tuned).unwrap();
        assert!(json.contains("chip_threads"));
        let back: ChipConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tuned);
        assert_eq!(back.chip_threads(), 4);

        assert!(chip.with_chip_threads(0).validate().is_err());
    }

    #[test]
    fn llsr_length_is_rob_over_threads() {
        assert_eq!(SmtConfig::baseline(2).llsr_length(), 128);
        assert_eq!(SmtConfig::baseline(4).llsr_length(), 64);
        assert_eq!(SmtConfig::baseline(1).llsr_length(), 256);
        let mut c = SmtConfig::baseline(1);
        c.llsr_length_override = Some(128);
        assert_eq!(c.llsr_length(), 128);
    }

    #[test]
    fn window_scaling_matches_section_642() {
        let c = SmtConfig::baseline(2).with_window_size(1024);
        assert_eq!(c.rob_size, 1024);
        assert_eq!(c.lsq_size, 512);
        assert_eq!(c.iq_int_size, 256);
        assert_eq!(c.rename_int, 400);
        let c = SmtConfig::baseline(2).with_window_size(128);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.iq_fp_size, 32);
        assert_eq!(c.rename_fp, 50);
    }

    #[test]
    fn cache_geometry_validation() {
        let good = CacheConfig {
            size_bytes: 64 * 1024,
            associativity: 2,
            line_bytes: 64,
            latency: 1,
        };
        assert!(good.validate().is_ok());
        assert_eq!(good.num_sets(), 512);
        let bad = CacheConfig {
            size_bytes: 60 * 1024,
            associativity: 2,
            line_bytes: 64,
            latency: 1,
        };
        assert!(bad.validate().is_err());
        let zero = CacheConfig {
            size_bytes: 0,
            associativity: 2,
            line_bytes: 64,
            latency: 1,
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SmtConfig::baseline(2);
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = SmtConfig::baseline(2);
        c.max_outstanding_misses = 0;
        assert!(c.validate().is_err());
        let mut c = SmtConfig::baseline(2);
        c.memory_latency = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_style_helpers() {
        let c = SmtConfig::baseline(2)
            .with_policy(FetchPolicyKind::MlpFlush)
            .with_memory_latency(800)
            .with_prefetcher(false);
        assert_eq!(c.fetch_policy, FetchPolicyKind::MlpFlush);
        assert_eq!(c.memory_latency, 800);
        assert!(!c.prefetcher.enabled);
    }

    #[test]
    fn policy_names_are_unique() {
        use std::collections::HashSet;
        let all = [
            FetchPolicyKind::Icount,
            FetchPolicyKind::Stall,
            FetchPolicyKind::PredictiveStall,
            FetchPolicyKind::Flush,
            FetchPolicyKind::MlpStall,
            FetchPolicyKind::MlpFlush,
            FetchPolicyKind::MlpBinaryFlush,
            FetchPolicyKind::MlpDistanceFlushAtStall,
            FetchPolicyKind::MlpBinaryFlushAtStall,
            FetchPolicyKind::StaticPartition,
            FetchPolicyKind::Dcra,
        ];
        let names: HashSet<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn policy_serde_uses_short_names() {
        for policy in FetchPolicyKind::ALL {
            let value = policy.serialize();
            assert_eq!(value, serde::Value::Str(policy.name().to_string()));
            assert_eq!(FetchPolicyKind::deserialize(&value).unwrap(), policy);
            assert_eq!(FetchPolicyKind::from_name(policy.name()), Some(policy));
        }
        let err = FetchPolicyKind::deserialize(&serde::Value::Str("warp-drive".into()))
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("warp-drive") && err.contains("mlp-flush"),
            "{err}"
        );
    }

    #[test]
    fn chip_config_baseline_and_validation() {
        let chip = ChipConfig::baseline(2, 2);
        assert_eq!(chip.num_cores, 2);
        assert_eq!(chip.core.num_threads, 2);
        assert_eq!(chip.total_threads(), 4);
        assert_eq!(chip.shared_llc, chip.core.l3);
        assert!(!chip.bus.is_unlimited());
        assert!(chip.validate().is_ok());

        // A one-core chip is the paper's single-core machine: uncontended bus.
        let single = ChipConfig::baseline(1, 2);
        assert!(single.bus.is_unlimited());
        assert_eq!(
            ChipConfig::single_core(SmtConfig::baseline(4)).total_threads(),
            4
        );

        let mut bad = ChipConfig::baseline(2, 2);
        bad.num_cores = 0;
        assert!(bad.validate().is_err());
        let mut bad = ChipConfig::baseline(2, 2);
        bad.shared_llc.line_bytes = 128;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn bus_transfer_cycles() {
        assert_eq!(BusConfig::unlimited().transfer_cycles(64), 0);
        assert_eq!(BusConfig::contended().transfer_cycles(64), 4);
        assert_eq!(BusConfig { bytes_per_cycle: 8 }.transfer_cycles(64), 8);
        assert_eq!(
            BusConfig {
                bytes_per_cycle: 128
            }
            .transfer_cycles(64),
            1
        );
    }

    #[test]
    fn chip_config_serde_round_trips() {
        let chip = ChipConfig::baseline(4, 2)
            .with_policy(FetchPolicyKind::MlpFlush)
            .with_bus_bytes_per_cycle(8);
        let round = ChipConfig::deserialize(&chip.serialize()).unwrap();
        assert_eq!(round, chip);
        let mut value = chip.serialize();
        if let serde::Value::Map(entries) = &mut value {
            entries.push(("coress".to_string(), serde::Value::Int(2)));
        }
        let err = ChipConfig::deserialize(&value).unwrap_err().to_string();
        assert!(err.contains("coress"), "{err}");
    }

    #[test]
    fn config_serde_round_trips() {
        let config = SmtConfig::baseline(2)
            .with_policy(FetchPolicyKind::MlpFlush)
            .with_memory_latency(600);
        let round = SmtConfig::deserialize(&config.serialize()).unwrap();
        assert_eq!(round, config);
    }

    #[test]
    fn unknown_config_fields_rejected_by_name() {
        let mut value = SmtConfig::baseline(2).serialize();
        if let serde::Value::Map(entries) = &mut value {
            entries.push(("robb_size".to_string(), serde::Value::Int(64)));
        }
        let err = SmtConfig::deserialize(&value).unwrap_err().to_string();
        assert!(
            err.contains("robb_size"),
            "error should name the field: {err}"
        );
        assert!(
            err.contains("SmtConfig"),
            "error should name the container: {err}"
        );
    }
}
