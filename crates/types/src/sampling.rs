//! Sampled-simulation vocabulary: the fast-forward/measure cadence
//! ([`SamplingConfig`]), the extrapolated per-metric estimates with
//! confidence intervals ([`SampledEstimate`]), and the identity header of a
//! serialized warm checkpoint ([`CheckpointMeta`]).
//!
//! Sampled runs interleave a cheap *functional fast-forward* (trace consumed,
//! caches/TLBs/predictors kept warm, no cycle accounting) with short
//! cycle-accurate *measurement windows*, in the style of SMARTS (Wunderlich
//! et al., ISCA 2003). Each window contributes one stratified IPC sample; the
//! run reports the window mean with a 95% confidence interval derived from
//! the between-window variance.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Cadence of one sampled run, in committed instructions per thread.
///
/// A sampling unit is `skip → ff → warm → measure`: `skip_instructions` are
/// consumed at raw trace speed (no state updated at all),
/// `ff_instructions` are executed functionally (warm state — caches, TLBs,
/// predictors — updated, no cycles), `warm_instructions` run cycle-accurately
/// to refill the pipeline before counters are trusted, and
/// `measure_instructions` are the measured window proper. Units repeat until
/// the instruction budget is exhausted *and* at least `min_windows` windows
/// were measured.
///
/// The skip phase is the lever for large budgets: functional warming costs
/// several times raw trace consumption, and the warm structures only need a
/// bounded warming horizon (`ff_instructions`) of fresh history before each
/// window — state is frozen, not lost, across a skip. `skip_instructions: 0`
/// recovers full SMARTS-style always-on functional warming.
///
/// # Example
///
/// ```
/// use smt_types::sampling::SamplingConfig;
/// let cfg = SamplingConfig::default();
/// assert!(cfg.validate().is_ok());
/// assert!(cfg.detailed_fraction() < 0.2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SamplingConfig {
    /// Instructions per thread consumed at raw trace speed per unit, with no
    /// warm-state updates (the fastest, least accurate phase; 0 disables it).
    pub skip_instructions: u64,
    /// Instructions per thread fast-forwarded (functional warming) per unit.
    pub ff_instructions: u64,
    /// Detailed-mode instructions per thread discarded as pipeline warm-up at
    /// the start of each measurement window.
    pub warm_instructions: u64,
    /// Detailed-mode instructions per thread measured per window.
    pub measure_instructions: u64,
    /// Minimum number of measurement windows per run (confidence floor).
    pub min_windows: u32,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            skip_instructions: 0,
            ff_instructions: 18_000,
            warm_instructions: 500,
            measure_instructions: 1_500,
            min_windows: 3,
        }
    }
}

impl SamplingConfig {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.measure_instructions == 0 {
            return Err(SimError::invalid_config(
                "measure_instructions must be non-zero",
            ));
        }
        if self.ff_instructions == 0 {
            return Err(SimError::invalid_config(
                "ff_instructions must be non-zero (use an exact run instead)",
            ));
        }
        if self.min_windows == 0 {
            return Err(SimError::invalid_config("min_windows must be at least 1"));
        }
        Ok(())
    }

    /// Instructions per thread consumed by one full sampling unit.
    pub fn unit_instructions(&self) -> u64 {
        self.skip_instructions
            + self.ff_instructions
            + self.warm_instructions
            + self.measure_instructions
    }

    /// Fraction of instructions executed in detailed (cycle-accurate) mode.
    ///
    /// This is the deterministic speedup proxy: wall-clock gains track how few
    /// instructions run through the full pipeline model.
    pub fn detailed_fraction(&self) -> f64 {
        (self.warm_instructions + self.measure_instructions) as f64
            / self.unit_instructions() as f64
    }
}

/// One extrapolated metric: the window mean and its 95% confidence interval.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct MetricEstimate {
    /// Mean over measurement windows.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (`1.96 * s / sqrt(n)`;
    /// zero when only one window was measured).
    pub ci95: f64,
}

impl MetricEstimate {
    /// Builds an estimate from per-window samples. Returns a zero estimate
    /// for an empty sample set.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return MetricEstimate::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        if samples.len() < 2 {
            return MetricEstimate { mean, ci95: 0.0 };
        }
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
        MetricEstimate {
            mean,
            ci95: 1.96 * (var / n).sqrt(),
        }
    }

    /// Builds an estimate from per-window `(numerator, denominator)` pairs
    /// using the ratio estimator `Σnum / Σden` (e.g. committed instructions
    /// over cycles for IPC).
    ///
    /// Averaging per-window ratios directly is biased upward: window length
    /// varies inversely with luck, so fast windows are over-weighted
    /// (Jensen's inequality on `E[1/T]`). The ratio estimator weights every
    /// denominator unit equally, matching what an exact run measures. The
    /// confidence interval uses the standard linearized variance of a ratio
    /// estimator over the window residuals `num_w − R·den_w`.
    pub fn from_ratio(pairs: &[(f64, f64)]) -> Self {
        let total_den: f64 = pairs.iter().map(|&(_, d)| d).sum();
        if pairs.is_empty() || total_den <= 0.0 {
            return MetricEstimate::default();
        }
        let total_num: f64 = pairs.iter().map(|&(n, _)| n).sum();
        let ratio = total_num / total_den;
        if pairs.len() < 2 {
            return MetricEstimate {
                mean: ratio,
                ci95: 0.0,
            };
        }
        let n = pairs.len() as f64;
        let mean_den = total_den / n;
        let residual_var = pairs
            .iter()
            .map(|&(num, den)| {
                let e = num - ratio * den;
                e * e
            })
            .sum::<f64>()
            / (n - 1.0);
        MetricEstimate {
            mean: ratio,
            ci95: 1.96 * (residual_var / n).sqrt() / mean_den,
        }
    }

    /// Whether `value` lies within the interval widened by `slack` (an
    /// absolute tolerance for window-count-starved runs).
    pub fn covers(&self, value: f64, slack: f64) -> bool {
        (value - self.mean).abs() <= self.ci95 + slack
    }
}

/// Extrapolated estimates of one sampled run, reported alongside exact runs.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SampledEstimate {
    /// Number of measurement windows that contributed samples.
    pub windows: u32,
    /// Aggregate (all-thread) IPC estimate.
    pub total_ipc: MetricEstimate,
    /// Per-thread IPC estimates, indexed by thread id.
    pub per_thread_ipc: Vec<MetricEstimate>,
    /// Fraction of the instruction budget executed in detailed mode.
    pub detailed_fraction: f64,
}

/// Identity header of a serialized warm checkpoint: everything needed to
/// decide whether a checkpoint can seed a given run.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CheckpointMeta {
    /// Checkpoint format version; readers reject other versions.
    pub schema_version: u32,
    /// Benchmark name per thread, in thread order.
    pub benchmarks: Vec<String>,
    /// Base seed the per-thread trace seeds were derived from.
    pub seed: u64,
    /// Number of hardware threads captured.
    pub num_threads: u32,
    /// Instructions per thread functionally fast-forwarded before capture.
    pub warmed_instructions: u64,
}

impl CheckpointMeta {
    /// Current checkpoint format version.
    pub const SCHEMA_VERSION: u32 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(SamplingConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_fields_rejected() {
        let c = SamplingConfig {
            measure_instructions: 0,
            ..SamplingConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SamplingConfig {
            ff_instructions: 0,
            ..SamplingConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SamplingConfig {
            min_windows: 0,
            ..SamplingConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn detailed_fraction_matches_cadence() {
        let c = SamplingConfig {
            skip_instructions: 0,
            ff_instructions: 9_000,
            warm_instructions: 200,
            measure_instructions: 800,
            min_windows: 2,
        };
        assert_eq!(c.unit_instructions(), 10_000);
        assert!((c.detailed_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn estimate_mean_and_ci() {
        let e = MetricEstimate::from_samples(&[1.0, 1.0, 1.0]);
        assert!((e.mean - 1.0).abs() < 1e-12);
        assert_eq!(e.ci95, 0.0);
        let e = MetricEstimate::from_samples(&[0.8, 1.2]);
        assert!((e.mean - 1.0).abs() < 1e-12);
        assert!(e.ci95 > 0.0);
        assert!(e.covers(1.0, 0.0));
        assert!(!e.covers(10.0, 0.0));
        assert_eq!(MetricEstimate::from_samples(&[]).mean, 0.0);
        let single = MetricEstimate::from_samples(&[2.5]);
        assert!((single.mean - 2.5).abs() < 1e-12);
        assert_eq!(single.ci95, 0.0);
    }

    #[test]
    fn ratio_estimate_weights_by_denominator() {
        // Two windows with equal instruction counts but very different cycle
        // counts: the ratio estimator matches the pooled IPC, not the mean of
        // per-window IPCs (which would be optimistically biased).
        let pairs = [(1_000.0, 1_000.0), (1_000.0, 4_000.0)];
        let e = MetricEstimate::from_ratio(&pairs);
        assert!((e.mean - 2_000.0 / 5_000.0).abs() < 1e-12);
        let naive = (1.0 + 0.25) / 2.0;
        assert!(e.mean < naive);
        assert!(e.ci95 > 0.0);
        assert_eq!(MetricEstimate::from_ratio(&[]).mean, 0.0);
        let single = MetricEstimate::from_ratio(&[(500.0, 1_000.0)]);
        assert!((single.mean - 0.5).abs() < 1e-12);
        assert_eq!(single.ci95, 0.0);
        assert_eq!(MetricEstimate::from_ratio(&[(1.0, 0.0)]).mean, 0.0);
    }

    #[test]
    fn sampling_config_serde_round_trip() {
        let c = SamplingConfig::default();
        let round = SamplingConfig::deserialize(&c.serialize()).unwrap();
        assert_eq!(round, c);
    }

    #[test]
    fn checkpoint_meta_round_trip() {
        let meta = CheckpointMeta {
            schema_version: CheckpointMeta::SCHEMA_VERSION,
            benchmarks: vec!["mlp-friendly".into(), "ilp-bound".into()],
            seed: 42,
            num_threads: 2,
            warmed_instructions: 10_000,
        };
        let round = CheckpointMeta::deserialize(&meta.serialize()).unwrap();
        assert_eq!(round, meta);
    }
}
