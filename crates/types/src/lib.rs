//! Common vocabulary types for the MLP-aware SMT fetch-policy reproduction.
//!
//! This crate defines the shared, dependency-free building blocks used by every
//! other crate in the workspace:
//!
//! * [`ThreadId`] and sequence-number newtypes ([`ids`]),
//! * the trace-level instruction representation ([`op::TraceOp`]),
//! * the packed per-instruction pipeline flags ([`flags::OpFlags`]),
//! * the simulated processor configuration ([`config::SmtConfig`], Table IV of the
//!   paper),
//! * per-thread and machine-wide statistics ([`stats`]),
//! * the read-only pipeline snapshot handed to fetch policies ([`snapshot`]),
//! * the adaptive policy engine's configuration and interval telemetry
//!   ([`adaptive`]),
//! * error types ([`error`]),
//! * the resilient engine's failure taxonomy ([`resilience`]),
//! * the sampled-simulation cadence and estimate types ([`sampling`]).
//!
//! # Example
//!
//! ```
//! use smt_types::config::SmtConfig;
//!
//! let cfg = SmtConfig::baseline(2);
//! assert_eq!(cfg.rob_size, 256);
//! assert_eq!(cfg.num_threads, 2);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod adaptive;
pub mod config;
pub mod error;
pub mod flags;
pub mod ids;
pub mod op;
pub mod resilience;
pub mod sampling;
pub mod snapshot;
pub mod stats;

pub use adaptive::{
    AdaptiveConfig, IntervalStats, PolicyResidency, SelectorKind, ThreadIntervalStats,
};
pub use config::{BusConfig, ChipConfig, SmtConfig};
pub use error::SimError;
pub use flags::OpFlags;
pub use ids::{SeqNum, ThreadId};
pub use op::{BranchInfo, MemInfo, OpKind, TraceOp};
pub use resilience::{CellError, CellErrorKind, CellOutcome, RunHealth, RunHealthStatus};
pub use sampling::{CheckpointMeta, MetricEstimate, SampledEstimate, SamplingConfig};
pub use snapshot::{SmtSnapshot, ThreadSnapshot};
pub use stats::{ChipStats, MachineStats, ThreadStats};
