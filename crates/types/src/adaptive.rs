//! Configuration and telemetry vocabulary of the adaptive policy engine.
//!
//! The adaptive engine (crate `smt-adapt`, driven by the pipeline in
//! `smt-core`) divides a run into fixed-length cycle intervals. At every
//! interval boundary the pipeline publishes an [`IntervalStats`] record — the
//! per-thread telemetry of the interval that just ended — to a policy
//! selector, which answers with the fetch policy to run for the next
//! interval. [`AdaptiveConfig`] names the selector, the candidate policies it
//! may choose from, and the interval geometry; it is serde-serializable so
//! experiment specs and the CLI can carry it.

use serde::{Deserialize, Serialize};

use crate::config::FetchPolicyKind;
use crate::error::SimError;
use crate::stats::MachineStats;

/// Which policy selector drives runtime fetch-policy switching.
///
/// Serializes as the short machine-readable [`SelectorKind::name`]
/// (e.g. `"sampling"`), which is also what spec files and the CLI accept.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SelectorKind {
    /// Never switch: run the first candidate policy for the whole simulation.
    /// This is the bit-for-bit legacy path — a machine with a `Static`
    /// selector behaves identically to one built without the adaptive engine.
    Static,
    /// Set-dueling style sampling: at the start of each epoch, trial every
    /// candidate policy for a few intervals each, then commit to the winner
    /// (highest interval throughput) for the rest of the epoch.
    Sampling,
    /// MLP-threshold switching: run the MLP-aware candidate while the
    /// measured long-latency-load rate and memory-level parallelism of the
    /// interval exceed their thresholds, the ILP candidate otherwise.
    MlpThreshold,
}

impl SelectorKind {
    /// Every implemented selector, in presentation order.
    pub const ALL: [SelectorKind; 3] = [
        SelectorKind::Static,
        SelectorKind::Sampling,
        SelectorKind::MlpThreshold,
    ];

    /// Short machine-readable name used in spec files and result tables.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::Static => "static",
            SelectorKind::Sampling => "sampling",
            SelectorKind::MlpThreshold => "mlp-threshold",
        }
    }

    /// Parses a [`SelectorKind::name`] string back into a selector.
    pub fn from_name(name: &str) -> Option<SelectorKind> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether the selector can ever switch away from the initial policy.
    pub fn is_dynamic(self) -> bool {
        !matches!(self, SelectorKind::Static)
    }
}

serde::named_enum_serde!(SelectorKind, "policy selector");

/// Full configuration of the adaptive policy engine for one core.
///
/// The engine evaluates the selector at every `interval_cycles`-cycle
/// boundary; `candidates[0]` is the policy the machine starts on (and, under
/// [`SelectorKind::Static`], never leaves).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AdaptiveConfig {
    /// The selector that picks the next interval's policy.
    pub selector: SelectorKind,
    /// Candidate fetch policies, most-preferred first; the machine starts on
    /// `candidates[0]`.
    pub candidates: Vec<FetchPolicyKind>,
    /// Interval length in cycles between selector evaluations.
    pub interval_cycles: u64,
    /// [`SelectorKind::Sampling`]: intervals spent trialling each candidate
    /// at the start of an epoch.
    pub sample_intervals: u64,
    /// [`SelectorKind::Sampling`]: intervals the epoch winner runs for after
    /// the sampling phase, before the next epoch starts.
    pub commit_intervals: u64,
    /// [`SelectorKind::MlpThreshold`]: long-latency loads per kilo-instruction
    /// at or above which an interval counts as memory-bound. The two
    /// candidates may appear in either order; the MLP-aware one (by
    /// [`FetchPolicyKind::is_mlp_aware`]) is the memory-bound choice.
    pub lll_per_kinst_threshold: f64,
    /// [`SelectorKind::MlpThreshold`]: measured MLP at or above which a
    /// memory-bound interval prefers the MLP-aware candidate.
    pub mlp_threshold: f64,
}

impl AdaptiveConfig {
    /// Default interval length between selector evaluations, in cycles.
    pub const DEFAULT_INTERVAL_CYCLES: u64 = 512;

    /// An adaptive configuration with the default interval geometry and
    /// thresholds.
    pub fn new(selector: SelectorKind, candidates: Vec<FetchPolicyKind>) -> Self {
        AdaptiveConfig {
            selector,
            candidates,
            interval_cycles: Self::DEFAULT_INTERVAL_CYCLES,
            sample_intervals: 1,
            commit_intervals: 8,
            lll_per_kinst_threshold: 4.0,
            mlp_threshold: 1.05,
        }
    }

    /// Returns a copy with a different interval length.
    pub fn with_interval_cycles(mut self, interval_cycles: u64) -> Self {
        self.interval_cycles = interval_cycles;
        self
    }

    /// Returns a copy with a different selector.
    pub fn with_selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// The policy the machine starts on (`candidates[0]`).
    ///
    /// # Panics
    ///
    /// Panics if the candidate list is empty (rejected by
    /// [`AdaptiveConfig::validate`]).
    pub fn initial_policy(&self) -> FetchPolicyKind {
        *self
            .candidates
            .first()
            .expect("validated adaptive config has candidates")
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty or duplicated
    /// candidate list, a zero interval, degenerate sampling geometry, or
    /// non-finite/negative thresholds.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.candidates.is_empty() {
            return Err(SimError::invalid_config(
                "adaptive.candidates: must name at least one fetch policy",
            ));
        }
        for (i, a) in self.candidates.iter().enumerate() {
            if self.candidates[..i].contains(a) {
                return Err(SimError::invalid_config(format!(
                    "adaptive.candidates: duplicate policy `{}`",
                    a.name()
                )));
            }
        }
        if self.interval_cycles == 0 {
            return Err(SimError::invalid_config(
                "adaptive.interval_cycles: must be non-zero",
            ));
        }
        if self.selector == SelectorKind::Sampling
            && (self.sample_intervals == 0 || self.commit_intervals == 0)
        {
            return Err(SimError::invalid_config(
                "adaptive.sample_intervals / adaptive.commit_intervals: must be non-zero \
                 for the sampling selector",
            ));
        }
        if self.selector == SelectorKind::MlpThreshold {
            let mlp_aware = self.candidates.iter().filter(|c| c.is_mlp_aware()).count();
            if self.candidates.len() != 2 || mlp_aware != 1 {
                return Err(SimError::invalid_config(
                    "adaptive.candidates: the mlp-threshold selector switches between exactly \
                     two policies, exactly one of them MLP-aware (in either order)",
                ));
            }
        }
        for (name, value) in [
            ("lll_per_kinst_threshold", self.lll_per_kinst_threshold),
            ("mlp_threshold", self.mlp_threshold),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(SimError::invalid_config(format!(
                    "adaptive.{name}: must be a finite non-negative number"
                )));
            }
        }
        Ok(())
    }
}

/// One policy's share of an adaptive run: the fraction of completed
/// intervals it was the installed fetch policy for.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PolicyResidency {
    /// The fetch policy.
    pub policy: FetchPolicyKind,
    /// Fraction of completed intervals the policy was active (sums to 1.0
    /// over a run's residency records).
    pub fraction: f64,
}

/// Per-thread telemetry of one completed interval.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ThreadIntervalStats {
    /// Instructions the thread committed during the interval.
    pub committed: u64,
    /// Long-latency loads (L3 or D-TLB misses) detected during the interval.
    pub long_latency_loads: u64,
    /// Fetch-policy flush events during the interval.
    pub policy_flushes: u64,
    /// Sum over the interval's MLP cycles of the outstanding long-latency
    /// load count (numerator of the Chou et al. MLP sample).
    pub mlp_outstanding_sum: u64,
    /// Cycles of the interval with at least one outstanding long-latency
    /// load (denominator of the MLP sample).
    pub mlp_cycles: u64,
}

impl ThreadIntervalStats {
    /// Long-latency loads per 1000 committed instructions over the interval.
    pub fn lll_per_kilo_instruction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.long_latency_loads as f64 * 1000.0 / self.committed as f64
        }
    }

    /// MLP sample of the interval: average outstanding long-latency loads
    /// over the cycles that had at least one (1.0 when none did).
    pub fn mlp(&self) -> f64 {
        if self.mlp_cycles == 0 {
            1.0
        } else {
            self.mlp_outstanding_sum as f64 / self.mlp_cycles as f64
        }
    }
}

/// Telemetry of one completed interval, published by the pipeline to the
/// policy selector at every interval boundary.
///
/// The record is a reusable buffer: the pipeline's interval collector
/// rewrites it in place at each boundary (no steady-state allocation), so
/// selectors must copy out anything they want to keep across intervals.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct IntervalStats {
    /// Cycles the interval spanned (the configured interval length, except
    /// for a possibly shorter interval right after a statistics reset).
    pub cycles: u64,
    /// Per-thread telemetry, indexed by thread id.
    pub threads: Vec<ThreadIntervalStats>,
}

impl IntervalStats {
    /// Creates a zeroed record for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        IntervalStats {
            cycles: 0,
            threads: vec![ThreadIntervalStats::default(); num_threads],
        }
    }

    /// Rewrites this record in place as a *cumulative* snapshot of `stats`
    /// (the counters since the last statistics reset; `cycles` is zeroed).
    /// The pipeline's interval collector captures one of these at every
    /// interval boundary and diffs the next boundary against it with
    /// [`IntervalStats::assign_delta`] — both operations reuse the record's
    /// buffers, so the steady state allocates nothing.
    pub fn capture(&mut self, stats: &MachineStats) {
        self.cycles = 0;
        self.threads.clear();
        self.threads
            .extend(stats.threads.iter().map(|t| ThreadIntervalStats {
                committed: t.committed_instructions,
                long_latency_loads: t.long_latency_loads,
                policy_flushes: t.policy_flushes,
                mlp_outstanding_sum: t.mlp_outstanding_sum,
                mlp_cycles: t.mlp_cycles,
            }));
    }

    /// Rewrites this record in place as the difference between `now` and the
    /// cumulative `base` snapshot (see [`IntervalStats::capture`]), spanning
    /// `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the shapes differ or a counter ran
    /// backwards, which would mean the baseline was not refreshed after a
    /// statistics reset.
    pub fn assign_delta(&mut self, base: &IntervalStats, now: &MachineStats, cycles: u64) {
        debug_assert_eq!(base.threads.len(), now.threads.len());
        self.cycles = cycles;
        self.threads
            .resize(now.threads.len(), ThreadIntervalStats::default());
        for (slot, (b, n)) in self
            .threads
            .iter_mut()
            .zip(base.threads.iter().zip(&now.threads))
        {
            *slot = ThreadIntervalStats {
                committed: delta(b.committed, n.committed_instructions),
                long_latency_loads: delta(b.long_latency_loads, n.long_latency_loads),
                policy_flushes: delta(b.policy_flushes, n.policy_flushes),
                mlp_outstanding_sum: delta(b.mlp_outstanding_sum, n.mlp_outstanding_sum),
                mlp_cycles: delta(b.mlp_cycles, n.mlp_cycles),
            };
        }
    }

    /// Instructions committed across all threads during the interval.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Aggregate IPC of the interval (all threads' commits over the
    /// interval's cycles).
    pub fn total_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.cycles as f64
        }
    }

    /// Long-latency loads per kilo-instruction aggregated over all threads.
    pub fn total_lll_per_kilo_instruction(&self) -> f64 {
        let committed = self.total_committed();
        if committed == 0 {
            return 0.0;
        }
        let lll: u64 = self.threads.iter().map(|t| t.long_latency_loads).sum();
        lll as f64 * 1000.0 / committed as f64
    }

    /// Machine-wide MLP sample of the interval (1.0 when no thread had an
    /// outstanding long-latency load).
    pub fn total_mlp(&self) -> f64 {
        let cycles: u64 = self.threads.iter().map(|t| t.mlp_cycles).sum();
        if cycles == 0 {
            return 1.0;
        }
        let sum: u64 = self.threads.iter().map(|t| t.mlp_outstanding_sum).sum();
        sum as f64 / cycles as f64
    }
}

fn delta(base: u64, now: u64) -> u64 {
    debug_assert!(now >= base, "interval counter ran backwards");
    now.saturating_sub(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_candidates() -> Vec<FetchPolicyKind> {
        vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush]
    }

    #[test]
    fn selector_names_round_trip() {
        for kind in SelectorKind::ALL {
            assert_eq!(SelectorKind::from_name(kind.name()), Some(kind));
        }
        assert!(SelectorKind::from_name("oracle").is_none());
        assert!(!SelectorKind::Static.is_dynamic());
        assert!(SelectorKind::Sampling.is_dynamic());
        assert!(SelectorKind::MlpThreshold.is_dynamic());
    }

    #[test]
    fn adaptive_config_validates() {
        let good = AdaptiveConfig::new(SelectorKind::Sampling, two_candidates());
        assert!(good.validate().is_ok());
        assert_eq!(good.initial_policy(), FetchPolicyKind::Icount);

        let mut empty = good.clone();
        empty.candidates.clear();
        assert!(empty.validate().is_err());

        let mut duplicated = good.clone();
        duplicated.candidates.push(FetchPolicyKind::Icount);
        assert!(duplicated.validate().is_err());

        let mut zero_interval = good.clone();
        zero_interval.interval_cycles = 0;
        assert!(zero_interval.validate().is_err());

        let mut zero_sampling = good.clone();
        zero_sampling.sample_intervals = 0;
        assert!(zero_sampling.validate().is_err());

        let mut three_for_threshold =
            AdaptiveConfig::new(SelectorKind::MlpThreshold, two_candidates());
        assert!(three_for_threshold.validate().is_ok());
        three_for_threshold.candidates.push(FetchPolicyKind::Flush);
        assert!(three_for_threshold.validate().is_err());

        // Either ordering is fine, but the pair must contain exactly one
        // MLP-aware policy for the roles to be identifiable.
        let reversed = AdaptiveConfig::new(
            SelectorKind::MlpThreshold,
            vec![FetchPolicyKind::MlpFlush, FetchPolicyKind::Icount],
        );
        assert!(reversed.validate().is_ok());
        let two_ilp = AdaptiveConfig::new(
            SelectorKind::MlpThreshold,
            vec![FetchPolicyKind::Icount, FetchPolicyKind::Flush],
        );
        assert!(two_ilp.validate().is_err());
        let two_mlp = AdaptiveConfig::new(
            SelectorKind::MlpThreshold,
            vec![FetchPolicyKind::MlpFlush, FetchPolicyKind::MlpStall],
        );
        assert!(two_mlp.validate().is_err());

        let mut bad_threshold = good.clone();
        bad_threshold.mlp_threshold = f64::NAN;
        assert!(bad_threshold.validate().is_err());
    }

    #[test]
    fn adaptive_config_serde_round_trips() {
        let config = AdaptiveConfig::new(SelectorKind::MlpThreshold, two_candidates())
            .with_interval_cycles(256);
        let round = AdaptiveConfig::deserialize(&config.serialize()).unwrap();
        assert_eq!(round, config);
        let mut value = config.serialize();
        if let serde::Value::Map(entries) = &mut value {
            entries.push(("selectorr".to_string(), serde::Value::Int(1)));
        }
        let err = AdaptiveConfig::deserialize(&value).unwrap_err().to_string();
        assert!(err.contains("selectorr"), "{err}");
    }

    #[test]
    fn interval_stats_deltas_and_rates() {
        let mut earlier = MachineStats::new(2);
        let mut now = MachineStats::new(2);
        earlier.threads[0].committed_instructions = 100;
        now.threads[0].committed_instructions = 600;
        now.threads[0].long_latency_loads = 5;
        now.threads[0].mlp_outstanding_sum = 30;
        now.threads[0].mlp_cycles = 10;
        now.threads[1].committed_instructions = 250;
        now.threads[1].policy_flushes = 2;

        let mut base = IntervalStats::new(2);
        base.capture(&earlier);
        assert_eq!(base.threads[0].committed, 100);
        let mut interval = IntervalStats::new(2);
        interval.assign_delta(&base, &now, 500);
        assert_eq!(interval.cycles, 500);
        assert_eq!(interval.threads[0].committed, 500);
        assert_eq!(interval.threads[1].policy_flushes, 2);
        assert!((interval.threads[0].lll_per_kilo_instruction() - 10.0).abs() < 1e-12);
        assert!((interval.threads[0].mlp() - 3.0).abs() < 1e-12);
        assert_eq!(interval.threads[1].mlp(), 1.0);
        assert_eq!(interval.total_committed(), 750);
        assert!((interval.total_ipc() - 1.5).abs() < 1e-12);
        assert!((interval.total_lll_per_kilo_instruction() - 5.0 / 0.75).abs() < 1e-12);
        assert!((interval.total_mlp() - 3.0).abs() < 1e-12);

        // The buffer is rewritten in place on reuse.
        base.capture(&now);
        interval.assign_delta(&base, &now, 100);
        assert_eq!(interval.total_committed(), 0);
        assert_eq!(interval.total_ipc(), 0.0);
        assert_eq!(interval.total_mlp(), 1.0);

        let round = IntervalStats::deserialize(&interval.serialize()).unwrap();
        assert_eq!(round, interval);
    }
}
