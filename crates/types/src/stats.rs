//! Simulation statistics.
//!
//! [`ThreadStats`] accumulates everything the experiments in Section 6 need for a
//! single hardware thread; [`MachineStats`] aggregates per-thread statistics plus
//! machine-global cycle counts. Derived quantities (IPC, CPI, measured MLP, miss
//! rates, predictor accuracies) are exposed as methods so that raw counters stay
//! the single source of truth.

use serde::{Deserialize, Serialize};

use crate::ids::ThreadId;

/// Counters describing one hardware thread's execution.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ThreadStats {
    /// Dynamic instructions committed.
    pub committed_instructions: u64,
    /// Dynamic instructions fetched (including instructions later squashed).
    pub fetched_instructions: u64,
    /// Instructions squashed by branch mispredictions.
    pub squashed_by_branch: u64,
    /// Instructions squashed by fetch-policy flushes.
    pub squashed_by_policy: u64,
    /// Number of fetch-policy flush events.
    pub policy_flushes: u64,
    /// Cycles during which the fetch policy gated (stalled) this thread.
    pub fetch_gated_cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredictions: u64,
    /// L1 data cache load misses.
    pub l1d_load_misses: u64,
    /// L2 load misses.
    pub l2_load_misses: u64,
    /// L3 load misses (off-chip accesses).
    pub l3_load_misses: u64,
    /// D-TLB misses.
    pub dtlb_misses: u64,
    /// Long-latency loads: L3 misses plus D-TLB misses (the paper's definition).
    pub long_latency_loads: u64,
    /// Loads whose miss was fully or partially covered by the prefetcher.
    pub prefetch_hits: u64,
    /// Prefetch requests issued on behalf of this thread.
    pub prefetches_issued: u64,
    /// Sum over all cycles with at least one outstanding long-latency load of the
    /// number of outstanding long-latency loads (numerator of the Chou et al. MLP
    /// definition).
    pub mlp_outstanding_sum: u64,
    /// Number of cycles with at least one outstanding long-latency load
    /// (denominator of the MLP definition).
    pub mlp_cycles: u64,
    /// Long-latency load predictor: correct hit/miss predictions.
    pub lll_pred_correct: u64,
    /// Long-latency load predictor: total predictions (one per executed load).
    pub lll_pred_total: u64,
    /// Long-latency load predictor: correct *miss* predictions.
    pub lll_pred_miss_correct: u64,
    /// Long-latency load predictor: total actual misses seen.
    pub lll_pred_miss_total: u64,
    /// MLP predictor: true positives (predicted MLP, there was MLP).
    pub mlp_pred_true_positive: u64,
    /// MLP predictor: true negatives (predicted no MLP, there was none).
    pub mlp_pred_true_negative: u64,
    /// MLP predictor: false positives (predicted MLP, there was none).
    pub mlp_pred_false_positive: u64,
    /// MLP predictor: false negatives (predicted no MLP, there was MLP).
    pub mlp_pred_false_negative: u64,
    /// MLP distance predictor: predictions at least as large as the actual distance.
    pub mlp_distance_far_enough: u64,
    /// MLP distance predictor: total distance predictions evaluated.
    pub mlp_distance_total: u64,
    /// Cycles this thread spent as the "continue oldest thread" (COT) owner.
    pub cot_owner_cycles: u64,
    /// Histogram of predicted MLP distances at long-latency-load detection,
    /// [`ThreadStats::MLP_HIST_BIN`] instructions per bin (used for Figure 4).
    pub mlp_distance_histogram: Vec<u64>,
}

impl ThreadStats {
    /// Width of one bin of [`ThreadStats::mlp_distance_histogram`], in instructions.
    pub const MLP_HIST_BIN: u32 = 8;

    /// Creates an all-zero statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one predicted MLP distance observation into the histogram.
    pub fn record_mlp_distance(&mut self, distance: u32) {
        let bin = (distance / Self::MLP_HIST_BIN) as usize;
        if self.mlp_distance_histogram.len() <= bin {
            self.mlp_distance_histogram.resize(bin + 1, 0);
        }
        self.mlp_distance_histogram[bin] += 1;
    }

    /// Cumulative distribution of predicted MLP distances: for each histogram bin
    /// upper bound (in instructions), the fraction of observations at or below it.
    /// Returns an empty vector when no observations were recorded.
    pub fn mlp_distance_cdf(&self) -> Vec<(u32, f64)> {
        let total: u64 = self.mlp_distance_histogram.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.mlp_distance_histogram
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                acc += count;
                (
                    (i as u32 + 1) * Self::MLP_HIST_BIN,
                    acc as f64 / total as f64,
                )
            })
            .collect()
    }

    /// Instructions per cycle given a machine cycle count.
    pub fn ipc(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / cycles as f64
        }
    }

    /// Cycles per instruction given a machine cycle count.
    pub fn cpi(&self, cycles: u64) -> f64 {
        if self.committed_instructions == 0 {
            f64::INFINITY
        } else {
            cycles as f64 / self.committed_instructions as f64
        }
    }

    /// Measured memory-level parallelism: average number of outstanding
    /// long-latency loads over the cycles with at least one outstanding
    /// (Chou et al. 2004, used in Table I / Figure 1).
    pub fn measured_mlp(&self) -> f64 {
        if self.mlp_cycles == 0 {
            1.0
        } else {
            self.mlp_outstanding_sum as f64 / self.mlp_cycles as f64
        }
    }

    /// Long-latency loads per 1000 committed instructions (Table I "LLL" column).
    pub fn lll_per_kilo_instruction(&self) -> f64 {
        if self.committed_instructions == 0 {
            0.0
        } else {
            self.long_latency_loads as f64 * 1000.0 / self.committed_instructions as f64
        }
    }

    /// Long-latency load predictor accuracy over all loads (Figure 6).
    pub fn lll_predictor_accuracy(&self) -> f64 {
        if self.lll_pred_total == 0 {
            1.0
        } else {
            self.lll_pred_correct as f64 / self.lll_pred_total as f64
        }
    }

    /// Long-latency load predictor accuracy over actual misses only.
    pub fn lll_predictor_miss_accuracy(&self) -> f64 {
        if self.lll_pred_miss_total == 0 {
            1.0
        } else {
            self.lll_pred_miss_correct as f64 / self.lll_pred_miss_total as f64
        }
    }

    /// Binary MLP prediction accuracy: true positives plus true negatives over all
    /// classified long-latency loads (Figure 7).
    pub fn mlp_predictor_accuracy(&self) -> f64 {
        let total = self.mlp_pred_true_positive
            + self.mlp_pred_true_negative
            + self.mlp_pred_false_positive
            + self.mlp_pred_false_negative;
        if total == 0 {
            1.0
        } else {
            (self.mlp_pred_true_positive + self.mlp_pred_true_negative) as f64 / total as f64
        }
    }

    /// Fraction of MLP-distance predictions that were "far enough" (Figure 8).
    pub fn mlp_distance_accuracy(&self) -> f64 {
        if self.mlp_distance_total == 0 {
            1.0
        } else {
            self.mlp_distance_far_enough as f64 / self.mlp_distance_total as f64
        }
    }

    /// Branch misprediction rate per committed branch.
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredictions as f64 / self.branches as f64
        }
    }

    /// Merges another statistics record into this one (used when aggregating
    /// across simulation chunks).
    pub fn merge(&mut self, other: &ThreadStats) {
        self.committed_instructions += other.committed_instructions;
        self.fetched_instructions += other.fetched_instructions;
        self.squashed_by_branch += other.squashed_by_branch;
        self.squashed_by_policy += other.squashed_by_policy;
        self.policy_flushes += other.policy_flushes;
        self.fetch_gated_cycles += other.fetch_gated_cycles;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.branch_mispredictions += other.branch_mispredictions;
        self.l1d_load_misses += other.l1d_load_misses;
        self.l2_load_misses += other.l2_load_misses;
        self.l3_load_misses += other.l3_load_misses;
        self.dtlb_misses += other.dtlb_misses;
        self.long_latency_loads += other.long_latency_loads;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetches_issued += other.prefetches_issued;
        self.mlp_outstanding_sum += other.mlp_outstanding_sum;
        self.mlp_cycles += other.mlp_cycles;
        self.lll_pred_correct += other.lll_pred_correct;
        self.lll_pred_total += other.lll_pred_total;
        self.lll_pred_miss_correct += other.lll_pred_miss_correct;
        self.lll_pred_miss_total += other.lll_pred_miss_total;
        self.mlp_pred_true_positive += other.mlp_pred_true_positive;
        self.mlp_pred_true_negative += other.mlp_pred_true_negative;
        self.mlp_pred_false_positive += other.mlp_pred_false_positive;
        self.mlp_pred_false_negative += other.mlp_pred_false_negative;
        self.mlp_distance_far_enough += other.mlp_distance_far_enough;
        self.mlp_distance_total += other.mlp_distance_total;
        self.cot_owner_cycles += other.cot_owner_cycles;
        if self.mlp_distance_histogram.len() < other.mlp_distance_histogram.len() {
            self.mlp_distance_histogram
                .resize(other.mlp_distance_histogram.len(), 0);
        }
        for (i, v) in other.mlp_distance_histogram.iter().enumerate() {
            self.mlp_distance_histogram[i] += v;
        }
    }
}

/// Statistics for a whole simulated machine run.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct MachineStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-thread statistics, indexed by thread id.
    pub threads: Vec<ThreadStats>,
}

impl MachineStats {
    /// Creates a zeroed record for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        MachineStats {
            cycles: 0,
            threads: vec![ThreadStats::default(); num_threads],
        }
    }

    /// Per-thread statistics accessor.
    ///
    /// # Panics
    ///
    /// Panics if the thread id is out of range for this record.
    pub fn thread(&self, t: ThreadId) -> &ThreadStats {
        &self.threads[t.index()]
    }

    /// Mutable per-thread statistics accessor.
    ///
    /// # Panics
    ///
    /// Panics if the thread id is out of range for this record.
    pub fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadStats {
        &mut self.threads[t.index()]
    }

    /// Aggregate instructions per cycle across all threads (total throughput IPC).
    pub fn total_ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let total: u64 = self.threads.iter().map(|t| t.committed_instructions).sum();
        total as f64 / self.cycles as f64
    }

    /// Per-thread IPC values in thread order.
    pub fn per_thread_ipc(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.ipc(self.cycles)).collect()
    }
}

/// Statistics for a whole chip (CMP-of-SMT) run: one [`MachineStats`] per
/// core plus the chip-wide cycle count (cores step in lockstep, so every
/// core's cycle count equals the chip's).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ChipStats {
    /// Total simulated cycles (identical across cores).
    pub cycles: u64,
    /// Per-core statistics, indexed by core id.
    pub cores: Vec<MachineStats>,
}

impl ChipStats {
    /// Creates a zeroed record for a chip of `num_cores` cores with
    /// `threads_per_core` hardware threads each.
    pub fn new(num_cores: usize, threads_per_core: usize) -> Self {
        ChipStats {
            cycles: 0,
            cores: vec![MachineStats::new(threads_per_core); num_cores],
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Per-thread statistics in `(core, thread)` order, flattened across the
    /// chip.
    pub fn threads(&self) -> impl Iterator<Item = &ThreadStats> {
        self.cores.iter().flat_map(|c| c.threads.iter())
    }

    /// Committed instructions summed over every thread of every core.
    pub fn total_committed(&self) -> u64 {
        self.threads().map(|t| t.committed_instructions).sum()
    }

    /// Chip-wide instructions per cycle (sum of all cores' throughput).
    pub fn total_ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_committed() as f64 / self.cycles as f64
    }

    /// Aggregate IPC of each core, in core order.
    pub fn per_core_ipc(&self) -> Vec<f64> {
        self.cores
            .iter()
            .map(|c| {
                if self.cycles == 0 {
                    0.0
                } else {
                    c.threads
                        .iter()
                        .map(|t| t.committed_instructions)
                        .sum::<u64>() as f64
                        / self.cycles as f64
                }
            })
            .collect()
    }

    /// Per-thread IPC in `(core, thread)` order, flattened across the chip.
    pub fn per_thread_ipc(&self) -> Vec<f64> {
        self.threads().map(|t| t.ipc(self.cycles)).collect()
    }
}

#[cfg(test)]
mod tests {
    // The tests intentionally build up sparse counter records field by field.
    #![allow(clippy::field_reassign_with_default)]

    use super::*;

    #[test]
    fn ipc_cpi_inverse() {
        let mut s = ThreadStats::default();
        s.committed_instructions = 500;
        assert!((s.ipc(1000) - 0.5).abs() < 1e-12);
        assert!((s.cpi(1000) - 2.0).abs() < 1e-12);
        assert_eq!(ThreadStats::default().ipc(100), 0.0);
        assert!(ThreadStats::default().cpi(100).is_infinite());
    }

    #[test]
    fn measured_mlp_definition() {
        let mut s = ThreadStats::default();
        assert_eq!(s.measured_mlp(), 1.0);
        s.mlp_cycles = 100;
        s.mlp_outstanding_sum = 340;
        assert!((s.measured_mlp() - 3.4).abs() < 1e-12);
    }

    #[test]
    fn lll_per_kilo() {
        let mut s = ThreadStats::default();
        s.committed_instructions = 10_000;
        s.long_latency_loads = 173;
        assert!((s.lll_per_kilo_instruction() - 17.3).abs() < 1e-12);
    }

    #[test]
    fn predictor_accuracies() {
        let mut s = ThreadStats::default();
        s.lll_pred_total = 200;
        s.lll_pred_correct = 198;
        assert!((s.lll_predictor_accuracy() - 0.99).abs() < 1e-12);
        s.mlp_pred_true_positive = 70;
        s.mlp_pred_true_negative = 20;
        s.mlp_pred_false_positive = 5;
        s.mlp_pred_false_negative = 5;
        assert!((s.mlp_predictor_accuracy() - 0.9).abs() < 1e-12);
        s.mlp_distance_total = 10;
        s.mlp_distance_far_enough = 9;
        assert!((s.mlp_distance_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mlp_distance_histogram_and_cdf() {
        let mut s = ThreadStats::default();
        assert!(s.mlp_distance_cdf().is_empty());
        s.record_mlp_distance(0);
        s.record_mlp_distance(5);
        s.record_mlp_distance(20);
        s.record_mlp_distance(100);
        let cdf = s.mlp_distance_cdf();
        assert_eq!(cdf.first().unwrap().0, ThreadStats::MLP_HIST_BIN);
        assert!((cdf.first().unwrap().1 - 0.5).abs() < 1e-12);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // CDF is non-decreasing.
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn merge_adds_histograms() {
        let mut a = ThreadStats::default();
        a.record_mlp_distance(3);
        let mut b = ThreadStats::default();
        b.record_mlp_distance(3);
        b.record_mlp_distance(90);
        a.merge(&b);
        assert_eq!(a.mlp_distance_histogram[0], 2);
        assert_eq!(a.mlp_distance_histogram.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ThreadStats::default();
        a.committed_instructions = 10;
        a.long_latency_loads = 2;
        let mut b = ThreadStats::default();
        b.committed_instructions = 5;
        b.long_latency_loads = 1;
        a.merge(&b);
        assert_eq!(a.committed_instructions, 15);
        assert_eq!(a.long_latency_loads, 3);
    }

    #[test]
    fn chip_stats_aggregation() {
        let mut chip = ChipStats::new(2, 2);
        chip.cycles = 1000;
        chip.cores[0]
            .thread_mut(ThreadId::new(0))
            .committed_instructions = 400;
        chip.cores[0]
            .thread_mut(ThreadId::new(1))
            .committed_instructions = 100;
        chip.cores[1]
            .thread_mut(ThreadId::new(0))
            .committed_instructions = 500;
        assert_eq!(chip.num_cores(), 2);
        assert_eq!(chip.total_committed(), 1000);
        assert!((chip.total_ipc() - 1.0).abs() < 1e-12);
        let per_core = chip.per_core_ipc();
        assert!((per_core[0] - 0.5).abs() < 1e-12);
        assert!((per_core[1] - 0.5).abs() < 1e-12);
        let per_thread = chip.per_thread_ipc();
        assert_eq!(per_thread.len(), 4);
        assert!((per_thread[0] - 0.4).abs() < 1e-12);
        assert!((per_thread[2] - 0.5).abs() < 1e-12);
        // Zero-cycle records report zero throughput rather than dividing by 0.
        assert_eq!(ChipStats::new(1, 1).total_ipc(), 0.0);
        assert_eq!(ChipStats::new(1, 1).per_core_ipc(), vec![0.0]);
    }

    #[test]
    fn chip_stats_serde_round_trips() {
        let mut chip = ChipStats::new(2, 1);
        chip.cycles = 7;
        chip.cores[1].thread_mut(ThreadId::new(0)).loads = 3;
        let round = ChipStats::deserialize(&chip.serialize()).unwrap();
        assert_eq!(round, chip);
    }

    #[test]
    fn machine_stats_aggregation() {
        let mut m = MachineStats::new(2);
        m.cycles = 1000;
        m.thread_mut(ThreadId::new(0)).committed_instructions = 800;
        m.thread_mut(ThreadId::new(1)).committed_instructions = 200;
        assert!((m.total_ipc() - 1.0).abs() < 1e-12);
        let ipcs = m.per_thread_ipc();
        assert!((ipcs[0] - 0.8).abs() < 1e-12);
        assert!((ipcs[1] - 0.2).abs() < 1e-12);
    }
}
