//! Read-only pipeline state handed to fetch policies each cycle.
//!
//! The pipeline (in `smt_core`) owns all of the machine state; fetch policies (in
//! `smt_fetch`) are notified of events and, once per cycle, receive an
//! [`SmtSnapshot`] describing per-thread occupancy so that they can pick fetch
//! priorities and resource limits without a circular crate dependency.

use serde::{Deserialize, Serialize};

use crate::ids::ThreadId;

/// Per-thread occupancy and status visible to the fetch policy.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ThreadSnapshot {
    /// Whether the thread still has instructions left to fetch.
    pub active: bool,
    /// ICOUNT value: instructions in the front-end pipeline plus the instruction
    /// queues (the quantity the ICOUNT policy balances).
    pub icount: u32,
    /// Instructions currently occupying ROB entries.
    pub rob_occupancy: u32,
    /// Load/store queue entries occupied.
    pub lsq_occupancy: u32,
    /// Integer issue-queue entries occupied.
    pub iq_int_occupancy: u32,
    /// Floating-point issue-queue entries occupied.
    pub iq_fp_occupancy: u32,
    /// Integer rename registers in use.
    pub rename_int_used: u32,
    /// Floating-point rename registers in use.
    pub rename_fp_used: u32,
    /// Number of long-latency loads (L3 / D-TLB misses) currently outstanding.
    pub outstanding_long_latency_loads: u32,
    /// Number of L1 data-cache misses currently outstanding (DCRA's memory-intensity
    /// signal).
    pub outstanding_l1d_misses: u32,
    /// Cycle at which the oldest currently-outstanding long-latency load was
    /// detected, if any (used by the continue-oldest-thread rule).
    pub oldest_lll_cycle: Option<u64>,
    /// Whether the front end of this thread is currently gated by the fetch policy.
    pub fetch_gated: bool,
    /// Instructions fetched since the most recent long-latency load that triggered
    /// a policy decision (used by MLP-distance bounded fetching).
    pub fetched_since_trigger: u32,
}

/// Machine-wide snapshot passed to [`smt_fetch`]-style policies once per cycle.
///
/// [`smt_fetch`]: https://docs.rs/smt-fetch
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SmtSnapshot {
    /// Current cycle number.
    pub cycle: u64,
    /// Per-thread state, indexed by thread id.
    pub threads: Vec<ThreadSnapshot>,
    /// Total ROB entries occupied (all threads).
    pub rob_total_occupancy: u32,
    /// Total LSQ entries occupied.
    pub lsq_total_occupancy: u32,
    /// Total integer issue-queue entries occupied.
    pub iq_int_total_occupancy: u32,
    /// Total floating-point issue-queue entries occupied.
    pub iq_fp_total_occupancy: u32,
    /// Integer rename registers in use (all threads).
    pub rename_int_total_used: u32,
    /// Floating-point rename registers in use (all threads).
    pub rename_fp_total_used: u32,
    /// Whether the previous cycle ended with a dispatch-blocking resource stall
    /// (full ROB/IQ/LSQ or no rename registers) — the trigger for the
    /// flush-at-resource-stall policy alternatives.
    pub resource_stalled: bool,
}

impl SmtSnapshot {
    /// Creates an all-zero snapshot for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        SmtSnapshot {
            cycle: 0,
            threads: vec![ThreadSnapshot::default(); num_threads],
            rob_total_occupancy: 0,
            lsq_total_occupancy: 0,
            iq_int_total_occupancy: 0,
            iq_fp_total_occupancy: 0,
            rename_int_total_used: 0,
            rename_fp_total_used: 0,
            resource_stalled: false,
        }
    }

    /// Number of hardware threads described by the snapshot.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Prepares a reused snapshot buffer for a new cycle: stamps the cycle
    /// number and clears the per-cycle `resource_stalled` flag. The owner (the
    /// pipeline) then rewrites every per-thread entry and occupancy total in
    /// place, so a single snapshot allocation serves the whole simulation.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.resource_stalled = false;
    }

    /// Per-thread accessor.
    ///
    /// # Panics
    ///
    /// Panics if the thread id is out of range for this snapshot.
    pub fn thread(&self, t: ThreadId) -> &ThreadSnapshot {
        &self.threads[t.index()]
    }

    /// Returns `true` when every active thread currently has at least one
    /// outstanding long-latency load (the situation the COT rule arbitrates).
    pub fn all_active_threads_stalled_on_memory(&self) -> bool {
        let mut any_active = false;
        for t in &self.threads {
            if t.active {
                any_active = true;
                if t.outstanding_long_latency_loads == 0 {
                    return false;
                }
            }
        }
        any_active
    }

    /// The active thread whose oldest outstanding long-latency load is oldest — the
    /// thread the continue-oldest-thread (COT) rule gives priority to.
    pub fn oldest_memory_stalled_thread(&self) -> Option<ThreadId> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.active)
            .filter_map(|(i, t)| t.oldest_lll_cycle.map(|c| (i, c)))
            .min_by_key(|&(i, c)| (c, i))
            .map(|(i, _)| ThreadId::new(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_construction() {
        let s = SmtSnapshot::new(4);
        assert_eq!(s.num_threads(), 4);
        assert_eq!(s.thread(ThreadId::new(3)).icount, 0);
        assert!(!s.all_active_threads_stalled_on_memory());
        assert!(s.oldest_memory_stalled_thread().is_none());
    }

    #[test]
    fn begin_cycle_resets_per_cycle_state_only() {
        let mut s = SmtSnapshot::new(2);
        s.threads[0].icount = 7;
        s.resource_stalled = true;
        s.begin_cycle(42);
        assert_eq!(s.cycle, 42);
        assert!(!s.resource_stalled);
        // Per-thread entries are the owner's responsibility and stay put.
        assert_eq!(s.threads[0].icount, 7);
    }

    #[test]
    fn all_stalled_detection() {
        let mut s = SmtSnapshot::new(2);
        s.threads[0].active = true;
        s.threads[0].outstanding_long_latency_loads = 1;
        s.threads[0].oldest_lll_cycle = Some(100);
        s.threads[1].active = true;
        s.threads[1].outstanding_long_latency_loads = 0;
        assert!(!s.all_active_threads_stalled_on_memory());
        s.threads[1].outstanding_long_latency_loads = 2;
        s.threads[1].oldest_lll_cycle = Some(90);
        assert!(s.all_active_threads_stalled_on_memory());
        assert_eq!(s.oldest_memory_stalled_thread(), Some(ThreadId::new(1)));
    }

    #[test]
    fn inactive_threads_ignored_for_cot() {
        let mut s = SmtSnapshot::new(2);
        s.threads[0].active = false;
        s.threads[0].outstanding_long_latency_loads = 5;
        s.threads[0].oldest_lll_cycle = Some(1);
        s.threads[1].active = true;
        s.threads[1].outstanding_long_latency_loads = 1;
        s.threads[1].oldest_lll_cycle = Some(50);
        assert_eq!(s.oldest_memory_stalled_thread(), Some(ThreadId::new(1)));
        assert!(s.all_active_threads_stalled_on_memory());
    }

    #[test]
    fn cot_tie_breaks_by_thread_id() {
        let mut s = SmtSnapshot::new(2);
        for t in &mut s.threads {
            t.active = true;
            t.outstanding_long_latency_loads = 1;
            t.oldest_lll_cycle = Some(10);
        }
        assert_eq!(s.oldest_memory_stalled_thread(), Some(ThreadId::new(0)));
    }
}
