//! Packed per-instruction pipeline status flags.
//!
//! The pipeline's struct-of-arrays instruction window keeps all boolean
//! per-instruction state in one 16-bit word per slot, so the phase loops that
//! only test a flag or two (commit's `dispatched && issued && completed` check,
//! the issue scan's `dispatched && !issued` filter) stream a dense `u16` column
//! instead of dragging whole ~100-byte records through the cache.

/// Packed boolean pipeline state of one in-flight instruction.
///
/// Bits are accessed through the named getter/setter pairs; the raw word is
/// deliberately private so call sites cannot invent unnamed bits.
///
/// # Example
///
/// ```
/// use smt_types::OpFlags;
///
/// let mut f = OpFlags::default();
/// assert!(!f.dispatched());
/// f.set_dispatched(true);
/// f.set_issued(true);
/// assert!(f.dispatched() && f.issued() && !f.completed());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct OpFlags {
    bits: u16,
}

macro_rules! op_flag {
    ($get:ident, $set:ident, $bit:expr, $doc:expr) => {
        #[doc = $doc]
        #[inline(always)]
        pub fn $get(self) -> bool {
            self.bits & (1 << $bit) != 0
        }

        /// Sets the flag read by the getter of the same name.
        #[inline(always)]
        pub fn $set(&mut self, value: bool) {
            if value {
                self.bits |= 1 << $bit;
            } else {
                self.bits &= !(1 << $bit);
            }
        }
    };
}

impl OpFlags {
    op_flag!(
        dispatched,
        set_dispatched,
        0,
        "Whether the instruction has been renamed/dispatched into the backend."
    );
    op_flag!(
        issued,
        set_issued,
        1,
        "Whether the instruction has issued to a functional unit."
    );
    op_flag!(
        completed,
        set_completed,
        2,
        "Whether execution has completed (result available)."
    );
    op_flag!(
        uses_fp_iq,
        set_uses_fp_iq,
        3,
        "Whether the instruction occupies the floating-point issue queue."
    );
    op_flag!(
        uses_lsq,
        set_uses_lsq,
        4,
        "Whether the instruction occupies a load/store queue entry."
    );
    op_flag!(
        has_dest,
        set_has_dest,
        5,
        "Whether the instruction allocates a rename register."
    );
    op_flag!(
        dest_fp,
        set_dest_fp,
        6,
        "Destination register class is floating point."
    );
    op_flag!(
        predicted_lll,
        set_predicted_lll,
        7,
        "Front-end long-latency prediction (loads only)."
    );
    op_flag!(
        predicted_has_mlp,
        set_predicted_has_mlp,
        8,
        "Binary MLP prediction."
    );
    op_flag!(
        is_long_latency,
        set_is_long_latency,
        9,
        "Whether the load was detected to be long latency at execute."
    );
    op_flag!(
        l1_missed,
        set_l1_missed,
        10,
        "Whether the load missed in the L1 data cache (DCRA's signal)."
    );
    op_flag!(
        mispredicted,
        set_mispredicted,
        11,
        "Whether the branch was mispredicted (squash + redirect at completion)."
    );
    op_flag!(
        predicted_taken,
        set_predicted_taken,
        12,
        "Whether the branch was predicted taken at fetch (ends the fetch group)."
    );

    /// The commit-readiness predicate (`dispatched && issued && completed`) as a
    /// single mask test.
    #[inline(always)]
    pub fn commit_ready(self) -> bool {
        const MASK: u16 = 0b111;
        self.bits & MASK == MASK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_independent() {
        let mut f = OpFlags::default();
        let setters: [fn(&mut OpFlags, bool); 13] = [
            OpFlags::set_dispatched,
            OpFlags::set_issued,
            OpFlags::set_completed,
            OpFlags::set_uses_fp_iq,
            OpFlags::set_uses_lsq,
            OpFlags::set_has_dest,
            OpFlags::set_dest_fp,
            OpFlags::set_predicted_lll,
            OpFlags::set_predicted_has_mlp,
            OpFlags::set_is_long_latency,
            OpFlags::set_l1_missed,
            OpFlags::set_mispredicted,
            OpFlags::set_predicted_taken,
        ];
        let getters: [fn(OpFlags) -> bool; 13] = [
            OpFlags::dispatched,
            OpFlags::issued,
            OpFlags::completed,
            OpFlags::uses_fp_iq,
            OpFlags::uses_lsq,
            OpFlags::has_dest,
            OpFlags::dest_fp,
            OpFlags::predicted_lll,
            OpFlags::predicted_has_mlp,
            OpFlags::is_long_latency,
            OpFlags::l1_missed,
            OpFlags::mispredicted,
            OpFlags::predicted_taken,
        ];
        for (i, set) in setters.iter().enumerate() {
            set(&mut f, true);
            for (j, get) in getters.iter().enumerate() {
                assert_eq!(get(f), j <= i, "bit {j} after setting {i}");
            }
        }
        for (i, set) in setters.iter().enumerate() {
            set(&mut f, false);
            for (j, get) in getters.iter().enumerate() {
                assert_eq!(get(f), j > i, "bit {j} after clearing {i}");
            }
        }
    }

    #[test]
    fn commit_ready_needs_all_three() {
        let mut f = OpFlags::default();
        f.set_dispatched(true);
        f.set_issued(true);
        assert!(!f.commit_ready());
        f.set_completed(true);
        assert!(f.commit_ready());
        f.set_mispredicted(true);
        assert!(f.commit_ready());
        f.set_issued(false);
        assert!(!f.commit_ready());
    }
}
