//! Identifier newtypes used throughout the simulator.

use std::fmt;

/// Identifies one hardware thread (context) of the SMT processor.
///
/// The baseline configurations of the paper use two or four threads; the
/// simulator supports any count up to [`ThreadId::MAX_THREADS`].
///
/// # Example
///
/// ```
/// use smt_types::ThreadId;
/// let t = ThreadId::new(1);
/// assert_eq!(t.index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ThreadId(u8);

impl ThreadId {
    /// Upper bound on the number of hardware threads supported by the simulator.
    pub const MAX_THREADS: usize = 8;

    /// Creates a thread identifier from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ThreadId::MAX_THREADS`.
    pub fn new(index: usize) -> Self {
        assert!(
            index < Self::MAX_THREADS,
            "thread index {index} exceeds supported maximum {}",
            Self::MAX_THREADS
        );
        ThreadId(index as u8)
    }

    /// Returns the zero-based index of this thread.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` thread identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `n > ThreadId::MAX_THREADS`.
    pub fn all(n: usize) -> impl Iterator<Item = ThreadId> {
        assert!(n <= Self::MAX_THREADS);
        (0..n).map(ThreadId::new)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<ThreadId> for usize {
    fn from(t: ThreadId) -> usize {
        t.index()
    }
}

/// A per-thread dynamic instruction sequence number.
///
/// Sequence numbers start at zero for the first instruction a thread fetches and
/// increase by one per dynamic instruction. They identify instructions across
/// pipeline stages and are used to express flush points ("squash everything
/// younger than sequence number `s`").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The first sequence number of any thread.
    pub const ZERO: SeqNum = SeqNum(0);

    /// Returns the next sequence number.
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Number of dynamic instructions between `self` and an older `other`
    /// (saturating at zero when `other` is younger).
    pub fn distance_from(self, other: SeqNum) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        for i in 0..ThreadId::MAX_THREADS {
            assert_eq!(ThreadId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic]
    fn thread_id_out_of_range_panics() {
        let _ = ThreadId::new(ThreadId::MAX_THREADS);
    }

    #[test]
    fn thread_id_all_enumerates_in_order() {
        let v: Vec<usize> = ThreadId::all(4).map(|t| t.index()).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn seqnum_ordering_and_distance() {
        let a = SeqNum(10);
        let b = a.next();
        assert!(b > a);
        assert_eq!(b.distance_from(a), 1);
        assert_eq!(a.distance_from(b), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ThreadId::new(2).to_string(), "T2");
        assert_eq!(SeqNum(7).to_string(), "#7");
    }
}
