//! Thread-to-core allocation policies for the chip-level simulator.
//!
//! When a multiprogram workload runs on a CMP of SMT cores, *which threads
//! share a core* matters as much as the per-core fetch policy: co-located
//! threads compete for the private L1/L2 and the core's issue bandwidth,
//! while threads on different cores compete only for the shared LLC and the
//! memory bus (Navarro et al., *A New Family of Thread to Core Allocation
//! Policies for an SMT ARM Processor*). A [`ThreadAllocationPolicy`] maps the
//! workload's threads onto cores at experiment setup:
//!
//! * [`RoundRobinAllocation`] — deal threads out one core at a time,
//! * [`FillFirstAllocation`] — fill each core to capacity before the next
//!   (cluster),
//! * [`MlpBalancedAllocation`] — balance the threads' measured MLP intensity
//!   across cores (greedy longest-processing-time bin balancing), so that
//!   memory-bound threads spread out instead of saturating one core's MSHRs
//!   while another core's sit idle. The intensity estimates come from the
//!   simulator's per-thread MLP predictor machinery via short probe runs.
//!
//! All policies are deterministic: ties break on thread order and core id.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use smt_types::SimError;

/// One workload thread as seen by an allocation policy.
#[derive(Clone, PartialEq, Debug)]
pub struct ThreadSpec {
    /// Benchmark name (for reporting).
    pub benchmark: String,
    /// MLP intensity estimate: long-latency loads per kilo-instruction times
    /// measured MLP, from a single-thread probe run. Higher means the thread
    /// leans harder on the memory system.
    pub mlp_intensity: f64,
}

impl ThreadSpec {
    /// Builds a spec from a benchmark name and its MLP intensity estimate.
    pub fn new(benchmark: impl Into<String>, mlp_intensity: f64) -> Self {
        ThreadSpec {
            benchmark: benchmark.into(),
            mlp_intensity,
        }
    }
}

/// Which thread-to-core allocation policy to use.
///
/// Serializes as the short machine-readable [`AllocationPolicyKind::name`]
/// (e.g. `"mlp-balanced"`), which is also what spec files and the CLI accept.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AllocationPolicyKind {
    /// Deal threads out across cores one at a time (`thread i -> core i % n`).
    RoundRobin,
    /// Fill each core to capacity before opening the next (cluster).
    FillFirst,
    /// Balance summed MLP intensity across cores (greedy, descending).
    MlpBalanced,
}

impl AllocationPolicyKind {
    /// Every implemented allocation policy, in presentation order.
    pub const ALL: [AllocationPolicyKind; 3] = [
        AllocationPolicyKind::RoundRobin,
        AllocationPolicyKind::FillFirst,
        AllocationPolicyKind::MlpBalanced,
    ];

    /// Short machine-readable name used in spec files and result tables.
    pub fn name(self) -> &'static str {
        match self {
            AllocationPolicyKind::RoundRobin => "round-robin",
            AllocationPolicyKind::FillFirst => "fill-first",
            AllocationPolicyKind::MlpBalanced => "mlp-balanced",
        }
    }

    /// Parses a [`AllocationPolicyKind::name`] string back into a policy.
    pub fn from_name(name: &str) -> Option<AllocationPolicyKind> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

serde::named_enum_serde!(AllocationPolicyKind, "allocation policy");

/// Maps workload threads onto the cores of a chip at experiment setup.
///
/// The returned assignment is `assignment[core] = thread indices`, covering
/// every input thread exactly once with exactly `threads_per_core` threads
/// per core (the chip's cores have a fixed SMT width).
pub trait ThreadAllocationPolicy {
    /// Which policy this is (used for reporting).
    fn kind(&self) -> AllocationPolicyKind;

    /// Allocates `threads` onto `num_cores` cores of `threads_per_core`
    /// hardware threads each.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWorkload`] when the thread count does not
    /// equal `num_cores * threads_per_core`.
    fn allocate(
        &self,
        threads: &[ThreadSpec],
        num_cores: usize,
        threads_per_core: usize,
    ) -> Result<Vec<Vec<usize>>, SimError>;

    /// Human-readable policy name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

fn check_geometry(
    threads: &[ThreadSpec],
    num_cores: usize,
    threads_per_core: usize,
) -> Result<(), SimError> {
    if num_cores == 0 || threads_per_core == 0 {
        return Err(SimError::invalid_workload(
            "allocation needs at least one core and one thread slot per core",
        ));
    }
    if threads.len() != num_cores * threads_per_core {
        return Err(SimError::invalid_workload(format!(
            "allocation needs exactly {} threads for {num_cores} cores x {threads_per_core} \
             threads, got {}",
            num_cores * threads_per_core,
            threads.len()
        )));
    }
    Ok(())
}

/// Deal threads out across cores one at a time: thread `i` goes to core
/// `i % num_cores`. Neighbouring workload threads land on different cores.
#[derive(Clone, Copy, Default, Debug)]
pub struct RoundRobinAllocation;

impl ThreadAllocationPolicy for RoundRobinAllocation {
    fn kind(&self) -> AllocationPolicyKind {
        AllocationPolicyKind::RoundRobin
    }

    fn allocate(
        &self,
        threads: &[ThreadSpec],
        num_cores: usize,
        threads_per_core: usize,
    ) -> Result<Vec<Vec<usize>>, SimError> {
        check_geometry(threads, num_cores, threads_per_core)?;
        let mut assignment = vec![Vec::with_capacity(threads_per_core); num_cores];
        for i in 0..threads.len() {
            assignment[i % num_cores].push(i);
        }
        Ok(assignment)
    }
}

/// Fill each core to its SMT capacity before opening the next: thread `i`
/// goes to core `i / threads_per_core`. Neighbouring workload threads cluster
/// on the same core.
#[derive(Clone, Copy, Default, Debug)]
pub struct FillFirstAllocation;

impl ThreadAllocationPolicy for FillFirstAllocation {
    fn kind(&self) -> AllocationPolicyKind {
        AllocationPolicyKind::FillFirst
    }

    fn allocate(
        &self,
        threads: &[ThreadSpec],
        num_cores: usize,
        threads_per_core: usize,
    ) -> Result<Vec<Vec<usize>>, SimError> {
        check_geometry(threads, num_cores, threads_per_core)?;
        let mut assignment = vec![Vec::with_capacity(threads_per_core); num_cores];
        for i in 0..threads.len() {
            assignment[i / threads_per_core].push(i);
        }
        Ok(assignment)
    }
}

/// Balance summed MLP intensity across cores: threads are taken in
/// descending intensity order (ties: lower thread index first) and each is
/// placed on the non-full core with the smallest intensity sum so far (ties:
/// lowest core id). The classic greedy longest-processing-time heuristic,
/// fully deterministic.
#[derive(Clone, Copy, Default, Debug)]
pub struct MlpBalancedAllocation;

impl ThreadAllocationPolicy for MlpBalancedAllocation {
    fn kind(&self) -> AllocationPolicyKind {
        AllocationPolicyKind::MlpBalanced
    }

    fn allocate(
        &self,
        threads: &[ThreadSpec],
        num_cores: usize,
        threads_per_core: usize,
    ) -> Result<Vec<Vec<usize>>, SimError> {
        check_geometry(threads, num_cores, threads_per_core)?;
        let mut order: Vec<usize> = (0..threads.len()).collect();
        // Descending intensity; equal intensities keep workload order. NaN
        // intensities sort last (a broken probe cannot poison the layout);
        // the NaN cases are handled explicitly so the comparator is a total
        // order even for pathological inputs.
        order.sort_by(|&a, &b| {
            use std::cmp::Ordering;
            let (ia, ib) = (threads[a].mlp_intensity, threads[b].mlp_intensity);
            match (ia.is_nan(), ib.is_nan()) {
                (true, true) => a.cmp(&b),
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => ib
                    .partial_cmp(&ia)
                    .expect("non-NaN intensities compare")
                    .then(a.cmp(&b)),
            }
        });
        let mut assignment = vec![Vec::with_capacity(threads_per_core); num_cores];
        let mut load = vec![0.0f64; num_cores];
        for &thread in &order {
            let core = (0..num_cores)
                .filter(|&c| assignment[c].len() < threads_per_core)
                .min_by(|&a, &b| {
                    load[a]
                        .partial_cmp(&load[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                })
                .expect("geometry check guarantees a free slot");
            assignment[core].push(thread);
            let intensity = threads[thread].mlp_intensity;
            if intensity.is_finite() {
                load[core] += intensity;
            }
        }
        // Keep each core's slots in workload order so the layout (and the
        // per-slot trace seeds derived from it) is stable.
        for core in &mut assignment {
            core.sort_unstable();
        }
        Ok(assignment)
    }
}

/// Builds the allocation policy implementation for `kind`.
pub fn build_allocation_policy(kind: AllocationPolicyKind) -> Box<dyn ThreadAllocationPolicy> {
    match kind {
        AllocationPolicyKind::RoundRobin => Box::new(RoundRobinAllocation),
        AllocationPolicyKind::FillFirst => Box::new(FillFirstAllocation),
        AllocationPolicyKind::MlpBalanced => Box::new(MlpBalancedAllocation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(intensities: &[f64]) -> Vec<ThreadSpec> {
        intensities
            .iter()
            .enumerate()
            .map(|(i, &v)| ThreadSpec::new(format!("bench{i}"), v))
            .collect()
    }

    fn assert_covers_all(assignment: &[Vec<usize>], n: usize, per_core: usize) {
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        for core in assignment {
            assert_eq!(core.len(), per_core);
        }
    }

    #[test]
    fn round_robin_deals_threads_out() {
        let a = RoundRobinAllocation
            .allocate(&specs(&[1.0, 2.0, 3.0, 4.0]), 2, 2)
            .unwrap();
        assert_eq!(a, vec![vec![0, 2], vec![1, 3]]);
        assert_covers_all(&a, 4, 2);
    }

    #[test]
    fn fill_first_clusters_threads() {
        let a = FillFirstAllocation
            .allocate(&specs(&[1.0, 2.0, 3.0, 4.0]), 2, 2)
            .unwrap();
        assert_eq!(a, vec![vec![0, 1], vec![2, 3]]);
        assert_covers_all(&a, 4, 2);
    }

    #[test]
    fn mlp_balanced_splits_heavy_threads() {
        // Two memory monsters and two light threads: each core gets one of
        // each instead of both monsters sharing one core's MSHRs.
        let a = MlpBalancedAllocation
            .allocate(&specs(&[90.0, 100.0, 1.0, 2.0]), 2, 2)
            .unwrap();
        assert_covers_all(&a, 4, 2);
        for core in &a {
            assert!(
                core.contains(&0) != core.contains(&1),
                "heavy threads must not share a core: {a:?}"
            );
        }
        // Thread 1 (heaviest) goes to core 0 first, so thread 0 lands on core 1.
        assert!(a[0].contains(&1));
    }

    #[test]
    fn mlp_balanced_is_deterministic_under_ties() {
        let threads = specs(&[5.0, 5.0, 5.0, 5.0]);
        let a = MlpBalancedAllocation.allocate(&threads, 2, 2).unwrap();
        let b = MlpBalancedAllocation.allocate(&threads, 2, 2).unwrap();
        assert_eq!(a, b);
        assert_covers_all(&a, 4, 2);
        // Ties break on thread order then core id: 0->c0, 1->c1, 2->c0, 3->c1.
        assert_eq!(a, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn mlp_balanced_survives_nan_intensities() {
        // NaN intensities sort last: the finite threads are placed first
        // (heaviest to the emptiest core), the broken probes fill what is
        // left — and the comparator stays a total order (no sort panic).
        let a = MlpBalancedAllocation
            .allocate(&specs(&[3.0, f64::NAN, 5.0, 1.0]), 2, 2)
            .unwrap();
        assert_covers_all(&a, 4, 2);
        // Placement order: 2 (5.0) -> core0, 0 (3.0) -> core1, 3 (1.0) ->
        // core1, 1 (NaN) -> core0.
        assert_eq!(a, vec![vec![1, 2], vec![0, 3]]);
        let b = MlpBalancedAllocation
            .allocate(&specs(&[f64::NAN, 3.0, 1.0, f64::NAN]), 2, 2)
            .unwrap();
        assert_covers_all(&b, 4, 2);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        for kind in AllocationPolicyKind::ALL {
            let policy = build_allocation_policy(kind);
            assert_eq!(policy.kind(), kind);
            assert!(policy.allocate(&specs(&[1.0, 2.0, 3.0]), 2, 2).is_err());
            assert!(policy.allocate(&specs(&[1.0]), 0, 2).is_err());
        }
    }

    #[test]
    fn single_core_allocation_is_identity() {
        for kind in AllocationPolicyKind::ALL {
            let a = build_allocation_policy(kind)
                .allocate(&specs(&[3.0, 1.0]), 1, 2)
                .unwrap();
            assert_eq!(a, vec![vec![0, 1]], "{}", kind.name());
        }
    }

    #[test]
    fn names_round_trip_and_serde() {
        use serde::{Deserialize as _, Serialize as _};
        for kind in AllocationPolicyKind::ALL {
            assert_eq!(AllocationPolicyKind::from_name(kind.name()), Some(kind));
            let round = AllocationPolicyKind::deserialize(&kind.serialize()).unwrap();
            assert_eq!(round, kind);
        }
        let err = AllocationPolicyKind::deserialize(&serde::Value::Str("random".into()))
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("random") && err.contains("mlp-balanced"),
            "{err}"
        );
    }
}
