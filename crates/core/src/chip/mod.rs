//! The chip-level simulator: a CMP of SMT cores sharing a last-level cache
//! and a memory bus.
//!
//! A [`ChipSimulator`] owns `num_cores` independent [`Core`] pipelines and
//! one [`smt_mem::SharedLlc`]. Each chip cycle, every core advances one
//! cycle against the shared level; cores interact *only* through LLC
//! capacity, the LLC MSHR file, and bus bandwidth. Under the chip
//! arbitration discipline (see [`smt_mem::shared`]) the shared level's
//! per-cycle state is a pure function of the *set* of requests made in the
//! cycle, so chip results are invariant to the order cores are stepped in —
//! [`ChipSimulator::step_with_core_order`] exposes that property to tests.
//!
//! Multi-core chips step each core against a frozen [`smt_mem::SharedLlcView`]
//! of the cycle-start shared state plus a private [`smt_mem::CoreStage`]
//! buffer, merged back in canonical core order at the end of the cycle. That
//! staging makes core stepping commutative, which is what lets the run loops
//! optionally step cores on a worker pool ([`parallel`]) — selected with
//! [`smt_types::ChipConfig::chip_threads`] or the `SMT_CHIP_THREADS`
//! environment variable — with bit-for-bit identical results.
//!
//! A one-core chip degenerates exactly to the paper's single-core machine
//! ([`crate::pipeline::SmtSimulator`]): same discipline, same per-requester
//! MSHRs, uncontended bus, bit-for-bit identical statistics.

pub mod parallel;

use smt_fetch::build_policy;
use smt_mem::{CoreStage, SharedLlc, StagedShared};
use smt_trace::TraceSource;
use smt_types::config::FetchPolicyKind;
use smt_types::{AdaptiveConfig, ChipConfig, ChipStats, MachineStats, SimError};

use crate::pipeline::{Core, SimOptions};

pub use parallel::ChipSession;

/// Instructions each thread advances per lockstep fast-forward round.
const FF_ROUND: u64 = 64;

/// The operations the chip run loops need from a stepping backend, so that
/// [`run_loop`], [`warm_loop`] and [`ff_loop`] are written once and shared
/// between the serial [`ChipSimulator`] and the pooled [`ChipSession`].
pub(crate) trait ChipExec {
    /// Current chip cycle.
    fn exec_cycle(&self) -> u64;
    /// Advances the chip by one cycle.
    fn step_cycle(&mut self);
    /// Advances every thread of every core by `chunk` instructions
    /// functionally, inside one shared-level cycle bracket.
    fn fast_forward_round(&mut self, chunk: u64);
    /// Appends the committed instruction counts in `(core, thread)` order.
    fn collect_committed(&self, out: &mut Vec<u64>);
    /// Converts each core's live cycle counter into final statistics.
    fn finalize_cores(&mut self);
    /// Zeroes all statistics counters on every core.
    fn reset_core_stats(&mut self);
}

/// The warm-up phase: run until every thread has committed `instructions`
/// more instructions (or the cycle limit), then clear statistics. The scratch
/// vectors are reused across iterations, keeping the loop allocation-free
/// after the first pass.
pub(crate) fn warm_loop<E: ChipExec>(exec: &mut E, instructions: u64, max_cycles: u64) {
    if instructions == 0 {
        return;
    }
    let mut targets = Vec::new();
    exec.collect_committed(&mut targets);
    for target in &mut targets {
        *target += instructions;
    }
    let mut committed = Vec::with_capacity(targets.len());
    while exec.exec_cycle() < max_cycles {
        committed.clear();
        exec.collect_committed(&mut committed);
        if !committed.iter().zip(&targets).any(|(&c, &t)| c < t) {
            break;
        }
        exec.step_cycle();
    }
    exec.reset_core_stats();
}

/// The full run: warm-up, then the measured phase until any thread of any
/// core commits the per-thread budget (the paper's stop criterion, applied
/// chip-wide) or the cycle limit is hit.
pub(crate) fn run_loop<E: ChipExec>(exec: &mut E, options: &SimOptions) {
    warm_loop(
        exec,
        options.warmup_instructions_per_thread,
        options.max_cycles,
    );
    let mut baselines = Vec::new();
    exec.collect_committed(&mut baselines);
    let mut committed = Vec::with_capacity(baselines.len());
    while exec.exec_cycle() < options.max_cycles {
        committed.clear();
        exec.collect_committed(&mut committed);
        if committed
            .iter()
            .zip(&baselines)
            .any(|(&c, &base)| c - base >= options.max_instructions_per_thread)
        {
            break;
        }
        exec.step_cycle();
    }
    exec.finalize_cores();
}

/// Functional fast-forward by `instructions_per_thread`, in lockstep rounds
/// of [`FF_ROUND`] instructions.
pub(crate) fn ff_loop<E: ChipExec>(exec: &mut E, instructions_per_thread: u64) {
    let mut remaining = instructions_per_thread;
    while remaining > 0 {
        let chunk = remaining.min(FF_ROUND);
        exec.fast_forward_round(chunk);
        remaining -= chunk;
    }
}

/// Resolves the chip-stepping worker count: the `SMT_CHIP_THREADS`
/// environment variable overrides the configured value, and the result is
/// clamped to `[1, num_cores]` (extra workers would only idle).
fn resolve_chip_threads(config: &ChipConfig) -> usize {
    let configured = std::env::var("SMT_CHIP_THREADS") // analyze: allow(determinism) reason="worker-pool sizing only; chip results are bit-for-bit identical at any thread count"
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| config.chip_threads());
    configured.clamp(1, config.num_cores)
}

/// The chip (CMP-of-SMT) simulator.
///
/// # Example
///
/// ```
/// use smt_core::chip::ChipSimulator;
/// use smt_core::pipeline::SimOptions;
/// use smt_trace::{spec, SyntheticTraceGenerator};
/// use smt_types::ChipConfig;
///
/// # fn main() -> Result<(), smt_types::SimError> {
/// let chip = ChipConfig::baseline(2, 2);
/// let traces = vec![
///     vec!["mcf", "gcc"],
///     vec!["swim", "twolf"],
/// ]
/// .into_iter()
/// .enumerate()
/// .map(|(core, names)| {
///     names
///         .into_iter()
///         .enumerate()
///         .map(|(slot, name)| {
///             let seed = (core * 2 + slot + 1) as u64;
///             Box::new(SyntheticTraceGenerator::new(
///                 spec::benchmark(name).unwrap(),
///                 seed,
///             )) as Box<dyn smt_trace::TraceSource>
///         })
///         .collect()
/// })
/// .collect();
/// let mut sim = ChipSimulator::new(chip, traces)?;
/// let stats = sim.run(SimOptions::with_instructions(1_000));
/// assert_eq!(stats.num_cores(), 2);
/// assert!(stats.cycles > 0);
/// assert!(stats.total_committed() > 0);
/// # Ok(())
/// # }
/// ```
pub struct ChipSimulator {
    config: ChipConfig,
    cores: Vec<Core>,
    /// One stage buffer per core (multi-core chips step staged; a one-core
    /// chip keeps the legacy direct discipline and never touches these).
    stages: Vec<CoreStage>,
    shared: SharedLlc,
    cycle: u64,
    /// Resolved worker count for the run loops (config value, overridden by
    /// `SMT_CHIP_THREADS`, clamped to the core count).
    chip_threads: usize,
    /// Reusable membership bitmask for validating explicit core orders.
    order_scratch: Vec<bool>,
}

impl ChipSimulator {
    /// Builds a chip for `config` running one trace source per hardware
    /// thread of each core (`traces_per_core[core][thread]`). Every core uses
    /// the fetch policy named in `config.core`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the chip configuration does not
    /// validate and [`SimError::InvalidWorkload`] if the trace grid does not
    /// match the chip's core/thread geometry.
    pub fn new(
        config: ChipConfig,
        traces_per_core: Vec<Vec<Box<dyn TraceSource>>>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if traces_per_core.len() != config.num_cores {
            return Err(SimError::invalid_workload(format!(
                "expected trace sources for {} cores, got {}",
                config.num_cores,
                traces_per_core.len()
            )));
        }
        let shared = SharedLlc::for_chip(&config);
        let threads_per_core = config.core.num_threads;
        let mut cores = Vec::with_capacity(config.num_cores);
        for (core_id, traces) in traces_per_core.into_iter().enumerate() {
            let core_config = config.core.clone();
            let policy = build_policy(core_config.fetch_policy, &core_config);
            cores.push(Core::with_policy(core_config, traces, policy, core_id)?);
        }
        let stages = (0..config.num_cores)
            .map(|core_id| CoreStage::new(core_id * threads_per_core, threads_per_core))
            .collect();
        let chip_threads = resolve_chip_threads(&config);
        let order_scratch = vec![false; config.num_cores];
        Ok(ChipSimulator {
            config,
            cores,
            stages,
            shared,
            cycle: 0,
            chip_threads,
            order_scratch,
        })
    }

    /// Builds a chip whose cores are driven by the adaptive policy engine:
    /// every core gets its *own* selector instance (selectors keep state) and
    /// starts on `adaptive.candidates[0]`, overriding the fetch policy named
    /// in `config.core`. Cores then switch policies independently, each on
    /// its own interval telemetry.
    ///
    /// # Errors
    ///
    /// Same as [`ChipSimulator::new`], plus [`SimError::InvalidConfig`] for
    /// an invalid adaptive configuration.
    pub fn new_adaptive(
        config: ChipConfig,
        traces_per_core: Vec<Vec<Box<dyn TraceSource>>>,
        adaptive: AdaptiveConfig,
    ) -> Result<Self, SimError> {
        adaptive.validate()?;
        let mut sim = Self::new(config, traces_per_core)?;
        for core in &mut sim.cores {
            core.set_adaptive(adaptive.clone())?;
        }
        Ok(sim)
    }

    /// Fraction of completed intervals each policy was installed for on one
    /// core (see [`Core::policy_residency`]); `None` when the chip is not
    /// adaptive.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn policy_residency(&self, core: usize) -> Option<Vec<(FetchPolicyKind, f64)>> {
        self.cores[core].policy_residency()
    }

    /// The chip configuration the simulator was built with.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Number of cores on the chip.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The resolved chip-stepping worker count the run loops will use
    /// (configuration value, overridden by `SMT_CHIP_THREADS`, clamped to
    /// the core count; `1` = serial).
    pub fn chip_threads(&self) -> usize {
        self.chip_threads
    }

    /// Current cycle count (identical across cores: they step in lockstep).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics of one core accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_stats(&self, core: usize) -> &MachineStats {
        self.cores[core].stats()
    }

    /// Cycles elapsed in the current measurement phase.
    pub fn measured_cycles(&self) -> u64 {
        self.cores.first().map_or(0, |c| c.measured_cycles())
    }

    /// Splits the simulator into the disjoint parts the worker pool needs.
    pub(crate) fn pool_parts(
        &mut self,
    ) -> (&mut [Core], &mut [CoreStage], &mut SharedLlc, &mut u64) {
        (
            &mut self.cores,
            &mut self.stages,
            &mut self.shared,
            &mut self.cycle,
        )
    }

    /// Steps every core once within the current (already begun) shared-level
    /// cycle, visiting cores in `order`. Multi-core chips step staged —
    /// each core against a frozen view plus its own stage buffer, merged
    /// back in canonical core order — so the result is independent of
    /// `order`; a one-core chip steps directly (legacy discipline).
    fn step_cores(&mut self, order: Option<&[usize]>) {
        if self.shared.chip_arbitration() {
            match order {
                None => {
                    for (core, stage) in self.cores.iter_mut().zip(self.stages.iter_mut()) {
                        let mut staged = StagedShared::new(self.shared.view(), stage);
                        core.step_against(&mut staged);
                    }
                }
                Some(order) => {
                    for &core in order {
                        let mut staged =
                            StagedShared::new(self.shared.view(), &mut self.stages[core]);
                        self.cores[core].step_against(&mut staged);
                    }
                }
            }
            for stage in &mut self.stages {
                self.shared.merge_stage(stage);
            }
        } else {
            for core in &mut self.cores {
                core.step_against(&mut self.shared);
            }
        }
    }

    /// Fast-forwards every core by `chunk` instructions per thread within
    /// the current shared-level cycle, visiting cores in `order` (staged for
    /// multi-core chips, exactly like [`ChipSimulator::step_cores`]).
    fn fast_forward_cores(&mut self, chunk: u64, order: Option<&[usize]>) {
        if self.shared.chip_arbitration() {
            match order {
                None => {
                    for (core, stage) in self.cores.iter_mut().zip(self.stages.iter_mut()) {
                        let mut staged = StagedShared::new(self.shared.view(), stage);
                        core.fast_forward_against(&mut staged, chunk);
                    }
                }
                Some(order) => {
                    for &core in order {
                        let mut staged =
                            StagedShared::new(self.shared.view(), &mut self.stages[core]);
                        self.cores[core].fast_forward_against(&mut staged, chunk);
                    }
                }
            }
            for stage in &mut self.stages {
                self.shared.merge_stage(stage);
            }
        } else {
            for core in &mut self.cores {
                core.fast_forward_against(&mut self.shared, chunk);
            }
        }
    }

    /// Validates that `order` is a permutation of `0..num_cores`, reusing
    /// the scratch bitmask (no per-call allocation).
    fn check_core_order(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.cores.len(), "order must cover every core");
        for seen in &mut self.order_scratch {
            *seen = false;
        }
        for &core in order {
            assert!(
                !std::mem::replace(&mut self.order_scratch[core], true),
                "core {core} stepped twice"
            );
        }
    }

    /// Advances the whole chip by one cycle, stepping cores in ascending
    /// core-id order.
    pub fn step(&mut self) {
        self.shared.begin_cycle(self.cycle);
        self.step_cores(None);
        self.shared.end_cycle();
        self.cycle += 1;
    }

    /// Advances the whole chip by one cycle, stepping cores in the given
    /// order. Under the chip arbitration discipline the results are
    /// independent of the order; the determinism tests step reversed against
    /// canonical to pin that property.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_cores`.
    pub fn step_with_core_order(&mut self, order: &[usize]) {
        self.check_core_order(order);
        self.shared.begin_cycle(self.cycle);
        self.step_cores(Some(order));
        self.shared.end_cycle();
        self.cycle += 1;
    }

    /// Committed instruction counts across the chip, in `(core, thread)` order.
    fn committed(&self) -> impl Iterator<Item = u64> + '_ {
        self.cores.iter().flat_map(|c| c.committed())
    }

    /// Functionally fast-forwards every thread of every core by
    /// `instructions_per_thread` instructions (see
    /// [`crate::pipeline::SmtSimulator::fast_forward`]). Cores advance in
    /// lockstep rounds bracketed by the shared level's cycle discipline, so
    /// under chip arbitration the resulting state is — like detailed
    /// stepping — invariant to the order cores advance within a round.
    ///
    /// With more than one resolved chip thread the rounds run on the worker
    /// pool; results are identical either way.
    pub fn fast_forward(&mut self, instructions_per_thread: u64) {
        if self.chip_threads > 1 {
            let workers = self.chip_threads;
            parallel::with_pool(self, workers, |session| {
                ff_loop(session, instructions_per_thread);
            });
        } else {
            ff_loop(self, instructions_per_thread);
        }
    }

    /// Functionally fast-forwards like [`ChipSimulator::fast_forward`], but
    /// advancing cores in the given order within every lockstep round. Under
    /// chip arbitration the resulting state is independent of the order; the
    /// determinism tests pin that property.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_cores`.
    pub fn fast_forward_with_core_order(&mut self, instructions_per_thread: u64, order: &[usize]) {
        self.check_core_order(order);
        let mut remaining = instructions_per_thread;
        while remaining > 0 {
            let chunk = remaining.min(FF_ROUND);
            self.shared.begin_cycle(self.cycle);
            self.fast_forward_cores(chunk, Some(order));
            self.shared.end_cycle();
            remaining -= chunk;
        }
    }

    /// Runs the warm-up phase followed by the measured phase, stopping the
    /// measured phase once any thread of any core has committed the
    /// instruction budget (the paper's stop criterion, applied chip-wide) or
    /// the cycle limit is hit, and returns the statistics of the measured
    /// phase.
    ///
    /// With more than one resolved chip thread ([`ChipConfig::chip_threads`]
    /// or `SMT_CHIP_THREADS`) the whole run — warm-up and measurement —
    /// executes on the worker pool; results are bit-for-bit identical to the
    /// serial loop.
    pub fn run(&mut self, options: SimOptions) -> ChipStats {
        if self.chip_threads > 1 {
            let workers = self.chip_threads;
            parallel::with_pool(self, workers, |session| run_loop(session, &options));
        } else {
            run_loop(self, &options);
        }
        self.chip_stats()
    }

    /// Runs until every thread of every core has committed `instructions`
    /// further instructions, then clears all statistics (microarchitectural
    /// state stays warm). A zero-length warm-up is a no-op. Pooled when more
    /// than one chip thread is resolved, with identical results.
    pub fn warm_up(&mut self, instructions: u64, max_cycles: u64) {
        if self.chip_threads > 1 {
            let workers = self.chip_threads;
            parallel::with_pool(self, workers, |session| {
                warm_loop(session, instructions, max_cycles);
            });
        } else {
            warm_loop(self, instructions, max_cycles);
        }
    }

    /// Runs `f` against a pooled stepping session at the resolved worker
    /// count, even if that is 1. The pool (threads, barriers, locks) lives
    /// for the duration of the call; cycles stepped inside the session are
    /// bit-for-bit identical to [`ChipSimulator::step`].
    pub fn with_parallel_session<R>(&mut self, f: impl FnOnce(&mut ChipSession<'_, '_>) -> R) -> R {
        let workers = self.chip_threads;
        parallel::with_pool(self, workers, f)
    }

    /// Zeroes all statistics counters on every core without disturbing
    /// microarchitectural state.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
        }
    }

    /// Assembles the current per-core statistics into a [`ChipStats`] record.
    /// The chip-wide cycle count is taken from the per-core records when
    /// finalized by [`ChipSimulator::run`], otherwise from the live measured
    /// count.
    pub fn chip_stats(&self) -> ChipStats {
        let cores: Vec<MachineStats> = self.cores.iter().map(|c| c.stats().clone()).collect();
        let cycles = cores
            .first()
            .map_or(0, |c| c.cycles.max(self.measured_cycles()));
        ChipStats { cycles, cores }
    }
}

impl ChipExec for ChipSimulator {
    fn exec_cycle(&self) -> u64 {
        self.cycle
    }

    fn step_cycle(&mut self) {
        self.step();
    }

    fn fast_forward_round(&mut self, chunk: u64) {
        self.shared.begin_cycle(self.cycle);
        self.fast_forward_cores(chunk, None);
        self.shared.end_cycle();
    }

    fn collect_committed(&self, out: &mut Vec<u64>) {
        out.extend(self.committed());
    }

    fn finalize_cores(&mut self) {
        for core in &mut self.cores {
            core.finalize_cycles();
        }
    }

    fn reset_core_stats(&mut self) {
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{build_trace, RunScale};

    fn chip_traces(assignments: &[&[&str]], scale: RunScale) -> Vec<Vec<Box<dyn TraceSource>>> {
        assignments
            .iter()
            .map(|core| {
                core.iter()
                    .map(|b| build_trace(b, scale).expect("known benchmark"))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn two_core_chip_runs_to_budget() {
        let scale = RunScale::tiny();
        let chip = ChipConfig::baseline(2, 2);
        let mut sim = ChipSimulator::new(
            chip,
            chip_traces(&[&["mcf", "gcc"], &["swim", "twolf"]], scale),
        )
        .unwrap();
        let stats = sim.run(scale.sim_options());
        assert_eq!(stats.num_cores(), 2);
        assert!(stats.cycles > 0);
        let max = stats
            .threads()
            .map(|t| t.committed_instructions)
            .max()
            .unwrap();
        assert!(max >= scale.instructions_per_thread);
        assert!(stats.total_ipc() > 0.0);
    }

    #[test]
    fn chip_runs_are_reproducible() {
        let scale = RunScale::tiny();
        let run = || {
            let chip = ChipConfig::baseline(2, 2)
                .with_policy(smt_types::config::FetchPolicyKind::MlpFlush);
            let mut sim = ChipSimulator::new(
                chip,
                chip_traces(&[&["mcf", "swim"], &["gcc", "twolf"]], scale),
            )
            .unwrap();
            sim.run(scale.sim_options())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_grid_must_match_geometry() {
        let scale = RunScale::tiny();
        let chip = ChipConfig::baseline(2, 2);
        let err = ChipSimulator::new(chip, chip_traces(&[&["mcf", "gcc"]], scale));
        assert!(err.is_err());
    }

    #[test]
    fn pooled_run_matches_serial_run() {
        let scale = RunScale::tiny();
        let run = |threads: usize| {
            let chip = ChipConfig::baseline(2, 2).with_chip_threads(threads);
            let mut sim = ChipSimulator::new(
                chip,
                chip_traces(&[&["mcf", "gcc"], &["swim", "twolf"]], scale),
            )
            .unwrap();
            sim.run(scale.sim_options())
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn parallel_session_steps_match_serial_steps() {
        let scale = RunScale::tiny();
        let build = |threads: usize| {
            let chip = ChipConfig::baseline(2, 2).with_chip_threads(threads);
            ChipSimulator::new(
                chip,
                chip_traces(&[&["mcf", "swim"], &["gcc", "twolf"]], scale),
            )
            .unwrap()
        };
        let mut serial = build(1);
        let mut pooled = build(2);
        pooled.with_parallel_session(|session| {
            for _ in 0..3_000 {
                session.step_cycle();
            }
            assert_eq!(session.session_cycle(), 3_000);
        });
        for _ in 0..3_000 {
            serial.step();
        }
        assert_eq!(serial.chip_stats(), pooled.chip_stats());
        assert_eq!(serial.cycle(), pooled.cycle());
    }

    #[test]
    fn chip_threads_clamps_to_core_count() {
        let scale = RunScale::tiny();
        let chip = ChipConfig::baseline(2, 2).with_chip_threads(16);
        let sim = ChipSimulator::new(
            chip,
            chip_traces(&[&["mcf", "gcc"], &["swim", "twolf"]], scale),
        )
        .unwrap();
        assert_eq!(sim.chip_threads(), 2);
    }
}
