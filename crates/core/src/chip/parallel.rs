//! The chip-stepping worker pool: the one sanctioned synchronization module
//! of the simulation crates.
//!
//! Everything the simulator computes is deterministic and single-owner; the
//! only place threads, locks, or atomics are allowed is here (the
//! `smt-analyze` `sync-discipline` rule enforces that). The pool exists
//! purely to spend host cores on independent work the staged chip discipline
//! has already made commutative:
//!
//! * each chip cycle, every core steps against a frozen
//!   [`smt_mem::SharedLlcView`] plus its own private [`smt_mem::CoreStage`]
//!   (no shared mutable state, no ordering),
//! * the main thread merges the stages back in canonical core order and
//!   applies the staged fills ([`smt_mem::SharedLlc::end_cycle`]),
//!
//! so the pooled schedule produces byte-identical simulator state to the
//! serial loop — pinned by the chip golden fixtures and the
//! `chip_parallel_parity` proptests.
//!
//! # Shape of a cycle
//!
//! ```text
//! main:    begin_cycle ─┐ barrier ┄┄┄┄┄┄┄┄┄┄┄┄┄┄┄ barrier ┬ merge stages
//!                       │ (begin)                 (done)  │ end_cycle
//! workers: ┄┄┄┄┄┄┄┄┄┄┄┄ ┘ step cores (view+stage) ┄┄┄┄┄┄┄ ┘
//! ```
//!
//! Workers own a fixed partition of the cores (`index % workers`), park on
//! the `begin` barrier between cycles, and read the shared level through an
//! `RwLock` read guard that can never contend with the main thread's write
//! guard (the barriers strictly alternate the two phases; the lock exists to
//! express that protocol in safe Rust). All synchronization primitives are
//! allocation-free after construction, so a pooled steady-state cycle loop
//! performs no heap allocations — the same guarantee the serial loop gives.
//!
//! A panic on a worker is caught, parked until the barrier protocol
//! completes the cycle, and re-raised on the main thread, so a failing core
//! never deadlocks the pool (the experiment engine's resilience layer then
//! handles it like any serial panic).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError, RwLock};

use smt_mem::{CoreStage, SharedLlc, StagedShared};

use super::{ChipExec, ChipSimulator};
use crate::pipeline::Core;

/// Step every owned core by one detailed cycle.
const CMD_STEP: u8 = 0;
/// Fast-forward every owned core by the broadcast chunk.
const CMD_FF: u8 = 1;
/// Shut down: exit the worker loop.
const CMD_EXIT: u8 = 2;

/// Locks a mutex, ignoring poisoning: a panicked cycle is re-raised on the
/// main thread, and simulator state behind a poisoned lock is only ever
/// observed during that unwind.
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared state of one pool: the partitioned cores, the shared level, and
/// the barrier/command protocol. Lives on the main thread's stack for the
/// duration of one [`with_pool`] call; workers borrow it through the scope.
struct PoolState<'env> {
    /// One cell per core: the core and its stage buffer. Each cell is only
    /// ever touched by its owning worker (during a cycle) or by the main
    /// thread (between cycles); the mutexes are therefore uncontended and
    /// exist to make that hand-off safe.
    cells: Vec<Mutex<(&'env mut Core, &'env mut CoreStage)>>,
    /// The shared level: read-locked by workers during a cycle (frozen
    /// views), write-locked by the main thread between barriers.
    shared: RwLock<&'env mut SharedLlc>,
    /// Released by the main thread to start a cycle (or shut down).
    begin: Barrier,
    /// Reached by every worker once its cores finished the cycle.
    done: Barrier,
    /// The command workers execute after the `begin` barrier.
    command: AtomicU8,
    /// Fast-forward chunk broadcast alongside [`CMD_FF`].
    chunk: AtomicU64,
    /// Number of workers (the core partition stride).
    workers: usize,
    /// `true` when the shared level runs the legacy direct discipline (a
    /// one-core chip): the single worker then steps its core against the
    /// write-locked shared level itself instead of a frozen view.
    legacy: bool,
    /// First panic payload caught on a worker this cycle.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// One worker: parks on `begin`, executes the broadcast command over its
/// core partition against a frozen view of the shared level, and reports
/// back through `done`.
fn worker_loop(state: &PoolState<'_>, worker: usize) {
    loop {
        state.begin.wait();
        let cmd = state.command.load(Ordering::SeqCst);
        if cmd == CMD_EXIT {
            break;
        }
        let chunk = state.chunk.load(Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if state.legacy {
                // One-core chip: a single worker owns the single core and
                // steps it directly against the shared level, preserving the
                // legacy synchronous discipline bit-for-bit.
                let mut shared = state.shared.write().unwrap_or_else(PoisonError::into_inner);
                for cell in state.cells.iter().skip(worker).step_by(state.workers) {
                    let mut cell = lock(cell);
                    match cmd {
                        CMD_STEP => cell.0.step_against(&mut **shared),
                        _ => cell.0.fast_forward_against(&mut **shared, chunk),
                    }
                }
            } else {
                let shared = state.shared.read().unwrap_or_else(PoisonError::into_inner);
                for cell in state.cells.iter().skip(worker).step_by(state.workers) {
                    let mut cell = lock(cell);
                    let (core, stage) = &mut *cell;
                    let mut staged = StagedShared::new(shared.view(), stage);
                    match cmd {
                        CMD_STEP => core.step_against(&mut staged),
                        _ => core.fast_forward_against(&mut staged, chunk),
                    }
                }
            }
        }));
        if let Err(payload) = outcome {
            lock(&state.panic).get_or_insert(payload);
        }
        state.done.wait();
    }
}

/// Sends the shutdown command on drop, so workers exit (and the scope can
/// join them) even when the session closure unwinds.
struct ShutdownGuard<'pool, 'env>(&'pool PoolState<'env>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.command.store(CMD_EXIT, Ordering::SeqCst);
        self.0.begin.wait();
    }
}

/// A live pooled stepping session over a [`ChipSimulator`]: the worker
/// threads are up, cores are partitioned, and each
/// [`ChipSession::step_cycle`] runs one barrier-bracketed chip cycle.
/// Obtained from [`ChipSimulator::with_parallel_session`] (or internally by
/// the run loops); the simulator is whole again once the session closure
/// returns.
pub struct ChipSession<'pool, 'env> {
    state: &'pool PoolState<'env>,
    cycle: &'pool mut u64,
}

impl ChipSession<'_, '_> {
    /// Runs one barrier-bracketed round: begin the shared-level cycle,
    /// release the workers with `cmd`, wait for them, then merge the stages
    /// in canonical core order and end the cycle.
    fn run_round(&mut self, cmd: u8, chunk: u64) {
        {
            let mut shared = self
                .state
                .shared
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            shared.begin_cycle(*self.cycle);
        }
        self.state.chunk.store(chunk, Ordering::SeqCst);
        self.state.command.store(cmd, Ordering::SeqCst);
        self.state.begin.wait();
        self.state.done.wait();
        if let Some(payload) = lock(&self.state.panic).take() {
            resume_unwind(payload);
        }
        let mut shared = self
            .state
            .shared
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        for cell in &self.state.cells {
            let mut cell = lock(cell);
            shared.merge_stage(cell.1);
        }
        shared.end_cycle();
    }

    /// Advances the chip by one cycle on the pool (bit-for-bit
    /// [`ChipSimulator::step`]).
    pub fn step_cycle(&mut self) {
        self.run_round(CMD_STEP, 0);
        *self.cycle += 1;
    }

    /// Current chip cycle.
    pub fn session_cycle(&self) -> u64 {
        *self.cycle
    }
}

impl ChipExec for ChipSession<'_, '_> {
    fn exec_cycle(&self) -> u64 {
        *self.cycle
    }

    fn step_cycle(&mut self) {
        ChipSession::step_cycle(self);
    }

    fn fast_forward_round(&mut self, chunk: u64) {
        self.run_round(CMD_FF, chunk);
    }

    fn collect_committed(&self, out: &mut Vec<u64>) {
        for cell in &self.state.cells {
            let cell = lock(cell);
            out.extend(cell.0.committed());
        }
    }

    fn finalize_cores(&mut self) {
        for cell in &self.state.cells {
            lock(cell).0.finalize_cycles();
        }
    }

    fn reset_core_stats(&mut self) {
        for cell in &self.state.cells {
            lock(cell).0.reset_stats();
        }
    }
}

/// Spins up `workers` threads over the simulator's cores, runs `f` against
/// the pooled session, and tears the pool down again. The worker count is
/// clamped to the core count; the pool machinery is used even at one worker
/// (the session is then a slightly indirect serial loop).
pub(crate) fn with_pool<R>(
    sim: &mut ChipSimulator,
    workers: usize,
    f: impl FnOnce(&mut ChipSession<'_, '_>) -> R,
) -> R {
    let (cores, stages, shared, cycle) = sim.pool_parts();
    let workers = workers.clamp(1, cores.len().max(1));
    let legacy = !shared.chip_arbitration();
    let state = PoolState {
        cells: cores
            .iter_mut()
            .zip(stages.iter_mut())
            .map(Mutex::new)
            .collect(),
        shared: RwLock::new(shared),
        begin: Barrier::new(workers + 1),
        done: Barrier::new(workers + 1),
        command: AtomicU8::new(CMD_EXIT),
        chunk: AtomicU64::new(0),
        workers,
        legacy,
        panic: Mutex::new(None),
    };
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let state = &state;
            scope.spawn(move || worker_loop(state, worker));
        }
        let guard = ShutdownGuard(&state);
        let mut session = ChipSession {
            state: guard.0,
            cycle,
        };
        f(&mut session)
    })
}
