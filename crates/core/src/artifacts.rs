//! Crash-safe artifact writes.
//!
//! Every durable artifact the workspace produces — experiment reports, the
//! `BENCH_throughput.json` trajectory, regenerated golden fixtures — goes
//! through [`write_atomic`], which writes to a temporary sibling file and
//! renames it into place. A process killed mid-write leaves at most a stale
//! `*.tmp` file behind; the previous artifact (if any) stays intact, so a
//! half-written report can never masquerade as a complete one.

use std::io::Write;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes land in a temporary
/// sibling (`<name>.<pid>.tmp` in the same directory, so the final rename
/// never crosses a filesystem boundary), are flushed to disk, and only then
/// renamed over `path`.
///
/// Readers therefore observe either the old artifact or the complete new one,
/// never a truncated intermediate.
///
/// # Errors
///
/// Propagates any I/O error from creating, writing, syncing, or renaming the
/// temporary file. On error the temporary file is removed on a best-effort
/// basis and `path` is left untouched.
///
/// # Example
///
/// ```
/// let dir = std::env::temp_dir().join(format!("smt-artifacts-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("report.json");
/// smt_core::artifacts::write_atomic(&path, "{\"ok\":true}\n").unwrap();
/// assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("artifact path `{}` has no file name", path.display()),
            )
        })?
        .to_owned();
    let mut tmp_name = file_name;
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let write_result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        // Make the rename meaningful: the data must be durable before the
        // new name points at it.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write_result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write_result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("smt-artifacts-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn writes_contents_and_leaves_no_temp_file() {
        let dir = scratch_dir("basic");
        let path = dir.join("out.json");
        write_atomic(&path, "first\n").expect("write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "first\n");
        write_atomic(&path, "second\n").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_keeps_the_previous_artifact() {
        let dir = scratch_dir("fail");
        let path = dir.join("out.json");
        write_atomic(&path, "stable\n").expect("write");
        // Writing *into* a missing directory must fail without touching the
        // original artifact.
        let bad = dir.join("missing-subdir").join("out.json");
        assert!(write_atomic(&bad, "lost\n").is_err());
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "stable\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_paths_without_a_file_name() {
        assert!(write_atomic("/", "x").is_err());
    }
}
